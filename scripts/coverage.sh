#!/usr/bin/env bash
# Line-coverage gate for crates/query and crates/server.
#
# Uses rustc's built-in `-C instrument-coverage` plus the `llvm-tools`
# rustup component (llvm-profdata / llvm-cov) — no external coverage
# crates required.  The committed floor below is the regression gate: CI
# fails when the measured line coverage of crates/query/src plus
# crates/server/src drops under it.  Raise the floor when coverage
# genuinely improves; never lower it to make a PR pass.
#
#   scripts/coverage.sh              # report + gate (skips if no llvm-tools)
#   COVERAGE_REQUIRE=1 scripts/coverage.sh   # missing llvm-tools is an error (CI)
#   COVERAGE_FLOOR=80 scripts/coverage.sh    # override the floor
set -euo pipefail
cd "$(dirname "$0")/.."

# The committed floor (percent of lines in crates/query/src and
# crates/server/src covered by their test suites).  Deliberately
# conservative for the first commit; ratchet it up to just under the
# measured value once CI has reported a few runs.
FLOOR="${COVERAGE_FLOOR:-60}"

sysroot="$(rustc --print sysroot)"
tooldir=""
for cand in "$sysroot"/lib/rustlib/*/bin; do
  if [ -x "$cand/llvm-profdata" ] && [ -x "$cand/llvm-cov" ]; then
    tooldir="$cand"
    break
  fi
done
if [ -z "$tooldir" ]; then
  if command -v llvm-profdata >/dev/null 2>&1 && command -v llvm-cov >/dev/null 2>&1; then
    tooldir="$(dirname "$(command -v llvm-profdata)")"
  fi
fi
skip_or_fail() {
  echo "coverage: $1" >&2
  echo "coverage: install matching tools with \`rustup component add llvm-tools\`." >&2
  if [ "${COVERAGE_REQUIRE:-0}" = "1" ]; then
    exit 1
  fi
  echo "coverage: skipping the gate (COVERAGE_REQUIRE not set)." >&2
  exit 0
}

if [ -z "$tooldir" ]; then
  skip_or_fail "llvm-profdata/llvm-cov not found."
fi

profdir="target/coverage"
rm -rf "$profdir"
mkdir -p "$profdir"

# Instrumented test run.  A dedicated target dir keeps the instrumented
# artifacts from invalidating the regular build cache.
export CARGO_TARGET_DIR="target/coverage-build"
export RUSTFLAGS="-C instrument-coverage"
export LLVM_PROFILE_FILE="$PWD/$profdir/flexrel-%p-%m.profraw"
cargo test -p flexrel-query -q
# crates/server has no unit tests of its own; its coverage comes from the
# cross-crate wire-protocol suite (codec proptests + live-server
# conversations).
cargo test -p flexrel-tests --test wire_protocol -q

# A version-mismatched llvm-profdata (e.g. a system LLVM older than the
# one rustc instruments with) cannot read the profraw format — treat it
# exactly like a missing tool.
if ! "$tooldir/llvm-profdata" merge -sparse "$profdir"/*.profraw \
  -o "$profdir/query.profdata" 2>"$profdir/merge.err"; then
  cat "$profdir/merge.err" >&2
  skip_or_fail "llvm-profdata in $tooldir cannot read rustc's profile format."
fi

# The test binaries of the instrumented run (unit tests + doctest hosts are
# not needed; the lib test binary carries the crate's coverage).
objects=""
while IFS= read -r exe; do
  [ -n "$exe" ] && [ "$exe" != "null" ] && objects="$objects --object $exe"
done < <(cargo test -p flexrel-query -q --no-run --message-format=json 2>/dev/null |
  sed -n 's/.*"executable":"\([^"]*\)".*/\1/p')
if [ -z "$objects" ]; then
  echo "coverage: no instrumented test binaries found" >&2
  exit 1
fi

# src/bin/ holds the server's CLI entry point, exercised by the CI
# server-smoke job rather than the instrumented suite — keep it out of the
# line count.
report="$("$tooldir/llvm-cov" report $objects \
  --instr-profile "$profdir/query.profdata" \
  --ignore-filename-regex '(registry|toolchains|vendor|/tests/|/src/bin/)' \
  "$PWD"/crates/query/src "$PWD"/crates/server/src)"
echo "$report"

# The optimizer-v2 module is measured as part of crates/query/src; a
# filter regression that silently dropped it would let the rewrite rules'
# coverage rot unnoticed, so require its files in the report.
if ! echo "$report" | grep -q 'optimizer'; then
  echo "coverage: optimizer/ files missing from the llvm-cov report" >&2
  exit 1
fi

# Same guard for the network front end: the wire codec and session loop
# must stay in the measured set.
if ! echo "$report" | grep -q 'proto.rs'; then
  echo "coverage: crates/server files missing from the llvm-cov report" >&2
  exit 1
fi

pct="$(echo "$report" | awk '/^TOTAL/ {gsub(/%/, "", $10); print $10}')"
if [ -z "$pct" ]; then
  echo "coverage: could not parse the TOTAL line from llvm-cov" >&2
  exit 1
fi
echo "coverage: crates/query + crates/server line coverage ${pct}% (floor ${FLOOR}%)"
awk -v pct="$pct" -v floor="$FLOOR" 'BEGIN { exit !(pct + 0 >= floor + 0) }' || {
  echo "coverage: FAILED — ${pct}% is under the committed ${FLOOR}% floor" >&2
  exit 1
}
