//! Property-based integration tests: Theorem 4.3 propagation holds on
//! materialized operator outputs, algebra outputs stay scheme-admissible,
//! and every decomposition strategy round-trips the instance — for randomly
//! generated employee instances.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flexrel_algebra::ops;
use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::AttrSet;
use flexrel_core::dep::example2_jobtype_ead;
use flexrel_core::relation::{CheckLevel, FlexRelation};
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_decompose::{
    horizontal_decompose, multirel_decompose, to_null_padded, vertical_decompose,
};
use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

fn loaded(n: usize, seed: u64) -> FlexRelation {
    let mut rel = employee_relation();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        rel.insert_checked(t, CheckLevel::None).unwrap();
    }
    rel
}

fn tuple_set(rel: &FlexRelation) -> BTreeSet<Tuple> {
    rel.tuples().iter().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rule (3): selections preserve every declared dependency, and the
    /// propagated set indeed holds on the output.
    #[test]
    fn selection_preserves_dependencies(seed in 0u64..500, threshold in 2000i64..9000) {
        let rel = loaded(120, seed);
        let out = ops::select(&rel, &Predicate::gt("salary", threshold as f64));
        prop_assert!(out.deps().satisfied_by(out.tuples()));
        for t in out.tuples() {
            prop_assert!(out.scheme().admits(&t.attrs()));
        }
    }

    /// Rule (2): projections keep exactly the dependencies whose determinant
    /// survives, and those hold on the materialized output.
    #[test]
    fn projection_propagation_holds(seed in 0u64..500, keep_jobtype in any::<bool>()) {
        let rel = loaded(100, seed);
        let mut x = AttrSet::from_names(["salary", "typing-speed", "products", "sales-commission"]);
        if keep_jobtype {
            x.insert("jobtype");
        }
        let out = ops::project(&rel, &x).unwrap();
        prop_assert!(out.deps().satisfied_by(out.tuples()));
        if !keep_jobtype {
            prop_assert!(out.deps().is_empty(), "dropping the determinant invalidates the EAD");
        } else {
            prop_assert!(out.deps().ads().count() >= 1);
        }
        for t in out.tuples() {
            prop_assert!(out.scheme().admits(&t.attrs()), "{} not admitted", t);
        }
    }

    /// Rule (6): the tagged union keeps the augmented dependencies, and they
    /// hold on the combined instance; the plain union keeps none.
    #[test]
    fn union_vs_tagged_union(seed_a in 0u64..200, seed_b in 200u64..400) {
        let a = loaded(60, seed_a);
        let b = loaded(60, seed_b);
        let plain = ops::union(&a, &b).unwrap();
        prop_assert!(plain.deps().is_empty());
        let tagged = ops::tagged_union(&a, &b, "src", Value::tag("a"), Value::tag("b")).unwrap();
        prop_assert!(!tagged.deps().is_empty());
        prop_assert!(tagged.deps().satisfied_by(tagged.tuples()));
        prop_assert_eq!(tagged.len(), a.len() + b.len());
    }

    /// Horizontal, vertical and multirelation decompositions all restore the
    /// original instance exactly; the flat baseline round-trips through
    /// null-stripping.
    #[test]
    fn decompositions_round_trip(seed in 0u64..500, n in 20usize..150) {
        let rel = loaded(n, seed);
        let ead = example2_jobtype_ead();
        let key = AttrSet::singleton("empno");
        let original = tuple_set(&rel);

        let h = horizontal_decompose(&rel, &ead).unwrap();
        prop_assert_eq!(tuple_set(&h.restore().unwrap()), original.clone());

        let v = vertical_decompose(&rel, &ead, &key).unwrap();
        prop_assert_eq!(tuple_set(&v.restore().unwrap()), original.clone());

        let m = multirel_decompose(&rel, &ead, &key).unwrap();
        prop_assert_eq!(tuple_set(&m.restore().unwrap()), original.clone());

        let flat = to_null_padded(&rel, &ead).unwrap();
        let back: BTreeSet<Tuple> = flat.to_flexible_tuples().into_iter().collect();
        prop_assert_eq!(back, original);
    }

    /// The product of employee data with an unrelated relation keeps both
    /// dependency sets satisfied (rule 1).
    #[test]
    fn product_propagation_holds(seed in 0u64..200, m in 1usize..6) {
        let rel = loaded(40, seed);
        let mut dept = FlexRelation::new(
            "dept",
            flexrel_core::scheme::FlexScheme::relational(AttrSet::from_names(["dname", "budget"])),
        );
        for i in 0..m {
            dept.insert(Tuple::new().with("dname", format!("d{}", i)).with("budget", i as i64)).unwrap();
        }
        let out = ops::product(&rel, &dept).unwrap();
        prop_assert_eq!(out.len(), rel.len() * m);
        prop_assert!(out.deps().satisfied_by(out.tuples()));
    }
}

/// Restoring after dropping every detail still yields one row per master
/// tuple (the unmatched-master path), deterministically.
#[test]
fn vertical_restore_handles_missing_details() {
    let rel = loaded(50, 7);
    let ead = example2_jobtype_ead();
    let mut v = vertical_decompose(&rel, &ead, &AttrSet::singleton("empno")).unwrap();
    for d in &mut v.details {
        *d = FlexRelation::from_parts(
            d.name().to_string(),
            d.scheme().clone(),
            d.domains().clone(),
            d.deps().clone(),
            Vec::new(),
        );
    }
    let restored = v.restore().unwrap();
    assert_eq!(restored.len(), 50);
    assert!(restored.tuples().iter().all(|t| !t.has_name("products")));
}
