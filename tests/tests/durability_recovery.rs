//! Fault-injected crash recovery, end to end: a deterministic crash-point
//! sweep kills the durability layer at **every** write/fsync boundary of a
//! mixed DDL + DML workload and asserts that recovery reproduces exactly
//! the acknowledged operations (the multiset of tuples, the partition
//! catalog, the rebuilt indexes, and every AD/FD — revalidated by
//! `Database::verify_invariants`).  Torn writes and flipped bits on the WAL
//! recover by truncation; a corrupt checkpoint is a clean error.  The WAL
//! record codec itself is property-tested, including shapes past the
//! 64-attribute inline `AttrSet` limit and dictionary-encoded strings.
//!
//! Crash model (see `flexrel_storage::fault`): an operation is durable iff
//! its sync boundary proceeded — which is the moment the database
//! acknowledged it — so the sweep's oracle is simply "replay the acked
//! ops".

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_storage::codec::{read_frame, FrameRead};
use flexrel_storage::{
    CountingFault, Database, DurabilityOptions, FaultAction, IoFault, NoFault, NthEventFault,
    RecordDecoder, RecordEncoder, RelationDef, WalOp, WalRecord,
};
use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

/// A unique scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "flexrel-durability-{}-{}-{:?}",
            tag,
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn options_with(fault: Arc<dyn IoFault>) -> DurabilityOptions {
    DurabilityOptions {
        background_checkpoint: false,
        fault,
        ..DurabilityOptions::default()
    }
}

fn tuple_multiset(ts: impl IntoIterator<Item = Tuple>) -> Vec<Tuple> {
    let mut v: Vec<Tuple> = ts.into_iter().collect();
    v.sort();
    v
}

/// Runs the sweep workload against `dir` under `fault`, acknowledging ops
/// as the database does, and returns `(relation_created, oracle)` where
/// `oracle` is the tuple multiset exactly the acked operations produce.
/// Ops failing after an injected crash are simply not acked — the oracle
/// never sees them.
fn run_workload(dir: &Path, fault: Arc<dyn IoFault>) -> (bool, Vec<Tuple>) {
    let db = match Database::open_with(dir, options_with(fault)) {
        Ok(db) => db,
        Err(_) => return (false, Vec::new()),
    };
    let created = db
        .create_relation(RelationDef::from_relation(&employee_relation()))
        .is_ok();
    // Tracks (rid, tuple) for every acked op; the tuples are the oracle.
    let mut live: Vec<(flexrel_storage::Rid, Tuple)> = Vec::new();

    // Phase 1: plain inserts.
    for t in generate_employees(&EmployeeConfig::clean(8)) {
        if let Ok(rid) = db.insert("employee", t.clone()) {
            live.push((rid, t));
        }
    }
    // Phase 2: a delete and a (shape-preserving) update.
    if let Some((rid, _)) = live.first().cloned() {
        if db.delete("employee", rid).is_ok() {
            live.remove(0);
        }
    }
    if let Some((rid, t)) = live.first().cloned() {
        let mut new = t.clone();
        new.insert("salary", 4321.0);
        if let Ok((new_rid, _)) = db.update("employee", rid, new.clone()) {
            live[0] = (new_rid, new);
        }
    }
    // Phase 3: one committed multi-statement transaction...
    let batch: Vec<Tuple> = generate_employees(&EmployeeConfig::clean(3))
        .into_iter()
        .enumerate()
        .map(|(i, mut t)| {
            t.insert("empno", 60_000 + i as i64);
            t.insert("name", format!("txn-{}", i));
            t
        })
        .collect();
    if let Ok(rids) = db.transact(&["employee"], |tx| {
        let mut rids = Vec::new();
        for t in batch.clone() {
            rids.push(tx.insert("employee", t)?);
        }
        Ok(rids)
    }) {
        live.extend(rids.into_iter().zip(batch));
    }
    // ...and one aborted transaction, which must leave no durable trace.
    let _ = db.transact(&["employee"], |tx| {
        let mut t = generate_employees(&EmployeeConfig::clean(1)).pop().unwrap();
        t.insert("empno", 61_000);
        tx.insert("employee", t)?;
        Err::<(), _>(flexrel_core::error::CoreError::Invalid("abort".into()))
    });
    // Phase 4: an explicit checkpoint, then a post-checkpoint WAL tail.
    let _ = db.checkpoint_now();
    for (i, mut t) in generate_employees(&EmployeeConfig::clean(3))
        .into_iter()
        .enumerate()
    {
        t.insert("empno", 62_000 + i as i64);
        if let Ok(rid) = db.insert("employee", t.clone()) {
            live.push((rid, t));
        }
    }
    (created, live.into_iter().map(|(_, t)| t).collect())
}

/// Reopens `dir` fault-free and checks the recovered state against the
/// oracle: same tuple multiset, all invariants (scheme, domains, AD/FD,
/// index consistency), and the database must accept new durable writes.
fn assert_recovers(dir: &Path, created: bool, oracle: &[Tuple], ctx: &str) {
    let db = Database::open_with(dir, options_with(Arc::new(NoFault)))
        .unwrap_or_else(|e| panic!("{}: recovery must not fail: {}", ctx, e));
    if !created {
        assert!(
            db.scan("employee").is_err(),
            "{}: unacked DDL must not be durable",
            ctx
        );
        return;
    }
    let recovered = tuple_multiset(db.scan("employee").unwrap().into_iter().map(|(_, t)| t));
    assert_eq!(
        recovered,
        tuple_multiset(oracle.iter().cloned()),
        "{}: recovered instance must equal the acked-op oracle",
        ctx
    );
    db.verify_invariants()
        .unwrap_or_else(|e| panic!("{}: recovered invariants violated: {}", ctx, e));
    // The recovered database stays writable and durable.
    let mut extra = generate_employees(&EmployeeConfig::clean(1)).pop().unwrap();
    extra.insert("empno", 99_999);
    db.insert("employee", extra)
        .unwrap_or_else(|e| panic!("{}: recovered database rejects writes: {}", ctx, e));
    assert_eq!(db.count("employee").unwrap(), oracle.len() + 1);
}

/// The tentpole test: crash at **every** I/O boundary the workload
/// crosses, and prove recovery is exact each time.
#[test]
fn crash_point_sweep_recovers_exactly_the_acked_operations() {
    // Pass 1: count the boundaries of the fault-free workload.
    let total = {
        let tmp = TempDir::new("sweep-count");
        let counting = Arc::new(CountingFault::new());
        let (created, _) = run_workload(&tmp.0, Arc::clone(&counting) as Arc<dyn IoFault>);
        assert!(created);
        counting.total()
    };
    assert!(
        total >= 30,
        "the workload should cross many I/O boundaries, saw {}",
        total
    );
    // Pass 2: the sweep. Crash at boundary n for every n, recover, verify.
    for n in 0..total {
        let tmp = TempDir::new(&format!("sweep-{}", n));
        let fault = Arc::new(NthEventFault::new(n, FaultAction::Crash));
        let (created, oracle) = run_workload(&tmp.0, Arc::clone(&fault) as Arc<dyn IoFault>);
        assert!(fault.fired(), "crash point {} never reached", n);
        assert_recovers(
            &tmp.0,
            created,
            &oracle,
            &format!("crash at boundary {}", n),
        );
    }
}

#[test]
fn torn_wal_write_recovers_by_truncation() {
    // Tear a WAL write mid-workload: keep a few bytes of the frame header
    // so the tail is structurally incomplete.  (Boundary 13 is a WalWrite:
    // the workload's create-relation checkpoint crosses boundaries 0-2 and
    // each insert then costs a write+sync pair, so writes sit on odd
    // indices.)
    for keep in [0, 3, 5, 9, 17] {
        let tmp = TempDir::new(&format!("torn-{}", keep));
        let fault = Arc::new(NthEventFault::new(13, FaultAction::Torn { keep }));
        let (created, oracle) = run_workload(&tmp.0, Arc::clone(&fault) as Arc<dyn IoFault>);
        assert!(fault.fired());
        assert_recovers(
            &tmp.0,
            created,
            &oracle,
            &format!("torn write keep={}", keep),
        );
    }
}

#[test]
fn flipped_bit_in_the_wal_is_detected_and_truncated() {
    let tmp = TempDir::new("flip");
    // A dedicated workload with NO checkpoint after the flip — a later
    // checkpoint would rewrite clean state from memory and legitimately
    // mask the corrupt WAL record.  Boundary 9 is the WalWrite of the 4th
    // insert (create-relation's checkpoint crosses boundaries 0-2, each
    // insert then costs a write+sync pair).  Bit 40 lands in byte 5 of
    // the written batch — inside the first frame's CRC, so the record is
    // structurally complete but fails its checksum: the corruption is
    // *silent* until recovery reads it.
    let fault = Arc::new(NthEventFault::new(9, FaultAction::FlipBit { offset: 40 }));
    let oracle: Vec<Tuple> = {
        let db = Database::open_with(&tmp.0, options_with(Arc::clone(&fault) as _)).unwrap();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        let rows = generate_employees(&EmployeeConfig::clean(8));
        for t in rows.clone() {
            // FlipBit proceeds: every insert is acknowledged.
            db.insert("employee", t).unwrap();
        }
        rows
    };
    assert!(fault.fired());
    // The flipped op WAS acked, so recovery loses it and everything
    // logged after it: the recovered instance is a strict subset of the
    // oracle.  What recovery must still guarantee: no panic, corruption
    // detected (truncated tail), invariants intact.
    let db = Database::open_with(&tmp.0, options_with(Arc::new(NoFault))).unwrap();
    assert!(
        db.recovery_info().unwrap().truncated,
        "the CRC mismatch must be detected and truncated"
    );
    let recovered = tuple_multiset(db.scan("employee").unwrap().into_iter().map(|(_, t)| t));
    let oracle = tuple_multiset(oracle);
    assert!(recovered.len() < oracle.len());
    let mut counts: BTreeMap<&Tuple, isize> = BTreeMap::new();
    for t in &oracle {
        *counts.entry(t).or_default() += 1;
    }
    for t in &recovered {
        let c = counts.entry(t).or_default();
        *c -= 1;
        assert!(*c >= 0, "recovered a tuple the oracle never acked: {}", t);
    }
    db.verify_invariants().unwrap();
}

#[test]
fn corrupt_checkpoint_is_a_clean_error_not_a_panic() {
    let tmp = TempDir::new("ckpt-corrupt");
    {
        let db = Database::open_with(&tmp.0, options_with(Arc::new(NoFault))).unwrap();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(10)) {
            db.insert("employee", t).unwrap();
        }
        db.checkpoint_now().unwrap();
    }
    let path = tmp.0.join("checkpoint.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    let err = Database::open_with(&tmp.0, options_with(Arc::new(NoFault)))
        .expect_err("a corrupt checkpoint must be rejected");
    assert!(err.is_corruption(), "unexpected error class: {}", err);
}

#[test]
fn group_commit_batches_syncs_across_concurrent_writers() {
    let tmp = TempDir::new("group-e2e");
    let counting = Arc::new(CountingFault::new());
    const THREADS: usize = 4;
    const PER_THREAD: usize = 25;
    {
        let db = Database::open_with(&tmp.0, options_with(Arc::clone(&counting) as _)).unwrap();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        let ckpt_syncs = counting.wal_syncs();
        std::thread::scope(|s| {
            for w in 0..THREADS {
                let db = db.clone();
                s.spawn(move || {
                    let rows = generate_employees(&EmployeeConfig::clean(PER_THREAD));
                    for (i, mut t) in rows.into_iter().enumerate() {
                        t.insert("empno", (w * PER_THREAD + i) as i64 + 10_000);
                        t.insert("name", format!("w{}-{}", w, i));
                        db.insert("employee", t).unwrap();
                    }
                });
            }
        });
        let commits = THREADS * PER_THREAD;
        let syncs = counting.wal_syncs() - ckpt_syncs;
        assert!(
            syncs <= commits,
            "group commit must never fsync more than once per commit ({} > {})",
            syncs,
            commits
        );
    }
    // And every acked commit survives the restart.
    let db = Database::open_with(&tmp.0, options_with(Arc::new(NoFault))).unwrap();
    assert_eq!(db.count("employee").unwrap(), THREADS * PER_THREAD);
    db.verify_invariants().unwrap();
}

// ---------------------------------------------------------------------------
// WAL record codec properties.
// ---------------------------------------------------------------------------

/// Deterministically builds a tuple from the rng: up to `max_attrs`
/// attributes drawn from a 90-name pool (so shapes regularly exceed the
/// 64-attribute inline `AttrSet` words and exercise the spilled
/// representation), with int, float, string and tag values (strings and
/// tags take the dictionary-encoded column path on the storage side).
fn arb_tuple(rng: &mut TestRng, max_attrs: usize) -> Tuple {
    let n = 1 + (rng.next_u64() as usize) % max_attrs;
    let mut t = Tuple::new();
    for _ in 0..n {
        let a = format!("a{:02}", rng.next_u64() % 90);
        let v = match rng.next_u64() % 4 {
            0 => Value::from(rng.next_u64() as i64 % 10_000),
            1 => Value::from((rng.next_u64() % 1000) as f64 / 8.0),
            2 => Value::from(format!("s{}", rng.next_u64() % 50)),
            _ => Value::tag(format!("t{}", rng.next_u64() % 20)),
        };
        t.insert(a, v);
    }
    t
}

fn arb_record(rng: &mut TestRng) -> WalRecord {
    let rel = format!("r{}", rng.next_u64() % 3);
    match rng.next_u64() % 6 {
        0 => WalRecord::Begin(1 + rng.next_u64() % 100),
        1 => WalRecord::Commit(1 + rng.next_u64() % 100),
        2 => WalRecord::Abort(1 + rng.next_u64() % 100),
        3 => WalRecord::Op {
            txn: rng.next_u64() % 4,
            op: WalOp::Insert {
                relation: rel,
                tuple: arb_tuple(rng, 80),
            },
        },
        4 => WalRecord::Op {
            txn: rng.next_u64() % 4,
            op: WalOp::Delete {
                relation: rel,
                tuple: arb_tuple(rng, 80),
            },
        },
        _ => WalRecord::Op {
            txn: rng.next_u64() % 4,
            op: WalOp::Update {
                relation: rel,
                old: arb_tuple(rng, 80),
                new: arb_tuple(rng, 80),
            },
        },
    }
}

/// Decodes a framed stream back into records.  Returns the records up to
/// the first corrupt frame (and whether corruption was hit).
fn decode_stream(bytes: &[u8]) -> Result<(Vec<WalRecord>, bool), String> {
    let mut dec = RecordDecoder::new();
    let mut records = Vec::new();
    let mut off = 0;
    loop {
        match read_frame(bytes, off) {
            FrameRead::Frame { payload, next } => {
                match dec.decode(payload) {
                    Ok(Some(rec)) => records.push(rec),
                    Ok(None) => {} // shape-table frame
                    Err(e) => return Err(format!("decoder error: {}", e)),
                }
                off = next;
            }
            FrameRead::Eof => return Ok((records, false)),
            FrameRead::Corrupt => return Ok((records, true)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary records — including tuples over >64-attribute shapes and
    /// dictionary-encoded strings — survive encode → frame → decode
    /// bit-identically.
    #[test]
    fn wal_records_round_trip(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let n = 1 + (rng.next_u64() as usize) % 20;
        let records: Vec<WalRecord> = (0..n).map(|_| arb_record(&mut rng)).collect();
        // At least one tuple must exceed the 64-attr inline AttrSet limit
        // across the suite; force it for this case.
        let mut big = Tuple::new();
        for i in 0..70 {
            big.insert(format!("a{:02}", i), i as i64);
        }
        prop_assert!(big.attrs().len() > 64);
        let mut records = records;
        records.push(WalRecord::Op {
            txn: 0,
            op: WalOp::Insert { relation: "wide".into(), tuple: big },
        });

        let mut enc = RecordEncoder::new();
        let mut bytes = Vec::new();
        for rec in &records {
            enc.encode(rec, &mut bytes);
        }
        let (decoded, corrupt) = decode_stream(&bytes).map_err(TestCaseError::fail)?;
        prop_assert!(!corrupt, "clean stream decoded as corrupt");
        prop_assert_eq!(&decoded, &records);
    }

    /// Any single-byte corruption of the encoded stream is detected: the
    /// decode either reports a corrupt/short frame or yields a different
    /// record sequence — it never silently returns the original records.
    #[test]
    fn wal_single_byte_corruption_is_detected(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let n = 1 + (rng.next_u64() as usize) % 8;
        let records: Vec<WalRecord> = (0..n).map(|_| arb_record(&mut rng)).collect();
        let mut enc = RecordEncoder::new();
        let mut bytes = Vec::new();
        for rec in &records {
            enc.encode(rec, &mut bytes);
        }
        prop_assert!(!bytes.is_empty());
        let victim = (rng.next_u64() as usize) % bytes.len();
        let mut flip = (rng.next_u64() % 256) as u8;
        if flip == 0 {
            flip = 1; // guarantee the byte actually changes
        }
        bytes[victim] ^= flip;

        let detected = match decode_stream(&bytes) {
            Err(_) => true,                     // decoder-level corruption
            Ok((_, true)) => true,              // CRC / framing corruption
            Ok((decoded, false)) => decoded != records, // truncated tail
        };
        prop_assert!(
            detected,
            "byte {} corrupted with {:#04x} went unnoticed",
            victim,
            flip
        );
    }
}
