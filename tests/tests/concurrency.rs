//! Concurrency end to end: the shared `Database` under writer/reader
//! contention, transactional atomicity as observed by concurrent scanners,
//! rollback exactness under contention, and the partition-parallel executor
//! checked differentially against serial execution over the E1–E13 query
//! workloads.
//!
//! Dial the load up in CI with `RUST_TEST_THREADS` (test-level parallelism
//! on top of the in-test thread fan-out) and `PROPTEST_CASES`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use proptest::prelude::*;

use flexrel_core::attr::AttrSet;
use flexrel_core::error::CoreError;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_storage::{Database, PartitionInfo, RelationDef};
use flexrel_workload::{
    employee_relation, generate_employees, generate_wide, wide_kind_tag, wide_relation,
    wide_variant_attr, EmployeeConfig, WideConfig,
};

const VARIANTS: usize = 8;

fn wide_db(n: usize) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&wide_relation(VARIANTS)))
        .unwrap();
    for t in generate_wide(&WideConfig::new(n, VARIANTS)) {
        db.insert("wide", t).unwrap();
    }
    db
}

fn employee_db(n: usize, seed: u64) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db
}

fn wide_tuple(id: usize) -> Tuple {
    let v = id % VARIANTS;
    Tuple::new()
        .with("id", id as i64)
        .with("kind", Value::tag(wide_kind_tag(v)))
        .with(wide_variant_attr(v), (id * 7 % 1000) as i64)
}

/// An order-insensitive fingerprint of a relation: tuple multiset,
/// partition infos, and index statistics (key, distinct, len, partials).
type Fingerprint = (
    BTreeMap<Tuple, usize>,
    Vec<PartitionInfo>,
    Vec<(AttrSet, usize, usize, usize)>,
);

fn fingerprint(db: &Database, relation: &str) -> Fingerprint {
    let mut tuples: BTreeMap<Tuple, usize> = BTreeMap::new();
    for (_, t) in db.scan(relation).unwrap() {
        *tuples.entry(t).or_default() += 1;
    }
    let indexes = db
        .indexes(relation)
        .unwrap()
        .into_iter()
        .map(|i| (i.key, i.distinct_keys, i.len, i.partial_tuples))
        .collect();
    (tuples, db.partitions(relation).unwrap(), indexes)
}

/// The parallel executor produces exactly the serial executor's result
/// multiset over the workload families the experiments (E1–E13) query:
/// full scans, filtered and shape-pruned scans, guards, projections,
/// index lookups, hash joins and index-nested-loop joins.
#[test]
fn parallel_execution_matches_serial_on_experiment_workloads() {
    let wide = {
        let db = wide_db(3_000);
        db.create_relation(RelationDef::new(
            "ids",
            flexrel_core::scheme::FlexScheme::relational(AttrSet::singleton("id")),
        ))
        .unwrap();
        for k in [3i64, 700, 1500, 2999] {
            db.insert("ids", Tuple::new().with("id", k)).unwrap();
        }
        db
    };
    let employees = employee_db(500, 11);
    let opts = ExecOptions::parallel(4).with_min_parallel_rows(1);

    let wide_queries = [
        "SELECT * FROM wide",
        "SELECT * FROM wide WHERE kind = 'k0'",
        "SELECT * FROM wide WHERE id > 1500",
        "SELECT id, kind FROM wide WHERE id > 100 GUARD v1",
        "SELECT * FROM wide GUARD v3",
    ];
    for frql in wide_queries {
        let plan = plan_query(&parse(frql).unwrap(), &wide.catalog()).unwrap();
        for plan in [plan.clone(), optimize_with_db(plan, &wide).0] {
            let mut serial = execute(&plan, &wide).unwrap();
            let mut parallel = execute_with(&plan, &wide, &opts).unwrap();
            serial.sort();
            parallel.sort();
            assert_eq!(serial, parallel, "multiset mismatch for {}", frql);
        }
    }
    // Joins: hash (projected self-join) and index-nested-loop (small probe).
    let joins = [
        LogicalPlan::scan("ids").join(LogicalPlan::scan("wide")),
        LogicalPlan::scan("wide")
            .project(AttrSet::from_names(["id", "kind"]))
            .join(LogicalPlan::scan("wide").project(AttrSet::from_names(["id", "v0"]))),
    ];
    for plan in &joins {
        let mut serial = execute(plan, &wide).unwrap();
        let mut parallel = execute_with(plan, &wide, &opts).unwrap();
        serial.sort();
        parallel.sort();
        assert_eq!(serial, parallel, "join multiset mismatch: {}", plan);
    }
    let employee_queries = [
        "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
        "SELECT empno FROM employee WHERE jobtype = 'salesman' GUARD sales-commission",
        "SELECT * FROM employee WHERE empno = 42",
        "SELECT * FROM employee WHERE jobtype = 'secretary' OR jobtype = 'salesman'",
    ];
    for frql in employee_queries {
        let plan = plan_query(&parse(frql).unwrap(), &employees.catalog()).unwrap();
        let (optimized, _) = optimize_with_db(plan, &employees);
        let mut serial = execute(&optimized, &employees).unwrap();
        let mut parallel = execute_with(&optimized, &employees, &opts).unwrap();
        serial.sort();
        parallel.sort();
        assert_eq!(serial, parallel, "multiset mismatch for {}", frql);
    }
}

/// A scan stream captured before a burst of concurrent writes keeps
/// yielding its snapshot; a stream captured after sees the new state.
#[test]
fn streaming_queries_never_observe_a_torn_catalog() {
    let db = wide_db(2_000);
    let plan = LogicalPlan::scan("wide").filter(flexrel_algebra::predicate::Predicate::ge("id", 0));
    let stream = execute_stream(&plan, &db).unwrap();
    // Concurrent shape-churning writes: delete a whole partition (shape
    // drops out of the catalog) and insert a brand-new shape.
    let k0: Vec<_> = db
        .lookup_eq(
            "wide",
            &AttrSet::singleton("kind"),
            &Tuple::new().with("kind", Value::tag(wide_kind_tag(0))),
        )
        .unwrap();
    for (rid, _) in &k0 {
        db.delete("wide", *rid).unwrap();
    }
    assert_eq!(
        db.partitions("wide").unwrap().len(),
        VARIANTS - 1,
        "the k0 partition dropped out of the live catalog"
    );
    let rows: Vec<_> = stream.collect();
    assert_eq!(rows.len(), 2_000, "the open stream kept its snapshot");
    // A fresh execution sees the mutated catalog.
    assert_eq!(execute(&plan, &db).unwrap().len(), 2_000 - k0.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N writer threads committing (and aborting) atomic batches + M
    /// scanning threads over the same relation: no scan ever observes a
    /// half-applied transaction, and the final state is exactly the
    /// committed batches.
    #[test]
    fn writers_and_scanners_never_observe_half_a_transaction(
        seed in 0u64..1000,
        writers in 2usize..4,
        readers in 1usize..3,
        batches in 4usize..10,
        batch_size in 2usize..6,
    ) {
        let base = 64;
        let db = wide_db(base);
        let stop = AtomicBool::new(false);
        let torn = AtomicUsize::new(0);
        let committed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..writers {
                let db = db.clone();
                let committed = &committed;
                handles.push(s.spawn(move || {
                    for b in 0..batches {
                        // A seed-dependent mix of committed and aborted
                        // transactions.
                        let abort = (seed as usize + w + b).is_multiple_of(3);
                        let start_id = base + (w * batches + b) * batch_size;
                        let res = db.transact(&["wide"], |tx| {
                            for k in 0..batch_size {
                                tx.insert("wide", wide_tuple(start_id + k))?;
                            }
                            if abort {
                                Err(CoreError::Invalid("abort".into()))
                            } else {
                                Ok(())
                            }
                        });
                        if res.is_ok() {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }));
            }
            for _ in 0..readers {
                let db = db.clone();
                let (stop, torn) = (&stop, &torn);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let n = db.scan("wide").unwrap().len();
                        if !(n - base).is_multiple_of(batch_size) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            for h in handles {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        prop_assert_eq!(torn.into_inner(), 0, "a scan observed a torn transaction");
        let committed = committed.into_inner();
        prop_assert_eq!(
            db.count("wide").unwrap(),
            base + committed * batch_size,
            "final state is exactly the committed batches"
        );
    }

    /// Rollback under contention restores the partition catalog and every
    /// index exactly: aborted transactions racing committed ones (and
    /// concurrent scanners) leave the database equal to the committed
    /// writes alone — checked against a single-threaded replay.
    #[test]
    fn rollback_under_contention_restores_partitions_and_indexes_exactly(
        seed in 0u64..1000,
        writers in 2usize..4,
        batches in 3usize..8,
    ) {
        let base = 48;
        let batch_size = 4;
        let db = wide_db(base);
        db.create_index("wide", AttrSet::singleton("v0")).unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..writers {
                let db = db.clone();
                handles.push(s.spawn(move || {
                    for b in 0..batches {
                        let abort = (seed as usize + w + b).is_multiple_of(2);
                        let start_id = base + (w * batches + b) * batch_size;
                        let _ = db.transact(&["wide"], |tx| {
                            for k in 0..batch_size {
                                tx.insert("wide", wide_tuple(start_id + k))?;
                            }
                            // Exercise delete/update undo under contention
                            // as well: mutate the batch, then maybe abort.
                            let (rid, t) = tx.scan("wide")?.pop().expect("just inserted");
                            tx.delete("wide", rid)?;
                            tx.insert("wide", t)?;
                            if abort {
                                Err(CoreError::Invalid("abort".into()))
                            } else {
                                Ok(())
                            }
                        });
                    }
                }));
            }
            {
                let db = db.clone();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = db.scan("wide").unwrap().len();
                        let _ = db.partitions("wide").unwrap();
                    }
                });
            }
            for h in handles {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Single-threaded replay of exactly the committed transactions.
        let replay = wide_db(base);
        replay.create_index("wide", AttrSet::singleton("v0")).unwrap();
        for w in 0..writers {
            for b in 0..batches {
                if !(seed as usize + w + b).is_multiple_of(2) {
                    let start_id = base + (w * batches + b) * batch_size;
                    for k in 0..batch_size {
                        replay.insert("wide", wide_tuple(start_id + k)).unwrap();
                    }
                }
            }
        }
        prop_assert_eq!(
            fingerprint(&db, "wide"),
            fingerprint(&replay, "wide"),
            "tuples, partition catalog and index statistics must equal the committed replay"
        );
    }

    /// Statement-level concurrency: raw inserts from several threads with
    /// occasional rejected (constraint-violating) tuples — every accepted
    /// tuple lands, every rejected one leaves no trace, and the FD index
    /// stays exact.
    #[test]
    fn concurrent_inserts_with_rejections_keep_indexes_exact(
        threads in 2usize..5,
        per_thread in 5usize..20,
    ) {
        let db = wide_db(0);
        let accepted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 0..threads {
                let db = db.clone();
                let accepted = &accepted;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let id = w * per_thread + i;
                        let ok = db.insert("wide", wide_tuple(id)).is_ok();
                        assert!(ok, "unique ids are always admissible");
                        accepted.fetch_add(1, Ordering::Relaxed);
                        // A kind/variant mismatch violates the EAD and must
                        // be rejected without side effects.
                        let bad = Tuple::new()
                            .with("id", (100_000 + id) as i64)
                            .with("kind", Value::tag(wide_kind_tag(0)))
                            .with(wide_variant_attr(1), 1);
                        assert!(db.insert("wide", bad).is_err());
                        // A duplicate id with a different kind violates the
                        // FD against a concurrently inserted peer.
                        let dup = {
                            let v = (id + 1) % VARIANTS;
                            Tuple::new()
                                .with("id", id as i64)
                                .with("kind", Value::tag(wide_kind_tag(v)))
                                .with(wide_variant_attr(v), 0)
                        };
                        assert!(db.insert("wide", dup).is_err());
                    }
                });
            }
        });
        let total = accepted.into_inner();
        prop_assert_eq!(total, threads * per_thread);
        prop_assert_eq!(db.count("wide").unwrap(), total);
        let info = db
            .index_info("wide", &AttrSet::singleton("id"))
            .unwrap()
            .unwrap();
        prop_assert_eq!(info.len, total);
        prop_assert_eq!(info.distinct_keys, total);
        // The instance still satisfies every declared dependency.
        prop_assert!(db.snapshot("wide").unwrap().validate_instance().is_ok());
    }
}

/// Sessions on different relations do not contend: writers on `wide` and
/// `employee` plus cross-relation transactions all commit.
#[test]
fn concurrent_sessions_on_distinct_relations_make_progress() {
    let db = wide_db(100);
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig::clean(50)) {
        db.insert("employee", t).unwrap();
    }
    std::thread::scope(|s| {
        {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..100usize {
                    db.insert("wide", wide_tuple(1_000 + i)).unwrap();
                }
            });
        }
        {
            let db = db.clone();
            s.spawn(move || {
                for (i, mut t) in generate_employees(&EmployeeConfig::clean(100))
                    .into_iter()
                    .enumerate()
                {
                    t.insert("empno", 10_000 + i as i64);
                    t.insert("name", format!("x{}", i));
                    db.insert("employee", t).unwrap();
                }
            });
        }
        {
            // A cross-relation transaction declares both (name order avoids
            // deadlock by construction) and commits atomically.
            let db = db.clone();
            s.spawn(move || {
                for i in 0..20usize {
                    db.transact(&["wide", "employee"], |tx| {
                        tx.insert("wide", wide_tuple(5_000 + i))?;
                        let mut e = generate_employees(&EmployeeConfig::clean(1)).pop().unwrap();
                        e.insert("empno", 50_000 + i as i64);
                        e.insert("name", format!("tx{}", i));
                        tx.insert("employee", e)?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(db.count("wide").unwrap(), 100 + 100 + 20);
    assert_eq!(db.count("employee").unwrap(), 50 + 100 + 20);
}
