//! Wire-protocol properties and deterministic server conversations.
//!
//! The codec half mirrors the WAL record suite in `durability_recovery.rs`:
//! arbitrary requests and responses — including result rows over shapes
//! past the 64-attribute inline `AttrSet` words and dictionary-encoded
//! strings — round trip bit-identically through the
//! CRC-checked framing, byte-dribbled reads reassemble, and truncation or
//! single-byte corruption yields a typed [`WireError`], never a panic and
//! never silently the original message.
//!
//! The server half pins down the conversation rules that make client-side
//! pipelining sound: in-order responses, deterministic `Busy` under a zero
//! in-flight cap, deterministic `Timeout` under an expired deadline, the
//! Hello gate, and the drain sequence (buffered statements answered, then
//! `Bye`).

use std::io::Read;
use std::time::Duration;

use proptest::prelude::*;

use flexrel_client::Connection;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_server::proto::{
    decode_request, decode_response, encode_request, encode_response, write_frame, ErrorCode,
    FrameReader, Recv, Request, Response, WireError, WriteOp, PROTOCOL_VERSION,
};
use flexrel_server::{seed_wide, Server, ServerConfig};
use flexrel_storage::Database;

// ---------------------------------------------------------------------------
// Generators (deterministic, driven by the proptest seed stream).
// ---------------------------------------------------------------------------

/// A tuple with up to `max_attrs` attributes from a 90-name pool — shapes
/// regularly exceed the 64-attribute inline `AttrSet` limit — holding every
/// wire value kind except exotic floats (those get a dedicated bit-exact
/// test, since `Value`'s derived `PartialEq` follows IEEE `NaN != NaN`).
fn arb_row(rng: &mut TestRng, max_attrs: usize) -> Tuple {
    let n = 1 + (rng.next_u64() as usize) % max_attrs;
    let mut t = Tuple::new();
    for _ in 0..n {
        let a = format!("a{:02}", rng.next_u64() % 90);
        let v = match rng.next_u64() % 6 {
            0 => Value::from(rng.next_u64() as i64 % 10_000),
            1 => Value::from((rng.next_u64() % 1000) as f64 / 8.0),
            2 => Value::from(format!("s{}", rng.next_u64() % 50)),
            3 => Value::tag(format!("t{}", rng.next_u64() % 20)),
            4 => Value::from(rng.next_u64().is_multiple_of(2)),
            _ => Value::Null,
        };
        t.insert(a, v);
    }
    t
}

/// A tuple guaranteed to spill past the 64-attribute inline representation.
fn big_row() -> Tuple {
    let mut t = Tuple::new();
    for i in 0..70 {
        t.insert(format!("a{:02}", i), i as i64);
    }
    assert!(t.attrs().len() > 64);
    t
}

fn arb_request(rng: &mut TestRng) -> Request {
    match rng.next_u64() % 5 {
        0 => Request::Hello {
            version: rng.next_u64() as u32,
        },
        1 => Request::Query {
            frql: format!(
                "SELECT * FROM r{} WHERE id = {}",
                rng.next_u64() % 3,
                rng.next_u64() % 1000
            ),
        },
        2 => {
            let n = 1 + (rng.next_u64() as usize) % 4;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                if rng.next_u64().is_multiple_of(2) {
                    ops.push(WriteOp::Insert(arb_row(rng, 80)));
                } else {
                    let key_value = arb_row(rng, 6);
                    ops.push(WriteOp::DeleteEq {
                        key: key_value.attrs(),
                        key_value,
                    });
                }
            }
            Request::Transact {
                relation: format!("r{}", rng.next_u64() % 3),
                ops,
            }
        }
        3 => Request::Ping {
            token: rng.next_u64(),
        },
        _ => Request::Goodbye,
    }
}

fn arb_response(rng: &mut TestRng) -> Response {
    const CODES: [ErrorCode; 8] = [
        ErrorCode::Plan,
        ErrorCode::Exec,
        ErrorCode::Constraint,
        ErrorCode::NotFound,
        ErrorCode::Busy,
        ErrorCode::Timeout,
        ErrorCode::Protocol,
        ErrorCode::ShuttingDown,
    ];
    match rng.next_u64() % 7 {
        0 => Response::HelloOk {
            version: rng.next_u64() as u32,
            session: rng.next_u64(),
        },
        1 => {
            let n = (rng.next_u64() as usize) % 8;
            let mut rows: Vec<Tuple> = (0..n).map(|_| arb_row(rng, 80)).collect();
            if rng.next_u64().is_multiple_of(2) {
                rows.push(big_row());
            }
            Response::Rows(rows)
        }
        2 => Response::Explain(format!("Scan(r{})", rng.next_u64() % 3)),
        3 => Response::TxnOk {
            inserted: rng.next_u64() % 100,
            deleted: rng.next_u64() % 100,
        },
        4 => Response::Error {
            code: CODES[(rng.next_u64() as usize) % CODES.len()],
            message: format!("e{}", rng.next_u64() % 50),
        },
        5 => Response::Pong {
            token: rng.next_u64(),
        },
        _ => Response::Bye,
    }
}

/// A `Read` that hands out at most `chunk` bytes per call — simulates the
/// fragmented TCP reads a [`FrameReader`] must reassemble across.
struct TrickleReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Drains every frame from `bytes` through a [`FrameReader`] fed `chunk`
/// bytes per read.  Returns the payloads up to the first error.
fn drain_frames(bytes: &[u8], chunk: usize) -> (Vec<Vec<u8>>, Option<WireError>) {
    let mut r = TrickleReader {
        bytes,
        pos: 0,
        chunk: chunk.max(1),
    };
    let mut reader = FrameReader::new();
    let mut payloads = Vec::new();
    loop {
        match reader.recv(&mut r) {
            Ok(Recv::Message(p)) => payloads.push(p),
            Ok(Recv::Closed) => return (payloads, None),
            Ok(Recv::Idle) => unreachable!("TrickleReader never blocks"),
            Err(e) => return (payloads, Some(e)),
        }
    }
}

// ---------------------------------------------------------------------------
// Codec properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary requests survive encode → frame → byte-dribbled reassembly
    /// → decode bit-identically, whatever the read fragmentation.
    #[test]
    fn requests_round_trip_through_fragmented_frames(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let n = 1 + (rng.next_u64() as usize) % 12;
        let requests: Vec<Request> = (0..n).map(|_| arb_request(&mut rng)).collect();
        let mut bytes = Vec::new();
        for req in &requests {
            write_frame(&mut bytes, &encode_request(req)).unwrap();
        }
        let chunk = 1 + (rng.next_u64() as usize) % 9;
        let (payloads, err) = drain_frames(&bytes, chunk);
        prop_assert!(err.is_none(), "clean stream errored: {:?}", err);
        prop_assert_eq!(payloads.len(), requests.len());
        for (payload, req) in payloads.iter().zip(&requests) {
            let decoded = decode_request(payload).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&decoded, req);
        }
    }

    /// Arbitrary responses — including result sets over spilled >64-attr
    /// shapes and dictionary strings — round trip the same way.
    #[test]
    fn responses_round_trip_through_fragmented_frames(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let n = 1 + (rng.next_u64() as usize) % 10;
        let mut responses: Vec<Response> = (0..n).map(|_| arb_response(&mut rng)).collect();
        // At least one multi-shape result set with a spilled shape per case.
        responses.push(Response::Rows(vec![big_row(), arb_row(&mut rng, 5), big_row()]));
        let mut bytes = Vec::new();
        for rsp in &responses {
            write_frame(&mut bytes, &encode_response(rsp)).unwrap();
        }
        let chunk = 1 + (rng.next_u64() as usize) % 9;
        let (payloads, err) = drain_frames(&bytes, chunk);
        prop_assert!(err.is_none(), "clean stream errored: {:?}", err);
        prop_assert_eq!(payloads.len(), responses.len());
        for (payload, rsp) in payloads.iter().zip(&responses) {
            let decoded = decode_response(payload).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&decoded, rsp);
        }
    }

    /// Truncating the byte stream anywhere yields complete prefix messages
    /// followed by a typed outcome: a clean `Closed` exactly on a frame
    /// boundary, a `Corrupt` error otherwise.  Never a panic, never a
    /// partial message.
    #[test]
    fn truncation_yields_typed_errors_never_panics(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let requests: Vec<Request> = (0..3).map(|_| arb_request(&mut rng)).collect();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for req in &requests {
            write_frame(&mut bytes, &encode_request(req)).unwrap();
            boundaries.push(bytes.len());
        }
        for _ in 0..16 {
            let cut = (rng.next_u64() as usize) % (bytes.len() + 1);
            let (payloads, err) = drain_frames(&bytes[..cut], 7);
            let whole = boundaries.iter().filter(|&&b| b <= cut && b > 0).count();
            prop_assert_eq!(payloads.len(), whole, "cut at {}", cut);
            for (payload, req) in payloads.iter().zip(&requests) {
                let decoded =
                    decode_request(payload).map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(&decoded, req);
            }
            if boundaries.contains(&cut) {
                prop_assert!(err.is_none(), "clean boundary cut at {} errored", cut);
            } else {
                prop_assert!(
                    matches!(err, Some(WireError::Corrupt(_))),
                    "mid-frame cut at {} gave {:?}",
                    cut,
                    err
                );
            }
        }
    }

    /// Any single-byte corruption of a framed message is caught by the
    /// frame CRC (or the length sanity check): the reader reports a typed
    /// `Corrupt` error — it never panics and never silently yields the
    /// original message.
    #[test]
    fn single_byte_corruption_is_detected(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let req = arb_request(&mut rng);
        let mut clean = Vec::new();
        write_frame(&mut clean, &encode_request(&req)).unwrap();
        for _ in 0..16 {
            let victim = (rng.next_u64() as usize) % clean.len();
            let flip = 1u8 << (rng.next_u64() % 8);
            let mut bytes = clean.clone();
            bytes[victim] ^= flip;
            let (payloads, err) = drain_frames(&bytes, 16 * 1024);
            let silently_ok = err.is_none()
                && payloads.len() == 1
                && decode_request(&payloads[0]).map(|d| d == req).unwrap_or(false);
            prop_assert!(
                !silently_ok,
                "flip of bit {:#04x} at byte {} went undetected",
                flip,
                victim
            );
            if let Some(e) = err {
                prop_assert!(
                    matches!(e, WireError::Corrupt(_)),
                    "corruption surfaced as {:?}, not Corrupt",
                    e
                );
            }
        }
    }

    /// Decoding any strict prefix of a valid payload (framing already
    /// stripped) is a typed error, and trailing garbage is rejected too —
    /// the payload decoders are total.
    #[test]
    fn payload_decoders_are_total(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let req = arb_request(&mut rng);
        let payload = encode_request(&req);
        for cut in 0..payload.len() {
            prop_assert!(decode_request(&payload[..cut]).is_err(), "prefix {} decoded", cut);
        }
        let mut padded = payload.clone();
        padded.push(0xFF);
        prop_assert!(decode_request(&padded).is_err(), "trailing byte accepted");

        let rsp = arb_response(&mut rng);
        let payload = encode_response(&rsp);
        for cut in 0..payload.len() {
            prop_assert!(decode_response(&payload[..cut]).is_err(), "prefix {} decoded", cut);
        }
    }
}

/// IEEE-special floats cross the wire bit-exactly: NaN payloads, signed
/// zeros and infinities survive because the codec moves `f64::to_bits`,
/// not a lossy representation.  (Checked via `to_bits` — `Value`'s derived
/// `PartialEq` would call `NaN != NaN` and `-0.0 == 0.0`.)
#[test]
fn special_floats_round_trip_bit_exact() {
    let specials = [
        f64::NAN,
        -f64::NAN,
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        f64::MAX,
        1.0 + f64::EPSILON,
    ];
    let rows: Vec<Tuple> = specials
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let mut t = Tuple::new();
            t.insert("id", i as i64);
            t.insert("x", f);
            t
        })
        .collect();
    let payload = encode_response(&Response::Rows(rows.clone()));
    let Response::Rows(decoded) = decode_response(&payload).unwrap() else {
        panic!("Rows decoded as a different message");
    };
    assert_eq!(decoded.len(), rows.len());
    for (orig, dec) in rows.iter().zip(&decoded) {
        let (Some(Value::Float(a)), Some(Value::Float(b))) =
            (orig.get_name("x"), dec.get_name("x"))
        else {
            panic!("float attribute lost on the wire");
        };
        assert_eq!(a.to_bits(), b.to_bits(), "float bits changed on the wire");
    }
}

// ---------------------------------------------------------------------------
// Deterministic server conversations.
// ---------------------------------------------------------------------------

/// Boots a server over a freshly seeded wide database on an OS-assigned
/// loopback port.
fn boot(cfg: ServerConfig, n: usize) -> Server {
    let db = Database::new();
    seed_wide(&db, n, 4, 0.5).unwrap();
    Server::start(db, "127.0.0.1:0", cfg).unwrap()
}

/// Pipelined statements are answered strictly in request order — each
/// response carries its request's key echo, so any reordering is visible.
#[test]
fn pipelined_statements_are_answered_in_order() {
    let server = boot(ServerConfig::default(), 64);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    for i in 0..10i64 {
        conn.send(&Request::Query {
            frql: format!("SELECT * FROM wide WHERE id = {}", i),
        })
        .unwrap();
    }
    assert_eq!(conn.pending(), 10);
    for i in 0..10i64 {
        match conn.recv().unwrap() {
            Response::Rows(rows) => {
                assert_eq!(rows.len(), 1, "point lookup of id {} fanned out", i);
                assert_eq!(rows[0].get_name("id"), Some(&Value::from(i)));
            }
            other => panic!("statement {} answered out of order: {:?}", i, other),
        }
    }
    conn.close().unwrap();
    server.shutdown();
}

/// With a zero in-flight cap every statement is refused `Busy` — the
/// deterministic backpressure case — while permit-free requests (ping)
/// still flow, and the rejection count is exact.
#[test]
fn zero_inflight_cap_rejects_every_statement_as_busy() {
    let cfg = ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    };
    let server = boot(cfg, 32);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        let err = conn.query("SELECT * FROM wide WHERE id = 0").unwrap_err();
        assert!(err.is_busy(), "expected Busy, got {}", err);
    }
    conn.ping(7).unwrap();
    conn.close().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.busy_rejections, 5);
    assert_eq!(stats.statements_ok, 0);
}

/// An already-expired statement deadline surfaces as a typed `Timeout`
/// error and no partial rows — the cancellation path, made deterministic
/// with a zero timeout.
#[test]
fn expired_statement_deadline_surfaces_as_timeout() {
    let cfg = ServerConfig {
        statement_timeout: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let server = boot(cfg, 256);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let err = conn.query("SELECT * FROM wide").unwrap_err();
    assert!(err.is_timeout(), "expected Timeout, got {}", err);
    conn.close().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.statements_err, 0, "timeout double-counted as error");
}

/// Graceful drain: statements pipelined before shutdown are all answered,
/// then the server says `Bye` — no acked request is dropped.
#[test]
fn drain_answers_pipelined_statements_before_bye() {
    let server = boot(ServerConfig::default(), 64);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        conn.send(&Request::Query {
            frql: "SELECT COUNT(*) FROM wide".into(),
        })
        .unwrap();
    }
    server.request_shutdown();
    for i in 0..5 {
        match conn.recv().unwrap() {
            Response::Rows(rows) => {
                assert_eq!(rows[0].get_name("count"), Some(&Value::from(64i64)));
            }
            other => panic!("pipelined statement {} lost in drain: {:?}", i, other),
        }
    }
    assert!(
        matches!(conn.recv().unwrap(), Response::Bye),
        "drain did not end with Bye"
    );
    server.shutdown();
}

/// The Hello gate: a duplicate Hello is a protocol error, and a version the
/// server does not speak is refused at the handshake.
#[test]
fn hello_violations_are_protocol_errors() {
    let server = boot(ServerConfig::default(), 16);

    // Duplicate Hello on an established session.
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    conn.send(&Request::Hello {
        version: PROTOCOL_VERSION,
    })
    .unwrap();
    match conn.recv().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("duplicate Hello accepted: {:?}", other),
    }

    // Wrong version at the handshake, over a raw socket.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    flexrel_server::write_request(&mut stream, &Request::Hello { version: 999 }).unwrap();
    let mut reader = FrameReader::new();
    let payload = match reader.recv(&mut stream).unwrap() {
        Recv::Message(p) => p,
        other => panic!("no handshake answer: {:?}", other),
    };
    match decode_response(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("wrong version accepted: {:?}", other),
    }

    server.shutdown();
}
