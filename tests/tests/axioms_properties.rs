//! Property-based tests of the axiom systems ℛ and ℰ (Theorems 4.1 and 4.2)
//! over randomly generated dependency sets:
//!
//! * the closure-based implication test agrees with the brute-force
//!   saturation oracle on small universes,
//! * every implied dependency comes with a mechanically verifiable
//!   derivation,
//! * every non-implied dependency is refuted by the appendix's two-tuple
//!   witness relation (which still satisfies all of Σ),
//! * soundness: dependencies implied by Σ hold on instances that satisfy Σ.

use proptest::prelude::*;

use flexrel_core::attr::AttrSet;
use flexrel_core::axioms::{
    derive, implies, non_redundant_cover, saturate, witness_relation, AxiomSystem,
};
use flexrel_core::dep::{Ad, Dependency, DependencySet, Fd};
use flexrel_workload::depgen::{random_dependency_set, universe, DepGenConfig};
use flexrel_workload::{generate_employees, EmployeeConfig};

fn small_sigma(seed: u64, count: usize, fd_fraction: f64) -> (DependencySet, AttrSet) {
    let cfg = DepGenConfig {
        universe: 4,
        count,
        fd_fraction,
        max_lhs: 2,
        max_rhs: 2,
        seed,
    };
    (random_dependency_set(&cfg), universe(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Closure-based implication ≡ exhaustive saturation, for both systems.
    #[test]
    fn implication_agrees_with_saturation(seed in 0u64..1000, count in 2usize..6, fd in 0.0f64..1.0) {
        let (sigma, uni) = small_sigma(seed, count, fd);
        for system in [AxiomSystem::R, AxiomSystem::E] {
            let sat = saturate(&sigma, system.rules(), &uni);
            for x in uni.power_set() {
                for y in uni.power_set() {
                    let ad = Dependency::Ad(Ad::new(x.clone(), y.clone()));
                    prop_assert_eq!(
                        sat.contains(&ad),
                        implies(&sigma, &ad, system),
                        "AD disagreement under {:?} on {}", system, ad
                    );
                    if system == AxiomSystem::E {
                        let fd_dep = Dependency::Fd(Fd::new(x.clone(), y.clone()));
                        prop_assert_eq!(
                            sat.contains(&fd_dep),
                            implies(&sigma, &fd_dep, system),
                            "FD disagreement on {}", fd_dep
                        );
                    }
                }
            }
        }
    }

    /// Every implied dependency has a derivation that verifies step by step;
    /// every non-implied one is refuted by the witness relation.
    #[test]
    fn derivations_and_witnesses(seed in 0u64..1000, count in 2usize..7, fd in 0.0f64..1.0) {
        let (sigma, uni) = small_sigma(seed, count, fd);
        for x in uni.power_set() {
            for y in uni.power_set().into_iter().take(8) {
                let dep = Dependency::Ad(Ad::new(x.clone(), y.clone()));
                if implies(&sigma, &dep, AxiomSystem::E) {
                    let d = derive(&sigma, &dep, AxiomSystem::E).expect("derivation exists");
                    prop_assert!(d.verify(&sigma).is_ok(), "derivation fails to verify for {}", dep);
                    prop_assert_eq!(d.target(), &dep);
                } else {
                    let w = witness_relation(&sigma, &x, &uni, AxiomSystem::E).unwrap();
                    prop_assert!(!w.satisfies(&dep), "witness must violate {}", dep);
                    for given in sigma.iter() {
                        prop_assert!(w.satisfies(given), "witness must satisfy {}", given);
                    }
                }
            }
        }
    }

    /// A non-redundant cover is equivalent to the original set and no larger.
    #[test]
    fn covers_are_equivalent_and_minimal(seed in 0u64..1000, count in 3usize..8) {
        let cfg = DepGenConfig { universe: 6, count, fd_fraction: 0.3, max_lhs: 2, max_rhs: 2, seed };
        let sigma = random_dependency_set(&cfg);
        for system in [AxiomSystem::R, AxiomSystem::E] {
            let cover = non_redundant_cover(&sigma, system);
            prop_assert!(cover.len() <= sigma.len());
            for d in sigma.iter() {
                // System ℛ has no FD rules at all: FDs are inert there and
                // survive in the cover verbatim rather than being implied.
                if system == AxiomSystem::R && d.is_fd() {
                    prop_assert!(cover.contains(d));
                } else {
                    prop_assert!(implies(&cover, d, system), "cover must imply {}", d);
                }
            }
            for d in cover.iter() {
                if system == AxiomSystem::R && d.is_fd() {
                    prop_assert!(sigma.contains(d));
                } else {
                    prop_assert!(implies(&sigma, d, system), "original must imply {}", d);
                }
            }
        }
    }

    /// Soundness on real data: dependencies implied by the employee
    /// dependency set hold on every generated employee instance.
    #[test]
    fn implied_dependencies_hold_on_employee_instances(seed in 0u64..500, n in 20usize..120) {
        let tuples = generate_employees(&EmployeeConfig { n, violation_rate: 0.0, seed });
        let sigma = flexrel_workload::employee_deps();
        // A few dependencies implied by Σ (via projectivity, augmentation,
        // subsumption, combined transitivity).
        let candidates = vec![
            Dependency::Ad(Ad::new(
                AttrSet::singleton("jobtype"),
                AttrSet::from_names(["typing-speed", "products"]),
            )),
            Dependency::Ad(Ad::new(
                AttrSet::from_names(["jobtype", "salary"]),
                AttrSet::singleton("sales-commission"),
            )),
            Dependency::Ad(Ad::new(
                AttrSet::singleton("empno"),
                AttrSet::singleton("foreign-languages"),
            )),
            Dependency::Fd(Fd::new(AttrSet::singleton("empno"), AttrSet::singleton("salary"))),
        ];
        for dep in candidates {
            prop_assert!(implies(&sigma, &dep, AxiomSystem::E), "{} should be implied", dep);
            prop_assert!(dep.satisfied_by(&tuples), "{} must hold on the instance", dep);
        }
    }
}

/// The ℛ-specific non-theorem: AD transitivity is invalid.  There is a
/// two-tuple instance satisfying `A→B` and `B→C` but not `A→C`.
#[test]
fn ad_transitivity_is_refutable() {
    let sigma = DependencySet::from_deps(vec![
        Dependency::Ad(Ad::new(AttrSet::singleton("A"), AttrSet::singleton("B"))),
        Dependency::Ad(Ad::new(AttrSet::singleton("B"), AttrSet::singleton("C"))),
    ]);
    let target = Dependency::Ad(Ad::new(AttrSet::singleton("A"), AttrSet::singleton("C")));
    assert!(!implies(&sigma, &target, AxiomSystem::E));
    let uni = AttrSet::from_names(["A", "B", "C"]);
    let w = witness_relation(&sigma, &AttrSet::singleton("A"), &uni, AxiomSystem::E).unwrap();
    assert!(w.satisfies(&sigma.iter().next().unwrap().clone()));
    assert!(!w.satisfies(&target));
}
