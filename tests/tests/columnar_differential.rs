//! Columnar-vs-row differential suite: the column-major partition storage
//! and its vectorized scan path must be observationally identical to the
//! row-store oracle (`flexrel_storage::Heap` plus per-tuple
//! `Predicate::eval`) — under random mutation sequences, across the
//! paper-style workloads with partial tuples, and after transaction
//! rollback.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::AttrSet;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_storage::{ColumnHeap, Database, Heap, RelationDef, Transaction, TupleId};
use flexrel_workload::{
    employee_relation, generate_employees, generate_wide, wide_relation, EmployeeConfig, JobType,
    WideConfig,
};

fn shape_tuple(id: i64, kind: u8, score: i64) -> Tuple {
    Tuple::new()
        .with("id", id)
        .with("kind", Value::tag(format!("k{}", kind)))
        .with("score", score)
}

fn tuple_multiset(ts: impl IntoIterator<Item = Tuple>) -> Vec<Tuple> {
    let mut v: Vec<Tuple> = ts.into_iter().collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random insert/delete/replace sequences over one tuple shape leave
    /// the columnar heap and the row-store oracle with identical contents,
    /// identical lengths, and identical per-id reads — including slot
    /// reuse after deletes.
    #[test]
    fn columnar_heap_matches_row_heap_under_mutation(seed in 0u64..10_000, n_ops in 50usize..400) {
        let mut rng = TestRng::new(seed);
        let shape = AttrSet::from_names(["id", "kind", "score"]);
        let mut col = ColumnHeap::new(shape);
        let mut row = Heap::new();
        // Live ids, pairing each columnar TupleId with the row-heap id the
        // oracle assigned to the same logical tuple.
        let mut live: Vec<(TupleId, TupleId)> = Vec::new();
        for _ in 0..n_ops {
            // 3:1:1 insert / delete / replace.
            match rng.next_u64() % 5 {
                0..=2 => {
                    let t = shape_tuple(
                        (rng.next_u64() % 10_000) as i64,
                        (rng.next_u64() % 4) as u8,
                        (rng.next_u64() % 1_000) as i64,
                    );
                    live.push((col.insert(t.clone()), row.insert(t)));
                }
                3 if !live.is_empty() => {
                    let pick = (rng.next_u64() as usize) % live.len();
                    let (ct, rt) = live.swap_remove(pick);
                    let from_col = col.delete(ct);
                    let from_row = row.delete(rt);
                    prop_assert_eq!(from_col, from_row);
                }
                4 if !live.is_empty() => {
                    let pick = (rng.next_u64() as usize) % live.len();
                    let (ct, rt) = live[pick];
                    let score = (rng.next_u64() % 1_000) as i64;
                    let t = shape_tuple(score * 3, (score % 4) as u8, score);
                    let old_col = col.replace(ct, t.clone());
                    let old_row = row.replace(rt, t);
                    prop_assert_eq!(old_col, old_row);
                }
                _ => {}
            }
        }
        prop_assert_eq!(col.len(), row.len());
        prop_assert_eq!(tuple_multiset(col.all_tuples()), tuple_multiset(row.all_tuples()));
        for (ct, rt) in &live {
            prop_assert_eq!(col.get(*ct), row.get(*rt).cloned());
            prop_assert_eq!(col.get_ref(*ct).map(|r| r.to_tuple()), col.get(*ct));
        }
    }
}

fn employee_db(n: usize, seed: u64) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db
}

/// The row-store oracle for a predicate: materialize every stored tuple
/// and apply `Predicate::eval` tuple-at-a-time.
fn oracle(db: &Database, rel: &str, pred: &Predicate) -> BTreeSet<Tuple> {
    db.scan(rel)
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .filter(|t| pred.eval(t))
        .collect()
}

/// Runs the plan through the (vectorized) executor, naive and optimized.
fn both_plans(db: &Database, rel: &str, pred: &Predicate) -> (BTreeSet<Tuple>, BTreeSet<Tuple>) {
    let plan = LogicalPlan::scan(rel).filter(pred.clone());
    let naive: BTreeSet<Tuple> = execute(&plan, db).unwrap().into_iter().collect();
    let (optimized, _) = optimize(plan, &db.catalog());
    let fast: BTreeSet<Tuple> = execute(&optimized, db).unwrap().into_iter().collect();
    (naive, fast)
}

/// A family of predicates exercising the vectorized comparison kernels on
/// every value kind plus the shape-level folding paths: comparisons on
/// unconditioned attributes, on *partial* (variant-only) attributes that
/// are absent from most shapes, presence guards, and boolean combinations
/// including `Not` (whose bitmap complement must mask dead slots).
fn predicate_family(job: JobType, salary: f64, speed: i64) -> Vec<Predicate> {
    let jobtag = Value::tag(job.tag());
    vec![
        Predicate::eq("jobtype", jobtag.clone()),
        Predicate::ne("jobtype", jobtag.clone()),
        Predicate::gt("salary", salary),
        Predicate::le("salary", salary),
        // Partial attribute: only secretary-shaped tuples carry it; every
        // other shape must fold the comparison to constant-false.
        Predicate::gt("typing-speed", speed),
        Predicate::present(AttrSet::singleton("typing-speed")),
        Predicate::present(AttrSet::from_names(["typing-speed", "salary"])),
        Predicate::eq("jobtype", jobtag.clone()).and(Predicate::gt("salary", salary)),
        Predicate::gt("typing-speed", speed).or(Predicate::gt("salary", salary)),
        Predicate::eq("jobtype", jobtag).negate(),
        Predicate::present(AttrSet::singleton("typing-speed")).negate(),
        Predicate::gt("salary", salary).negate(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Vectorized execution over the columnar partitions agrees with the
    /// row-store oracle for the whole predicate family, on the employee
    /// workload (three shapes, partial variant attributes).
    #[test]
    fn columnar_execute_matches_row_oracle_on_employees(
        seed in 0u64..200,
        n in 50usize..250,
        job_idx in 0usize..3,
        salary in 2_000f64..9_000f64,
        speed in 150i64..400,
    ) {
        let db = employee_db(n, seed);
        let job = JobType::all()[job_idx];
        for pred in predicate_family(job, salary, speed) {
            let reference = oracle(&db, "employee", &pred);
            let (naive, fast) = both_plans(&db, "employee", &pred);
            prop_assert_eq!(&naive, &reference, "naive vs oracle for {:?}", pred);
            prop_assert_eq!(&fast, &reference, "optimized vs oracle for {:?}", pred);
        }
    }

    /// The same agreement on the k-variant wide workload (many shapes,
    /// every tuple partial on all but one variant attribute), including
    /// the partition-pruned scan path.
    #[test]
    fn columnar_execute_matches_row_oracle_on_wide(
        n in 50usize..250,
        variants in 2usize..9,
        kind in 0usize..4,
        threshold in 0i64..1_000,
    ) {
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&wide_relation(variants)))
            .unwrap();
        for t in generate_wide(&WideConfig::new(n, variants).with_skew(0.7)) {
            db.insert("wide", t).unwrap();
        }
        let kind = kind % variants;
        let preds = [
            Predicate::eq("kind", Value::tag(format!("k{}", kind))),
            Predicate::gt(format!("v{}", kind), threshold),
            Predicate::present(AttrSet::singleton(format!("v{}", kind))).negate(),
            Predicate::ge("id", (n / 2) as i64)
                .and(Predicate::eq("kind", Value::tag(format!("k{}", kind))).negate()),
        ];
        for pred in preds {
            let reference = oracle(&db, "wide", &pred);
            let (naive, fast) = both_plans(&db, "wide", &pred);
            prop_assert_eq!(&naive, &reference, "naive vs oracle for {:?}", pred);
            prop_assert_eq!(&fast, &reference, "optimized vs oracle for {:?}", pred);
        }
    }
}

/// After a rolled-back transaction the columnar partitions must read back
/// exactly the pre-transaction state — the COW segments undone, freed
/// slots reusable, and the vectorized scan path in agreement with the
/// oracle again (this is the path where a stale selection bitmap or a
/// missed segment copy would show up).
#[test]
fn post_rollback_scans_match_the_row_oracle() {
    let db = employee_db(120, 7);
    let pred = Predicate::gt("salary", 4_000.0);
    let before_oracle = oracle(&db, "employee", &pred);
    let before_all: BTreeSet<Tuple> = db
        .scan("employee")
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();

    // A transactional batch that grows two partitions and then aborts.
    let mut txn = Transaction::begin();
    for (i, mut t) in generate_employees(&EmployeeConfig {
        n: 40,
        violation_rate: 0.0,
        seed: 8,
    })
    .into_iter()
    .enumerate()
    {
        t.insert("empno", 50_000 + i as i64);
        db.insert_txn(&mut txn, "employee", t).unwrap();
    }
    db.rollback(txn).unwrap();

    let after_all: BTreeSet<Tuple> = db
        .scan("employee")
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    assert_eq!(
        before_all, after_all,
        "rollback restores the exact contents"
    );
    assert_eq!(oracle(&db, "employee", &pred), before_oracle);
    let (naive, fast) = both_plans(&db, "employee", &pred);
    assert_eq!(naive, before_oracle);
    assert_eq!(fast, before_oracle);

    // The freed columnar slots are live again: a fresh batch inserts
    // cleanly and the differential still holds.
    for (i, mut t) in generate_employees(&EmployeeConfig {
        n: 30,
        violation_rate: 0.0,
        seed: 9,
    })
    .into_iter()
    .enumerate()
    {
        t.insert("empno", 60_000 + i as i64);
        db.insert("employee", t).unwrap();
    }
    assert_eq!(db.count("employee").unwrap(), 150);
    let reference = oracle(&db, "employee", &pred);
    let (naive, fast) = both_plans(&db, "employee", &pred);
    assert_eq!(naive, reference);
    assert_eq!(fast, reference);

    // And the snapshot view stays internally consistent.
    let snap = db.snapshot("employee").unwrap();
    assert!(snap.validate_instance().is_ok());
    assert_eq!(snap.len(), 150);
}
