//! Semantic rewrites, end to end: the optimizer-v2 pipeline (dependency-
//! derived rewrites plus the statistics-backed cost pass) never changes
//! query results — checked against the naive plan on both the late
//! materialized and the row-oracle pipelines — fires exactly when the
//! declared dependencies justify it (removing the FD must disable join
//! elimination), and produces the expected plan shapes on the E17
//! catalogue.

use proptest::prelude::*;

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::AttrSet;
use flexrel_core::attrs;
use flexrel_core::scheme::FlexScheme;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_storage::{Database, RelationDef};
use flexrel_workload::{
    employee_relation, generate_employees, generate_wide, wide_relation, EmployeeConfig, WideConfig,
};

fn employee_db(n: usize, seed: u64) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// The catalogue of plans E17 measures, each labelled with the rewrite it
/// must trigger on the `employee` relation.
fn catalogue() -> Vec<(&'static str, LogicalPlan)> {
    vec![
        (
            // empno → name, both mandatory: the bare fetch side is redundant.
            "join-elimination",
            LogicalPlan::scan("employee")
                .filter(Predicate::gt("salary", 5000))
                .project(attrs!["empno"])
                .join(LogicalPlan::scan("employee").project(attrs!["empno", "name"])),
        ),
        (
            // empno → name: every group is a singleton, COUNT(*) is 1.
            "groupby-elimination",
            LogicalPlan::scan("employee")
                .project(attrs!["empno", "name"])
                .aggregate(
                    AttrSet::singleton("empno"),
                    vec![AggExpr::new(AggFunc::Count, None)],
                ),
        ),
        (
            // name and salary sit in every DNF disjunct: the guard is vacuous.
            "guard-elimination",
            LogicalPlan::scan("employee").guard(attrs!["name", "salary"]),
        ),
        (
            // jobtype = secretary pins the EAD variant; sales-commission is
            // outside it, so its atom folds to false inside the disjunction.
            "ead-predicate-simplification",
            LogicalPlan::scan("employee")
                .filter(Predicate::eq_tag("jobtype", "secretary").and(
                    Predicate::gt("typing-speed", 0).or(Predicate::gt("sales-commission", 0)),
                )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Optimized-v2 plans return exactly the naive plan's rows, on both the
    /// late-materialized pipeline and the row-at-a-time oracle, for every
    /// catalogue entry — and each entry triggers its advertised rewrite.
    #[test]
    fn rewritten_plans_agree_with_naive_and_row_oracle(seed in 0u64..500, n in 40usize..200) {
        let db = employee_db(n, seed);
        let late = ExecOptions::serial();
        let row = ExecOptions::serial().row_pipeline();
        for (rule, naive) in catalogue() {
            let (optimized, notes) = optimize_with_db(naive.clone(), &db);
            prop_assert!(
                notes.iter().any(|x| x.rule == rule),
                "{} did not fire on {}", rule, naive
            );
            let expect = sorted(execute_with(&naive, &db, &late).unwrap());
            prop_assert_eq!(
                &expect,
                &sorted(execute_with(&naive, &db, &row).unwrap()),
                "naive late/row pipelines diverged for {}", rule
            );
            prop_assert_eq!(
                &expect,
                &sorted(execute_with(&optimized, &db, &late).unwrap()),
                "{} changed results (late pipeline)", rule
            );
            prop_assert_eq!(
                &expect,
                &sorted(execute_with(&optimized, &db, &row).unwrap()),
                "{} changed results (row oracle)", rule
            );
        }
    }

    /// The cost pass may reorder a multi-way join any way it likes; the
    /// result multiset must not move.
    #[test]
    fn reordered_joins_agree_with_naive(seed in 0u64..500, links in 1usize..20) {
        let db = three_way_db(200, links, seed);
        let naive = LogicalPlan::scan("wide")
            .join(LogicalPlan::scan("employee"))
            .join(LogicalPlan::scan("assignment"));
        let (optimized, notes) = optimize_with_db(naive.clone(), &db);
        prop_assert!(notes.iter().any(|x| x.rule == "join-ordering"));
        let expect = sorted(execute(&naive, &db).unwrap());
        prop_assert_eq!(expect.len(), links);
        prop_assert_eq!(expect, sorted(execute(&optimized, &db).unwrap()));
    }
}

/// The E17 fixture: small `assignment` bridging two larger relations that
/// share no attribute with each other.
fn three_way_db(n: usize, links: usize, seed: u64) -> Database {
    let wide_n = n / 2;
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&wide_relation(4)))
        .unwrap();
    for t in generate_wide(&WideConfig::new(wide_n, 4)) {
        db.insert("wide", t).unwrap();
    }
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db.create_relation(RelationDef::new(
        "assignment",
        FlexScheme::relational(attrs!["id", "empno"]),
    ))
    .unwrap();
    for k in 0..links {
        db.insert(
            "assignment",
            Tuple::new()
                .with("id", (k * (wide_n / links)) as i64)
                .with("empno", (k * (n / links)) as i64),
        )
        .unwrap();
    }
    db
}

/// Removing the FD removes the justification: on a dependency-free copy of
/// the employee scheme the very same plans must survive un-rewritten.
#[test]
fn without_the_fd_join_and_groupby_elimination_must_not_fire() {
    let db = Database::new();
    db.create_relation(RelationDef::new(
        "freeform",
        employee_relation().scheme().clone(),
    ))
    .unwrap();
    for t in generate_employees(&EmployeeConfig::clean(100)) {
        db.insert("freeform", t).unwrap();
    }

    let join = LogicalPlan::scan("freeform")
        .filter(Predicate::gt("salary", 5000))
        .project(attrs!["empno"])
        .join(LogicalPlan::scan("freeform").project(attrs!["empno", "name"]));
    let (optimized, notes) = optimize_with_db(join.clone(), &db);
    assert!(
        !notes.iter().any(|x| x.rule == "join-elimination"),
        "join elimination fired without the FD empno → name"
    );
    assert_eq!(optimized.join_count(), 1, "the join must survive");
    // Still the same rows, of course.
    assert_eq!(
        sorted(execute(&join, &db).unwrap()),
        sorted(execute(&optimized, &db).unwrap())
    );

    let agg = LogicalPlan::scan("freeform")
        .project(attrs!["empno", "name"])
        .aggregate(
            AttrSet::singleton("empno"),
            vec![AggExpr::new(AggFunc::Count, None)],
        );
    let (optimized, notes) = optimize_with_db(agg.clone(), &db);
    assert!(
        !notes.iter().any(|x| x.rule == "groupby-elimination"),
        "group-by elimination fired without the FD"
    );
    assert!(
        matches!(optimized, LogicalPlan::Aggregate { .. }),
        "the aggregate must survive: {}",
        optimized
    );
}

/// Plan snapshots for the E17 catalogue: the rewrites do not just fire,
/// they produce exactly the expected plan shapes.
#[test]
fn e17_catalogue_plan_snapshots() {
    let db = employee_db(120, 7);

    // Join elimination: the fetch side folds into a widened projection
    // over the probe's input.
    let (plan, _) = optimize_with_db(catalogue().remove(0).1, &db);
    assert_eq!(
        plan.to_string(),
        "Project {empno, name}\n  Filter salary > 5000\n    Scan employee [partitions: shape ⊇ {salary}]\n"
    );

    // Group-by elimination: singleton groups become a projection plus the
    // constant COUNT(*) column.
    let (plan, _) = optimize_with_db(catalogue().remove(1).1, &db);
    assert_eq!(
        plan.to_string(),
        "Extend count := 1\n  Project {empno}\n    Scan employee\n"
    );

    // Vacuous guard: gone without residue.
    let (plan, _) = optimize_with_db(catalogue().remove(2).1, &db);
    assert_eq!(plan.guard_count(), 0);
    assert_eq!(plan.to_string(), "Scan employee\n");

    // EAD simplification: the impossible disjunct disappears from the
    // predicate (and the equality then takes the jobtype index).
    let (plan, _) = optimize_with_db(catalogue().remove(3).1, &db);
    let rendered = plan.to_string();
    assert!(
        rendered.starts_with("Filter typing-speed > 0")
            && !rendered.contains("sales-commission > 0"),
        "the absent-attribute atom must be folded away:\n{}",
        rendered
    );

    // Cost-based ordering: the tiny bridge first, each large relation
    // joined after it.
    let db = three_way_db(300, 10, 7);
    let naive = LogicalPlan::scan("wide")
        .join(LogicalPlan::scan("employee"))
        .join(LogicalPlan::scan("assignment"));
    let (plan, _) = optimize_with_db(naive, &db);
    let rendered = plan.to_string();
    let pos = |rel: &str| {
        rendered
            .find(&format!("Scan {}", rel))
            .unwrap_or_else(|| panic!("{} missing from:\n{}", rel, rendered))
    };
    assert!(
        pos("assignment") < pos("wide") && pos("wide") < pos("employee"),
        "expected assignment ⋈ wide ⋈ employee, got:\n{}",
        rendered
    );
}

/// `eq_tag` helper is not on Predicate — keep the catalogue readable.
trait EqTag {
    fn eq_tag(attr: &str, tag: &str) -> Predicate;
}
impl EqTag for Predicate {
    fn eq_tag(attr: &str, tag: &str) -> Predicate {
        Predicate::eq(attr, Value::tag(tag))
    }
}
