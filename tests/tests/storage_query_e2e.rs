//! End-to-end storage + query integration: FRQL results computed through the
//! planner/optimizer/executor agree with straightforward in-memory filtering,
//! for randomized data and a family of query templates.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_storage::{Database, RelationDef, Transaction};
use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig, JobType};

fn database(n: usize, seed: u64) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db
}

fn reference_filter(
    db: &Database,
    jobtype: Option<&str>,
    min_salary: Option<f64>,
) -> BTreeSet<Tuple> {
    db.scan("employee")
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .filter(|t| {
            jobtype
                .map(|j| t.get_name("jobtype") == Some(&Value::tag(j)))
                .unwrap_or(true)
                && min_salary
                    .map(|s| {
                        t.get_name("salary")
                            .and_then(|v| v.as_f64())
                            .map(|v| v > s)
                            .unwrap_or(false)
                    })
                    .unwrap_or(true)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Optimized and unoptimized plans agree with each other and with a
    /// hand-rolled reference filter, for every jobtype and salary threshold.
    #[test]
    fn frql_agrees_with_reference(seed in 0u64..200, n in 50usize..300, job_idx in 0usize..3, min_salary in 2000i64..9000) {
        let db = database(n, seed);
        let job = JobType::all()[job_idx];
        let frql = format!(
            "SELECT * FROM employee WHERE jobtype = '{}' AND salary > {}",
            job.tag(),
            min_salary
        );
        let q = parse(&frql).unwrap();
        let plan = plan_query(&q, &db.catalog()).unwrap();
        let naive: BTreeSet<Tuple> = execute(&plan, &db).unwrap().into_iter().collect();
        let (optimized, _) = optimize(plan, &db.catalog());
        let fast: BTreeSet<Tuple> = execute(&optimized, &db).unwrap().into_iter().collect();
        let reference = reference_filter(&db, Some(job.tag()), Some(min_salary as f64));
        prop_assert_eq!(&naive, &reference);
        prop_assert_eq!(&fast, &reference);
    }

    /// A guard for the selected variant's own attributes never changes the
    /// result (it is redundant); a guard for another variant's attributes
    /// always empties it.
    #[test]
    fn guards_behave_as_the_ead_dictates(seed in 0u64..200, n in 50usize..200, job_idx in 0usize..3) {
        let db = database(n, seed);
        let job = JobType::all()[job_idx];
        let own_attr = job.variant_attrs().iter().next().unwrap().name().to_string();
        let other = JobType::all().into_iter().find(|j| *j != job).unwrap();
        let foreign_attr = other
            .variant_attrs()
            .difference(&job.variant_attrs())
            .iter()
            .next()
            .unwrap()
            .name()
            .to_string();

        let base = format!("SELECT * FROM employee WHERE jobtype = '{}'", job.tag());
        let with_own_guard = format!("{} GUARD {}", base, own_attr);
        let with_foreign_guard = format!("{} GUARD {}", base, foreign_attr);

        let run = |frql: &str| -> BTreeSet<Tuple> {
            let q = parse(frql).unwrap();
            let plan = plan_query(&q, &db.catalog()).unwrap();
            let (optimized, _) = optimize(plan, &db.catalog());
            execute(&optimized, &db).unwrap().into_iter().collect()
        };
        prop_assert_eq!(run(&base), run(&with_own_guard));
        prop_assert!(run(&with_foreign_guard).is_empty());
    }

    /// Transactional bulk loads either commit completely or roll back
    /// completely when a violation is injected.
    #[test]
    fn transactional_loads_are_atomic(seed in 0u64..200, n in 10usize..60, inject in any::<bool>()) {
        let db = database(10, seed);
        let before = db.count("employee").unwrap();
        let mut txn = Transaction::begin();
        let mut batch = generate_employees(&EmployeeConfig { n, violation_rate: 0.0, seed: seed + 1 });
        for (i, t) in batch.iter_mut().enumerate() {
            t.insert("empno", 10_000 + i as i64);
        }
        if inject {
            // A tuple violating the jobtype EAD aborts the load.
            let mut bad = batch[n / 2].clone();
            bad.insert("empno", 99_999);
            bad.insert("jobtype", Value::tag("salesman"));
            bad.insert("typing-speed", 100);
            bad.remove(&"products".into());
            bad.remove(&"sales-commission".into());
            bad.remove(&"foreign-languages".into());
            batch.insert(n / 2, bad);
        }
        let mut failed = false;
        for t in batch {
            if db.insert_txn(&mut txn, "employee", t).is_err() {
                failed = true;
                break;
            }
        }
        if failed {
            db.rollback(txn).unwrap();
            prop_assert_eq!(db.count("employee").unwrap(), before);
        } else {
            txn.commit();
            prop_assert_eq!(db.count("employee").unwrap(), before + n);
        }
        prop_assert_eq!(failed, inject);
    }
}

/// Snapshots taken from the storage engine satisfy their own declared
/// dependencies and scheme — the engine never lets inconsistent data in.
#[test]
fn snapshots_are_always_consistent() {
    let db = database(400, 3);
    let snap = db.snapshot("employee").unwrap();
    assert!(snap.validate_instance().is_ok());
    assert_eq!(snap.len(), 400);
}
