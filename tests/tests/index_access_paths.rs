//! Index access paths, end to end: `lookup_eq` through an index agrees with
//! the scan fallback on randomized flexible instances (including tuples not
//! defined on the key), database-aware optimized plans (IndexLookup +
//! index-nested-loop joins) produce exactly the rows of the unoptimized
//! plans, and transactional updates on indexed relations roll back cleanly.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flexrel_bench::experiments::wide_access_path_db;
use flexrel_core::attr::AttrSet;
use flexrel_core::attrs;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_storage::{Database, RelationDef, Transaction};
use flexrel_workload::{
    employee_relation, generate_employees, generate_wide, wide_relation, EmployeeConfig, JobType,
    WideConfig,
};

fn employee_db(n: usize, seed: u64) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db
}

/// The scan-fallback semantics of an equality lookup, computed by hand.
fn lookup_by_scan(
    db: &Database,
    relation: &str,
    key: &AttrSet,
    key_value: &Tuple,
) -> BTreeSet<Tuple> {
    db.scan(relation)
        .unwrap()
        .into_iter()
        .map(|(_, t)| t)
        .filter(|t| t.defined_on(key) && &t.project(key) == key_value)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// An indexed `lookup_eq` returns exactly the tuples the scan fallback
    /// returns — for the determinant indexes, for a secondary index on a
    /// variant attribute most tuples are *not* defined on, and for an
    /// unindexed key (the fallback itself).
    #[test]
    fn lookup_eq_agrees_with_scan_fallback(seed in 0u64..500, n in 30usize..200, job_idx in 0usize..3) {
        let db = employee_db(n, seed);
        // Secondary index on a variant attribute: salesman/engineer tuples
        // land in the partial list.
        db.create_index("employee", attrs!["typing-speed"]).unwrap();

        // Determinant index probe (jobtype).
        let job = JobType::all()[job_idx];
        let key = attrs!["jobtype"];
        let key_value = Tuple::new().with("jobtype", Value::tag(job.tag()));
        prop_assert!(db.has_index("employee", &key));
        let via_index: BTreeSet<Tuple> = db
            .lookup_eq("employee", &key, &key_value).unwrap()
            .into_iter().map(|(_, t)| t.clone()).collect();
        prop_assert_eq!(via_index, lookup_by_scan(&db, "employee", &key, &key_value));

        // Secondary index probe on the sparse attribute.
        let key = attrs!["typing-speed"];
        let sample = db
            .scan("employee").unwrap().into_iter()
            .find_map(|(_, t)| t.get_name("typing-speed").cloned());
        if let Some(v) = sample {
            let key_value = Tuple::new().with("typing-speed", v);
            let via_index: BTreeSet<Tuple> = db
                .lookup_eq("employee", &key, &key_value).unwrap()
                .into_iter().map(|(_, t)| t.clone()).collect();
            prop_assert!(!via_index.is_empty());
            prop_assert_eq!(via_index, lookup_by_scan(&db, "employee", &key, &key_value));
        }
        // The partial list is exactly the complement of key coverage.
        let partial = db.lookup_partial("employee", &key).unwrap();
        let not_defined = db.scan("employee").unwrap().into_iter()
            .filter(|(_, t)| !t.defined_on(&key)).count();
        prop_assert_eq!(partial.len(), not_defined);

        // Unindexed key: both sides take the scan path and still agree.
        let key = attrs!["name"];
        let key_value = Tuple::new().with("name", "emp3");
        prop_assert!(!db.has_index("employee", &key));
        let via_scan: BTreeSet<Tuple> = db
            .lookup_eq("employee", &key, &key_value).unwrap()
            .into_iter().map(|(_, t)| t.clone()).collect();
        prop_assert_eq!(via_scan, lookup_by_scan(&db, "employee", &key, &key_value));
    }

    /// Database-aware optimization (index lookups, index-nested-loop joins)
    /// never changes query results — the acceptance differential.
    #[test]
    fn indexed_plans_agree_with_unoptimized_plans(seed in 0u64..500, n in 50usize..250, job_idx in 0usize..3, key in 0i64..250) {
        let db = employee_db(n, seed);
        let job = JobType::all()[job_idx];
        let queries = [
            format!("SELECT * FROM employee WHERE empno = {}", key % n as i64),
            format!("SELECT * FROM employee WHERE jobtype = '{}'", job.tag()),
            format!("SELECT empno, salary FROM employee WHERE jobtype = '{}' AND salary > 4000", job.tag()),
            format!("SELECT * FROM employee WHERE empno = {} AND jobtype = '{}'", key % n as i64, job.tag()),
        ];
        for frql in queries {
            let q = parse(&frql).unwrap();
            let plan = plan_query(&q, &db.catalog()).unwrap();
            let naive: BTreeSet<Tuple> = execute(&plan, &db).unwrap().into_iter().collect();
            let (indexed, _) = optimize_with_db(plan, &db);
            prop_assert!(indexed.index_lookup_count() <= 1);
            let fast: BTreeSet<Tuple> = execute(&indexed, &db).unwrap().into_iter().collect();
            prop_assert_eq!(&naive, &fast, "results diverged for {}", &frql);
        }
    }

    /// Both join strategies produce the same rows on the wide workload, for
    /// uniform and skewed key distributions.
    #[test]
    fn join_strategies_agree(n in 100usize..400, variants in 2usize..6, skew in 0u8..3) {
        // The shared fixture: `wide` (indexed), its dependency-free shadow
        // `wide_nx` (no indexes — always the hash path) and 8 probe keys.
        let db = wide_access_path_db(n, variants, skew as f64, 8);
        let inl_plan = LogicalPlan::scan("ids").join(LogicalPlan::scan("wide"));
        prop_assert_eq!(
            join_strategy(&LogicalPlan::scan("ids"), &LogicalPlan::scan("wide"), &db),
            JoinStrategy::IndexNestedLoopRight
        );
        let hash_plan = LogicalPlan::scan("ids").join(LogicalPlan::scan("wide_nx"));
        prop_assert_eq!(
            join_strategy(&LogicalPlan::scan("ids"), &LogicalPlan::scan("wide_nx"), &db),
            JoinStrategy::Hash
        );
        let inl: BTreeSet<Tuple> = execute(&inl_plan, &db).unwrap().into_iter().collect();
        let hash: BTreeSet<Tuple> = execute(&hash_plan, &db).unwrap().into_iter().collect();
        prop_assert_eq!(inl, hash);
    }

    /// A transaction mixing inserts, updates (shape-changing and not) and
    /// deletes on an indexed relation aborts back to exactly the initial
    /// partition catalog, tuple set and index statistics.
    #[test]
    fn mixed_transaction_abort_restores_indexed_relation(seed in 0u64..500, n in 20usize..80) {
        let db = employee_db(n, seed);
        db.create_index("employee", attrs!["name"]).unwrap();
        let parts_before = db.partitions("employee").unwrap();
        let tuples_before: BTreeSet<Tuple> =
            db.scan("employee").unwrap().into_iter().map(|(_, t)| t).collect();
        let indexes_before = db.indexes("employee").unwrap();

        let mut txn = Transaction::begin();
        // Insert a fresh secretary.
        let new_rid = db.insert_txn(&mut txn, "employee", Tuple::new()
            .with("empno", 90_001)
            .with("name", "txn-sec")
            .with("salary", 4321.0)
            .with("jobtype", Value::tag("secretary"))
            .with("typing-speed", 250)
            .with("foreign-languages", "italian")).unwrap();
        // Shape-changing update of that tuple (secretary → salesman).
        let moved = Tuple::new()
            .with("empno", 90_001)
            .with("name", "txn-sec")
            .with("salary", 4321.0)
            .with("jobtype", Value::tag("salesman"))
            .with("products", "crm")
            .with("sales-commission", 3);
        let (moved_rid, _) = db.update_txn(&mut txn, "employee", new_rid, moved).unwrap();
        // In-place (same-shape) update of an existing tuple.
        let (rid, t) = db.scan("employee").unwrap().into_iter()
            .find(|(_, t)| t.get_name("empno") != Some(&Value::Int(90_001)))
            .unwrap();
        let mut bumped = t.clone();
        bumped.insert("salary", 9999.0);
        db.update_txn(&mut txn, "employee", rid, bumped).unwrap();
        // Delete the moved tuple.
        db.delete_txn(&mut txn, "employee", moved_rid).unwrap();

        db.rollback(txn).unwrap();
        prop_assert_eq!(db.partitions("employee").unwrap(), parts_before);
        let tuples_after: BTreeSet<Tuple> =
            db.scan("employee").unwrap().into_iter().map(|(_, t)| t).collect();
        prop_assert_eq!(tuples_after, tuples_before);
        prop_assert_eq!(db.indexes("employee").unwrap(), indexes_before);
    }
}

/// The full access-path pipeline on the wide workload: parse → plan →
/// optimize_with_db → stream, with the shape predicate surviving on the
/// lookup node.
#[test]
fn wide_point_lookup_takes_the_index_and_keeps_shape_pruning() {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&wide_relation(8)))
        .unwrap();
    for t in generate_wide(&WideConfig::new(800, 8)) {
        db.insert("wide", t).unwrap();
    }
    let q = parse("SELECT * FROM wide WHERE kind = 'k3'").unwrap();
    let plan = plan_query(&q, &db.catalog()).unwrap();
    let (indexed, notes) = optimize_with_db(plan.clone(), &db);
    assert_eq!(indexed.index_lookup_count(), 1, "{}", indexed);
    assert!(notes.iter().any(|n| n.rule == "access-path"));
    assert!(notes.iter().any(|n| n.rule == "partition-pruning"));
    let LogicalPlan::IndexLookup {
        shapes: Some(sp), ..
    } = &indexed
    else {
        panic!("expected a bare index lookup: {}", indexed);
    };
    assert!(!sp.is_trivial(), "shape predicate survives on the lookup");
    let naive: BTreeSet<Tuple> = execute(&plan, &db).unwrap().into_iter().collect();
    let fast: BTreeSet<Tuple> = execute(&indexed, &db).unwrap().into_iter().collect();
    assert_eq!(naive, fast);
    assert_eq!(fast.len(), 100, "one variant of eight");
}
