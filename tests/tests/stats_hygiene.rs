//! Statistics hygiene: the per-partition histograms and distinct counts
//! behind the cost optimizer are cache-validated by partition version, so
//! every insert, delete, and transaction rollback is visible in the next
//! `table_stats` call — and even *arbitrarily stale* statistics can only
//! mis-cost a plan, never change its results.

use std::collections::BTreeSet;

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attrs;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_storage::{Database, RelationDef, Transaction};
use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

fn employee_db(n: usize) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig::clean(n)) {
        db.insert("employee", t).unwrap();
    }
    db
}

fn secretary(empno: i64) -> Tuple {
    Tuple::new()
        .with("empno", empno)
        .with("name", format!("late{}", empno))
        .with("salary", 12_345.0)
        .with("jobtype", Value::tag("secretary"))
        .with("typing-speed", 240)
        .with("foreign-languages", "french")
}

#[test]
fn stats_track_inserts_deletes_and_rollbacks() {
    const N: usize = 300;
    let db = employee_db(N);

    let before = db.table_stats("employee").unwrap();
    assert_eq!(before.rows(), N as u64);
    assert_eq!(before.distinct("empno"), Some(N as u64));

    // Insert: the affected partition's version bumps, the cache refreshes.
    let rid = db.insert("employee", secretary(10_000)).unwrap();
    let stats = db.table_stats("employee").unwrap();
    assert_eq!(stats.rows(), N as u64 + 1);
    assert_eq!(stats.distinct("empno"), Some(N as u64 + 1));
    // The histogram sees the outlier salary too: nothing sits above it.
    assert_eq!(stats.fraction_le("salary", 12_345.0), Some(1.0));

    // Delete: back to the original counts.
    db.delete("employee", rid).unwrap();
    let stats = db.table_stats("employee").unwrap();
    assert_eq!(stats.rows(), N as u64);
    assert_eq!(stats.distinct("empno"), Some(N as u64));

    // A rolled-back transaction leaves no statistical residue.
    let mut txn = Transaction::begin();
    for i in 0..20 {
        db.insert_txn(&mut txn, "employee", secretary(20_000 + i))
            .unwrap();
    }
    assert_eq!(db.table_stats("employee").unwrap().rows(), N as u64 + 20);
    db.rollback(txn).unwrap();
    let stats = db.table_stats("employee").unwrap();
    assert_eq!(stats.rows(), N as u64);
    assert_eq!(stats.distinct("empno"), Some(N as u64));
}

/// A plan optimized against yesterday's statistics still returns exactly
/// the right rows today: cardinality estimates pick strategies and join
/// orders, never filter results.
#[test]
fn stale_stats_never_change_results() {
    const N: usize = 200;
    let db = employee_db(N);

    // Optimize while the table is small and uniform...
    let naive = LogicalPlan::scan("employee")
        .filter(Predicate::gt("salary", 5000))
        .join(LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]));
    let (optimized, _) = optimize_with_db(naive.clone(), &db);

    // ...then mutate the instance far away from what the optimizer saw:
    // triple the rows with a skewed tail and delete a third of the
    // original ones.
    for i in 0..(2 * N) {
        db.insert("employee", secretary(50_000 + i as i64)).unwrap();
    }
    let victims: Vec<_> = db
        .scan("employee")
        .unwrap()
        .into_iter()
        .filter(|(_, t)| matches!(t.get_name("empno"), Some(Value::Int(e)) if e % 3 == 0 && *e < N as i64))
        .map(|(rid, _)| rid)
        .collect();
    for rid in victims {
        db.delete("employee", rid).unwrap();
    }

    let expect: BTreeSet<Tuple> = execute(&naive, &db).unwrap().into_iter().collect();
    let got: BTreeSet<Tuple> = execute(&optimized, &db).unwrap().into_iter().collect();
    assert_eq!(
        expect, got,
        "a stale-cost plan diverged from the naive plan"
    );

    // Re-optimizing now sees the new reality (fresh row counts), and the
    // fresh plan agrees too.
    assert_eq!(
        db.table_stats("employee").unwrap().rows() as usize,
        3 * N - victims_count(N)
    );
    let (fresh, _) = optimize_with_db(naive.clone(), &db);
    let again: BTreeSet<Tuple> = execute(&fresh, &db).unwrap().into_iter().collect();
    assert_eq!(expect, again);
}

/// How many of the original `n` empnos are divisible by three (the rows
/// `stale_stats_never_change_results` deletes).
fn victims_count(n: usize) -> usize {
    (0..n).filter(|e| e % 3 == 0).count()
}
