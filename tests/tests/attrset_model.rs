//! Model-based property tests for the bitset [`AttrSet`].
//!
//! The model is a plain `BTreeSet<String>` of attribute names — exactly the
//! observable behaviour of the original `BTreeSet<Attr>` representation.  For
//! random pairs of sets drawn from a pool large enough to force the spilled
//! (multi-word) bitset path, every algebraic operation, every predicate and
//! the canonical iteration order must agree with the model.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flexrel_core::attr::{Attr, AttrSet};

/// A deterministic pool of attribute names.  The `wide-*` names push the
/// interned id space well past 64 so that sets drawn from the tail of the
/// pool exercise the spilled representation, while the `p*` names stay in
/// (or near) the inline word.
fn name_pool() -> Vec<String> {
    let mut pool: Vec<String> = (0..40).map(|i| format!("p{:02}", i)).collect();
    pool.extend((0..80).map(|i| format!("wide-{:03}", i)));
    pool
}

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Draws a random sub-multiset of the pool as (bitset, model) twins.
fn draw(seed: &mut u64, pool: &[String], max_len: usize) -> (AttrSet, BTreeSet<String>) {
    let len = (split_mix(seed) as usize) % (max_len + 1);
    let mut set = AttrSet::empty();
    let mut model = BTreeSet::new();
    for _ in 0..len {
        let name = &pool[(split_mix(seed) as usize) % pool.len()];
        // Exercise both insert paths and assert they agree on novelty.
        let fresh_model = model.insert(name.clone());
        let fresh_set = set.insert(Attr::new(name));
        assert_eq!(fresh_set, fresh_model, "insert novelty for {}", name);
    }
    (set, model)
}

fn names_of(set: &AttrSet) -> Vec<String> {
    set.iter().map(|a| a.name().to_string()).collect()
}

fn model_names(model: &BTreeSet<String>) -> Vec<String> {
    model.iter().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union, intersection and difference agree with the set-of-strings
    /// model, element for element and in canonical (lexicographic) order.
    #[test]
    fn algebra_matches_model(seed in 0u64..1_000_000) {
        let pool = name_pool();
        let mut s = seed;
        let (a, ma) = draw(&mut s, &pool, 48);
        let (b, mb) = draw(&mut s, &pool, 48);

        let union: Vec<String> = ma.union(&mb).cloned().collect();
        prop_assert_eq!(names_of(&a.union(&b)), union);

        let inter: Vec<String> = ma.intersection(&mb).cloned().collect();
        prop_assert_eq!(names_of(&a.intersection(&b)), inter);

        let diff: Vec<String> = ma.difference(&mb).cloned().collect();
        prop_assert_eq!(names_of(&a.difference(&b)), diff);

        let rdiff: Vec<String> = mb.difference(&ma).cloned().collect();
        prop_assert_eq!(names_of(&b.difference(&a)), rdiff);

        // extend_with is in-place union.
        let mut extended = a.clone();
        extended.extend_with(&b);
        prop_assert_eq!(&extended, &a.union(&b));

        // The algebra results compare equal regardless of how they were
        // reached (union twice, or rebuilt from names).
        prop_assert_eq!(AttrSet::from_names(union), a.union(&b));
    }

    /// Subset, superset, disjointness, membership and sizes agree with the
    /// model.
    #[test]
    fn predicates_match_model(seed in 0u64..1_000_000) {
        let pool = name_pool();
        let mut s = seed;
        let (a, ma) = draw(&mut s, &pool, 48);
        let (b, mb) = draw(&mut s, &pool, 48);

        prop_assert_eq!(a.len(), ma.len());
        prop_assert_eq!(a.is_empty(), ma.is_empty());
        prop_assert_eq!(a.is_subset(&b), ma.is_subset(&mb));
        prop_assert_eq!(a.is_superset(&b), ma.is_superset(&mb));
        prop_assert_eq!(a.is_disjoint(&b), ma.is_disjoint(&mb));
        prop_assert_eq!(a == b, ma == mb);
        for name in &pool {
            prop_assert_eq!(a.contains_name(name), ma.contains(name));
            prop_assert_eq!(a.contains(&Attr::new(name)), ma.contains(name));
        }
        // A set is always a subset and superset of itself and never
        // disjoint from itself unless empty.
        prop_assert!(a.is_subset(&a));
        prop_assert!(a.is_superset(&a));
        prop_assert_eq!(a.is_disjoint(&a), a.is_empty());
    }

    /// Iteration (`iter`, `to_vec`, `IntoIterator`, `Display`) is in the
    /// model's sorted order, and removal keeps the twins in sync.
    #[test]
    fn iteration_order_and_removal_match_model(seed in 0u64..1_000_000) {
        let pool = name_pool();
        let mut s = seed;
        let (a, ma) = draw(&mut s, &pool, 48);

        prop_assert_eq!(names_of(&a), model_names(&ma));
        let via_to_vec: Vec<String> = a.to_vec().iter().map(|x| x.name().to_string()).collect();
        prop_assert_eq!(via_to_vec, model_names(&ma));
        let via_into: Vec<String> = (&a).into_iter().map(|x| x.name().to_string()).collect();
        prop_assert_eq!(via_into, model_names(&ma));
        let rendered: Vec<String> = model_names(&ma);
        prop_assert_eq!(format!("{}", a), format!("{{{}}}", rendered.join(", ")));

        // Remove a random half of the members from both twins.
        let mut set = a.clone();
        let mut model = ma.clone();
        for name in &rendered {
            if split_mix(&mut s).is_multiple_of(2) {
                prop_assert!(set.remove(&Attr::new(name)));
                prop_assert!(model.remove(name));
                // Double removal reports absence on both sides.
                prop_assert!(!set.remove(&Attr::new(name)));
            }
        }
        prop_assert_eq!(names_of(&set), model_names(&model));
        prop_assert_eq!(set.len(), model.len());
    }
}
