//! Late-materialization differential suite: every query the row pipeline
//! can run must return the identical tuple multiset through the batched
//! SelVec pipeline (`PipelineMode::Late`, the default) — across the
//! experiment-style workloads (partial attributes, negated presence,
//! compound predicates, joins on both access paths, aggregates), under
//! mid-query concurrent writers (snapshot semantics), and after rollback.
//! The aggregation kernels are additionally property-tested against a
//! naive fold over materialized tuples, including wrapping `i64` sums,
//! all-filtered selections, and shapes wide enough to spill the attribute
//! bitset past one word.

use proptest::prelude::*;

use flexrel_bench::experiments::wide_access_path_db;
use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_query::prelude::*;
use flexrel_query::{aggregate_selected, GroupedAggs};
use flexrel_storage::heap::SEGMENT_SIZE;
use flexrel_storage::{ColumnHeap, Database, RelationDef, SelVec, Transaction};
use flexrel_workload::{
    employee_relation, generate_employees, generate_wide, wide_relation, EmployeeConfig, WideConfig,
};

fn employee_db(n: usize, seed: u64) -> Database {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig {
        n,
        violation_rate: 0.0,
        seed,
    }) {
        db.insert("employee", t).unwrap();
    }
    db
}

/// Runs `plan` through the late pipeline and the row oracle (serial and,
/// for the late side, partition-parallel too) and asserts all runs return
/// the same tuple multiset, which is then handed back sorted.
fn assert_pipelines_agree(db: &Database, plan: &LogicalPlan, label: &str) -> Vec<Tuple> {
    let mut row = execute_with(plan, db, &ExecOptions::serial().row_pipeline()).unwrap();
    let mut late = execute_with(plan, db, &ExecOptions::serial()).unwrap();
    let mut late_par = execute_with(plan, db, &ExecOptions::parallel(4)).unwrap();
    row.sort();
    late.sort();
    late_par.sort();
    assert_eq!(late, row, "late vs row pipeline disagree on {label}");
    assert_eq!(late_par, row, "parallel late pipeline disagrees on {label}");
    row
}

/// The FRQL catalogue: everything the row pipeline can run, in both its
/// naive and database-aware optimized plan forms.
fn frql_catalogue() -> Vec<&'static str> {
    vec![
        "SELECT * FROM employee",
        "SELECT * FROM employee WHERE salary > 4000",
        "SELECT * FROM employee WHERE salary > 3000 AND jobtype = 'secretary'",
        "SELECT * FROM employee WHERE typing-speed > 200 OR salary <= 2500",
        "SELECT * FROM employee WHERE NOT PRESENT(typing-speed)",
        "SELECT * FROM employee WHERE NOT (jobtype = 'secretary' AND salary > 3000)",
        "SELECT empno, name FROM employee WHERE salary >= 2000",
        "SELECT empno, typing-speed FROM employee GUARD typing-speed",
        "SELECT * FROM employee WHERE jobtype = 'secretary' GUARD typing-speed",
        "SELECT COUNT(*) FROM employee",
        "SELECT COUNT(typing-speed), SUM(salary), MIN(salary), MAX(salary) FROM employee",
        "SELECT COUNT(*), SUM(salary) FROM employee WHERE salary > 9999999",
        "SELECT jobtype, COUNT(*), SUM(salary), MAX(empno) FROM employee GROUP BY jobtype",
        "SELECT jobtype, salary, COUNT(*) FROM employee \
         WHERE salary > 2000 GROUP BY jobtype, salary",
    ]
}

#[test]
fn late_pipeline_matches_the_row_oracle_on_the_frql_catalogue() {
    let db = employee_db(600, 11);
    for frql in frql_catalogue() {
        let plan = plan_query(&parse(frql).unwrap(), &db.catalog()).unwrap();
        let naive_rows = assert_pipelines_agree(&db, &plan, frql);
        let (optimized, _) = optimize_with_db(plan, &db);
        let optimized_rows = assert_pipelines_agree(&db, &optimized, frql);
        assert_eq!(naive_rows, optimized_rows, "optimizer changed {frql}");
    }
}

/// Joins on every access path the planner can choose: hash joins (against
/// the index-free shadow relation), index-nested-loop joins driven by the
/// small key list, and a three-way join — through both pipelines, from
/// both the catalog-only and the database-aware plans.
#[test]
fn late_pipeline_matches_the_row_oracle_on_joins_and_index_paths() {
    let db = wide_access_path_db(800, 4, 0.5, 16);
    let plans = vec![
        (
            "wide JOIN ids",
            LogicalPlan::scan("wide").join(LogicalPlan::scan("ids")),
        ),
        (
            "ids JOIN wide_nx (hash only)",
            LogicalPlan::scan("ids").join(LogicalPlan::scan("wide_nx")),
        ),
        (
            "wide JOIN wide_nx (full key overlap)",
            LogicalPlan::scan("wide")
                .filter(flexrel_algebra::predicate::Predicate::lt("id", 200i64))
                .join(LogicalPlan::scan("wide_nx")),
        ),
        (
            "ids JOIN wide JOIN wide_nx",
            LogicalPlan::scan("ids")
                .join(LogicalPlan::scan("wide"))
                .join(LogicalPlan::scan("wide_nx")),
        ),
        (
            "indexed point lookup + residual",
            LogicalPlan::scan("wide")
                .filter(flexrel_algebra::predicate::Predicate::eq(
                    "kind",
                    Value::tag("k1"),
                ))
                .filter(flexrel_algebra::predicate::Predicate::ge("id", 100i64)),
        ),
    ];
    for (label, plan) in plans {
        let naive_rows = assert_pipelines_agree(&db, &plan, label);
        let (optimized, _) = optimize_with_db(plan, &db);
        let optimized_rows = assert_pipelines_agree(&db, &optimized, label);
        assert_eq!(naive_rows, optimized_rows, "optimizer changed {label}");
    }
}

/// Snapshot semantics under mid-query writers: streams opened through both
/// pipelines before a burst of concurrent inserts/deletes keep yielding
/// the identical pre-write multiset; fresh executions through both
/// pipelines then agree on the post-write state.
#[test]
fn mid_query_writers_leave_both_pipelines_on_the_same_snapshot() {
    const VARIANTS: usize = 4;
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&wide_relation(VARIANTS)))
        .unwrap();
    for t in generate_wide(&WideConfig::new(1_000, VARIANTS)) {
        db.insert("wide", t).unwrap();
    }
    let plan =
        LogicalPlan::scan("wide").filter(flexrel_algebra::predicate::Predicate::ge("id", 0i64));

    // Both streams capture their snapshots now; pull a prefix from each so
    // the writes land genuinely mid-query.
    let mut late = execute_stream_with(&plan, &db, &ExecOptions::serial()).unwrap();
    let mut row = execute_stream_with(&plan, &db, &ExecOptions::serial().row_pipeline()).unwrap();
    let mut late_rows: Vec<Tuple> = (&mut late).take(37).collect();
    let mut row_rows: Vec<Tuple> = (&mut row).take(37).collect();

    // The concurrent writer: new tuples and a deletion burst.
    for t in generate_wide(&WideConfig::new(200, VARIANTS)) {
        let mut t = t;
        let id = t.get(&Attr::new("id")).cloned().unwrap();
        if let Value::Int(i) = id {
            t.insert("id", i + 1_000_000);
        }
        db.insert("wide", t).unwrap();
    }
    let victims: Vec<_> = db
        .lookup_eq(
            "wide",
            &AttrSet::singleton("kind"),
            &Tuple::new().with("kind", Value::tag("k0")),
        )
        .unwrap();
    for (rid, _) in victims.iter().take(100) {
        db.delete("wide", *rid).unwrap();
    }

    late_rows.extend(late);
    row_rows.extend(row);
    late_rows.sort();
    row_rows.sort();
    assert_eq!(late_rows.len(), 1_000, "the late stream kept its snapshot");
    assert_eq!(late_rows, row_rows, "pipelines disagree on the snapshot");

    // Fresh executions agree on the mutated state too, for scans and for
    // a grouped aggregate over the churned dictionary column.
    assert_pipelines_agree(&db, &plan, "post-write scan");
    let agg = plan_query(
        &parse("SELECT kind, COUNT(*), SUM(id) FROM wide GROUP BY kind").unwrap(),
        &db.catalog(),
    )
    .unwrap();
    assert_pipelines_agree(&db, &agg, "post-write aggregate");
}

/// After a rolled-back transaction both pipelines read back exactly the
/// pre-transaction state — for scans and for the columnar aggregation
/// path over the partitions the aborted batch had touched.
#[test]
fn post_rollback_state_is_identical_through_both_pipelines() {
    let db = employee_db(150, 3);
    let scan = plan_query(
        &parse("SELECT * FROM employee WHERE salary > 3000").unwrap(),
        &db.catalog(),
    )
    .unwrap();
    let agg = plan_query(
        &parse("SELECT jobtype, COUNT(*), SUM(salary) FROM employee GROUP BY jobtype").unwrap(),
        &db.catalog(),
    )
    .unwrap();
    let scan_before = assert_pipelines_agree(&db, &scan, "pre-txn scan");
    let agg_before = assert_pipelines_agree(&db, &agg, "pre-txn aggregate");

    let mut txn = Transaction::begin();
    for (i, mut t) in generate_employees(&EmployeeConfig {
        n: 60,
        violation_rate: 0.0,
        seed: 4,
    })
    .into_iter()
    .enumerate()
    {
        t.insert("empno", 70_000 + i as i64);
        db.insert_txn(&mut txn, "employee", t).unwrap();
    }
    db.rollback(txn).unwrap();

    assert_eq!(
        assert_pipelines_agree(&db, &scan, "post-rollback scan"),
        scan_before,
        "rollback must restore the scanned state"
    );
    assert_eq!(
        assert_pipelines_agree(&db, &agg, "post-rollback aggregate"),
        agg_before,
        "rollback must restore the aggregated state"
    );
}

fn finished_sorted(state: GroupedAggs) -> Vec<Tuple> {
    let mut v = state.finish();
    v.sort();
    v
}

fn standard_aggs() -> Vec<AggExpr> {
    vec![
        AggExpr::new(AggFunc::Count, None),
        AggExpr::new(AggFunc::Count, Some(Attr::new("x"))),
        AggExpr::new(AggFunc::Sum, Some(Attr::new("x"))),
        AggExpr::new(AggFunc::Sum, Some(Attr::new("y"))),
        AggExpr::new(AggFunc::Min, Some(Attr::new("y"))),
        AggExpr::new(AggFunc::Max, Some(Attr::new("x"))),
        AggExpr::new(AggFunc::Min, Some(Attr::new("g"))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The columnar aggregation kernels against the naive fold: random
    /// typed columns (dictionary tags, ints seeded with near-`i64::MAX`
    /// values so sums wrap, floats) under random per-segment selection
    /// masks — including empty masks (all-filtered segments) — grouped
    /// globally and by the dictionary column.  Both sides share the `Acc`
    /// semantics; what this pins down is the bulk kernels (popcount
    /// counts, word-skipping slice sums, dict bucketing) against the
    /// row-at-a-time fold.
    #[test]
    fn aggregation_kernels_match_the_tuple_fold(
        seed in 0u64..5_000,
        n in 0usize..2_400,
        density in 0u64..5,
    ) {
        let mut rng = TestRng::new(seed);
        let mut heap = ColumnHeap::new(AttrSet::from_names(["g", "x", "y"]));
        for _ in 0..n {
            let x = if rng.next_u64().is_multiple_of(16) {
                i64::MAX - (rng.next_u64() % 3) as i64
            } else {
                (rng.next_u64() % 1_000) as i64
            };
            heap.insert(
                Tuple::new()
                    .with("g", Value::tag(format!("g{}", rng.next_u64() % 5)))
                    .with("x", x)
                    .with("y", (rng.next_u64() % 1_000) as f64 / 8.0),
            );
        }
        for group_by in [AttrSet::empty(), AttrSet::singleton("g")] {
            let mut kernel = GroupedAggs::new(group_by.clone(), standard_aggs());
            let mut naive = GroupedAggs::new(group_by, standard_aggs());
            for si in 0..heap.segment_count() {
                let seg = heap.segment(si).unwrap();
                // `density` 0 keeps every mask empty — the all-filtered
                // segment case the kernels must skip without touching
                // accumulators.
                let mut sel = SelVec::none();
                for row in 0..SEGMENT_SIZE {
                    if rng.next_u64() % 5 < density {
                        sel.set(row);
                    }
                }
                sel.and(&seg.live_sel());
                for row in sel.iter() {
                    naive.add_tuple(&heap.materialize(seg, row));
                }
                aggregate_selected(&heap, si, &sel, &mut kernel);
            }
            prop_assert_eq!(finished_sorted(kernel), finished_sorted(naive));
        }
    }
}

/// A shape wide enough that its attribute set spills past one 64-bit
/// word: the kernels must still line the aggregate inputs up with the
/// right columns, and grouping by the trailing attributes must work.
#[test]
fn aggregation_over_a_spilled_wide_shape_matches_the_tuple_fold() {
    const ATTRS: usize = 70;
    let names: Vec<String> = (0..ATTRS).map(|i| format!("a{i:02}")).collect();
    let shape = AttrSet::from_names(names.iter().map(|s| s.as_str()));
    let mut heap = ColumnHeap::new(shape);
    for i in 0..1_500i64 {
        let mut t = Tuple::new();
        for (j, name) in names.iter().enumerate() {
            t.insert(name.as_str(), i.wrapping_mul(71) + j as i64);
        }
        t.insert("a69", i % 7); // a small group domain on the spilled word
        heap.insert(t);
    }
    let aggs = vec![
        AggExpr::new(AggFunc::Count, None),
        AggExpr::new(AggFunc::Sum, Some(Attr::new("a00"))),
        AggExpr::new(AggFunc::Min, Some(Attr::new("a68"))),
        AggExpr::new(AggFunc::Max, Some(Attr::new("a01"))),
    ];
    for group_by in [AttrSet::empty(), AttrSet::singleton("a69")] {
        let mut kernel = GroupedAggs::new(group_by.clone(), aggs.clone());
        let mut naive = GroupedAggs::new(group_by, aggs.clone());
        for si in 0..heap.segment_count() {
            let seg = heap.segment(si).unwrap();
            let sel = seg.live_sel();
            for row in sel.iter() {
                naive.add_tuple(&heap.materialize(seg, row));
            }
            aggregate_selected(&heap, si, &sel, &mut kernel);
        }
        assert_eq!(finished_sorted(kernel), finished_sorted(naive));
    }
}
