//! End-to-end reproduction of the paper's worked examples, spanning all
//! crates of the workspace.

use flexrel_core::attrs;
use flexrel_core::axioms::{implies, AxiomSystem};
use flexrel_core::dep::{example2_jobtype_ead, Ad, Dependency};
use flexrel_core::er::employee_specialization;
use flexrel_core::scheme::example1_scheme;
use flexrel_core::subtype::{RecordType, SubtypeFamily, SupertypeJudgement};
use flexrel_core::value::{Domain, Value};
use flexrel_query::prelude::*;
use flexrel_storage::{Database, RelationDef};
use flexrel_workload::{
    employee_domains, employee_relation, employee_scheme, generate_employees, EmployeeConfig,
};

/// Example 1: the flexible scheme `<4,4,{A,B,<1,1,{C,D}>,<1,3,{E,F,G}>}>`
/// unfolds to exactly the paper's 14 attribute combinations.
#[test]
fn example1_dnf_has_14_combinations() {
    let fs = example1_scheme();
    let dnf = fs.dnf();
    assert_eq!(dnf.len(), 14);
    assert!(dnf.contains(&attrs!["A", "B", "C", "E"]));
    assert!(dnf.contains(&attrs!["A", "B", "D", "E", "F", "G"]));
    assert!(!dnf.contains(&attrs!["A", "B", "C", "D", "E"]));
}

/// Example 2 + §3.1: the jobtype EAD rejects the salesman-with-typing-speed
/// tuple that every purely existential scheme admits — end to end through
/// the storage engine.
#[test]
fn example2_type_checking_through_the_storage_engine() {
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig::clean(500)) {
        db.insert("employee", t).unwrap();
    }
    let bad = flexrel_core::tuple::Tuple::new()
        .with("empno", 99_999)
        .with("name", "intruder")
        .with("salary", 1_000.0)
        .with("jobtype", Value::tag("salesman"))
        .with("typing-speed", 400)
        .with("foreign-languages", "french, russian");
    // The scheme alone admits the attribute combination…
    assert!(employee_scheme().admits(&bad.attrs()));
    // …but the AD-aware engine rejects the tuple.
    let err = db.insert("employee", bad).unwrap_err();
    assert!(err.to_string().contains("attribute dependency"));
    assert_eq!(db.count("employee").unwrap(), 500);
}

/// Example 3: the AD-induced subtype family reproduces the employee types
/// and flags the salary-only supertype as accidental.
#[test]
fn example3_subtype_family_and_accidental_supertype() {
    let family = SubtypeFamily::derive(
        &employee_scheme(),
        &example2_jobtype_ead(),
        &employee_domains(),
        "employee",
    )
    .unwrap();
    assert_eq!(family.subtypes().len(), 3);
    assert!(family.record_rule_holds());
    let salary_only = RecordType::new("salary_only").with_field("salary", Domain::Float);
    assert_eq!(
        family.judge_supertype(&salary_only),
        SupertypeJudgement::AccidentalSupertype
    );
    assert_eq!(
        family.judge_supertype(family.supertype()),
        SupertypeJudgement::SemanticSupertype
    );
}

/// Example 4: the derivation `{jobtype,salary} --attr--> {typing-speed}` is
/// found by the axiom system, the optimizer removes the guard, and the
/// optimized plan returns exactly the same rows.
#[test]
fn example4_guard_elimination_end_to_end() {
    // The implication itself.
    let sigma =
        flexrel_core::dep::DependencySet::from_deps(vec![Dependency::Ead(example2_jobtype_ead())]);
    let target = Dependency::Ad(Ad::new(attrs!["jobtype", "salary"], attrs!["typing-speed"]));
    assert!(implies(&sigma, &target, AxiomSystem::R));

    // Through the query stack.
    let db = Database::new();
    db.create_relation(RelationDef::from_relation(&employee_relation()))
        .unwrap();
    for t in generate_employees(&EmployeeConfig::clean(2_000)) {
        db.insert("employee", t).unwrap();
    }
    let q = parse(
        "SELECT empno, typing-speed FROM employee \
         WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
    )
    .unwrap();
    let naive = plan_query(&q, &db.catalog()).unwrap();
    let (optimized, notes) = optimize(naive.clone(), &db.catalog());
    assert_eq!(naive.guard_count(), 1);
    assert_eq!(optimized.guard_count(), 0);
    assert!(notes.iter().any(|n| n.rule == "guard-elimination"));

    let mut a = execute(&naive, &db).unwrap();
    let mut b = execute(&optimized, &db).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!a.is_empty());
    assert!(a.iter().all(|t| t.has_name("typing-speed")));
}

/// §3.1: the ER specialization of the employee entity maps one-to-one onto
/// the Example 2 EAD.
#[test]
fn er_specialization_matches_example2() {
    let spec = employee_specialization();
    assert_eq!(spec.to_ead().unwrap(), example2_jobtype_ead());
}
