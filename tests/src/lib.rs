//! Cross-crate integration tests for the flexrel workspace live in this
//! package's `tests/` directory; the library target is intentionally empty.
