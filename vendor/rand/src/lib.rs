//! Vendored, dependency-free stand-in for the tiny slice of the `rand`
//! crate this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer/float ranges, and `Rng::gen_bool`.
//!
//! The build environment has no registry access, so the real `rand`
//! cannot be fetched.  This stub keeps the public paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`) source-compatible; the
//! generator itself is SplitMix64, which is plenty for workload
//! generation and property-test inputs (it is *not* cryptographic).
//! Sequences are deterministic per seed, which the test suites rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
