//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_function`/`bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched.  Measurement is intentionally lightweight: each
//! benchmark is warmed up once, then timed over enough iterations to
//! fill a short measurement window, and the per-iteration mean/min are
//! printed.  There is no statistical analysis, HTML report, or baseline
//! comparison — the stub exists so the e1–e9 bench targets compile, run,
//! and emit comparable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Label for one benchmark, optionally parameterised (`name/param`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Opaque value barrier (defeats const-folding of benchmark bodies).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs and times one benchmark body.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    min: Duration,
    window: Duration,
}

impl Bencher {
    fn new(window: Duration) -> Self {
        Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            window,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up iteration (also primes caches/allocations).
        black_box(body());
        let started = Instant::now();
        while started.elapsed() < self.window {
            let t = Instant::now();
            black_box(body());
            let dt = t.elapsed();
            self.total += dt;
            if dt < self.min {
                self.min = dt;
            }
            self.iters_done += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters_done == 0 {
            println!("{label:<48} (no iterations)");
            return;
        }
        let mean = self.total / self.iters_done as u32;
        println!(
            "{label:<48} mean {:>12} min {:>12} ({} iters)",
            fmt_duration(mean),
            fmt_duration(self.min),
            self.iters_done
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_WINDOW_MS trims or extends the per-bench measurement
        // window (smoke tests use a tiny one).
        let ms = std::env::var("CRITERION_WINDOW_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(200u64);
        Criterion {
            window: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.window);
        f(&mut b);
        b.report(&id.id);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall-clock
    /// window, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.window = window;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.window);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.window);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.  Criterion-style
/// CLI arguments from `cargo bench`/`cargo test` are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; measuring in
            // that mode would only slow the suite down, so exit cleanly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
