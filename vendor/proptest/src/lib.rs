//! Vendored, dependency-free stand-in for the slice of `proptest` this
//! workspace uses: the `proptest!` macro over range strategies and
//! `any::<bool>()`, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched.  Behavioural differences from upstream:
//!
//! * no shrinking — a failing case reports its replay seed instead;
//! * inputs are drawn from a deterministic per-test stream, so CI runs
//!   are reproducible by construction;
//! * `PROPTEST_CASES` (env) overrides the configured case count, and
//!   `PROPTEST_SEED` (env) re-bases the input stream;
//! * regression seeds are replayed from `proptest-regressions/<file>.txt`
//!   next to the consuming crate's manifest (lines: `<test_name> <seed>`),
//!   mirroring upstream's persisted-failure convention.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit generator backing every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.  Upstream proptest's `Strategy`
/// is a shrinking value tree; here it is just a sampler.
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Marker returned by [`any`]; sampling is defined per type via
/// [`Arbitrary`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A failed property check (carried by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; `cases` is the number of random inputs per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override, which
    /// lets CI dial coverage up or down without editing code.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a — stable base seed derived from the fully qualified test name,
/// so every test draws an independent but reproducible input stream.
pub fn seed_for_test(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    match std::env::var("PROPTEST_SEED") {
        Ok(v) => {
            let base: u64 = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be an integer, got {v:?}"));
            h ^ base
        }
        Err(_) => h,
    }
}

/// Regression seeds persisted at
/// `<manifest_dir>/proptest-regressions/<file_stem>.txt`, one
/// `<test_name> <seed>` pair per line (`#` starts a comment).  These are
/// replayed before the random cases, mirroring upstream's convention.
pub fn regression_seeds(manifest_dir: &str, source_file: &str, test_name: &str) -> Vec<u64> {
    let stem = std::path::Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    let path = format!("{manifest_dir}/proptest-regressions/{stem}.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() == Some(test_name) {
            if let Some(Ok(seed)) = parts.next().map(str::parse) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)*)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)*), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Expands each `fn name(arg in strategy, ...) { body }` item into a
/// plain `#[test]` that replays any persisted regression seeds and then
/// runs `cases` deterministic random inputs.  A failure panics with the
/// seed to persist.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let test_name = stringify!($name);
                let base = $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
                let regressions =
                    $crate::regression_seeds(env!("CARGO_MANIFEST_DIR"), file!(), test_name);
                let n_regressions = regressions.len();
                let seeds = regressions
                    .into_iter()
                    .chain((0..cases as u64).map(|i| base.wrapping_add(i)));
                for (case, seed) in seeds.enumerate() {
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        let kind = if case < n_regressions { "regression" } else { "random" };
                        panic!(
                            "proptest case {case} ({kind}, seed {seed}) failed: {err}\n\
                             inputs: {inputs}\n\
                             to replay, add `{name} {seed}` to proptest-regressions/<file>.txt",
                            case = case,
                            kind = kind,
                            seed = seed,
                            err = err,
                            inputs = format!(concat!($(stringify!($arg), " = {:?}  ",)+), $($arg),+),
                            name = test_name,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn env_override_parses() {
        // Uses the public API without touching the process environment:
        // absent override leaves the configured count untouched.
        let cfg = ProptestConfig::with_cases(12);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.resolved_cases(), 12);
        }
    }

    #[test]
    fn regression_file_parsing() {
        let dir = std::env::temp_dir().join("flexrel-proptest-regressions-test");
        let reg = dir.join("proptest-regressions");
        std::fs::create_dir_all(&reg).unwrap();
        std::fs::write(
            reg.join("my_suite.txt"),
            "# comment\nalpha 7\nbeta 9\nalpha 11\nalpha not_a_seed\n",
        )
        .unwrap();
        let manifest = dir.to_str().unwrap();
        assert_eq!(
            crate::regression_seeds(manifest, "tests/my_suite.rs", "alpha"),
            vec![7, 11]
        );
        assert_eq!(
            crate::regression_seeds(manifest, "tests/my_suite.rs", "beta"),
            vec![9]
        );
        assert!(crate::regression_seeds(manifest, "tests/my_suite.rs", "gamma").is_empty());
        assert!(crate::regression_seeds(manifest, "tests/other.rs", "alpha").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
        }
    }
}
