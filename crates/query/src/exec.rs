//! A materializing executor for logical plans against a
//! [`flexrel_storage::Database`].

use std::collections::{BTreeSet, HashMap};

use flexrel_core::attr::AttrSet;
use flexrel_core::error::Result;
use flexrel_core::tuple::Tuple;
use flexrel_storage::Database;

use crate::logical::LogicalPlan;

fn attrs_of(rows: &[Tuple]) -> AttrSet {
    rows.iter()
        .fold(AttrSet::empty(), |acc, t| acc.union(&t.attrs()))
}

fn hash_join(left: Vec<Tuple>, right: Vec<Tuple>) -> Vec<Tuple> {
    let common = attrs_of(&left).intersection(&attrs_of(&right));
    let mut hashed: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    let mut scan: Vec<&Tuple> = Vec::new();
    for r in &right {
        if r.defined_on(&common) {
            hashed.entry(r.project(&common)).or_default().push(r);
        } else {
            scan.push(r);
        }
    }
    let mut out = Vec::new();
    for l in &left {
        if l.defined_on(&common) {
            if let Some(partners) = hashed.get(&l.project(&common)) {
                for r in partners {
                    out.push(l.merged_with(r));
                }
            }
            for r in &scan {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        } else {
            for r in &right {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        }
    }
    out
}

/// Executes a logical plan, returning the result tuples.
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Vec<Tuple>> {
    match plan {
        LogicalPlan::Empty => Ok(Vec::new()),
        LogicalPlan::Scan {
            relation,
            qualification,
        } => {
            let mut rows: Vec<Tuple> = db.scan(relation)?.into_iter().map(|(_, t)| t).collect();
            // The qualification is *known* to hold; applying it is a no-op on
            // consistent data but keeps hand-built fragment plans honest when
            // they scan a broader base relation.
            if let Some(q) = qualification {
                rows.retain(|t| q.eval(t));
            }
            Ok(rows)
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute(input, db)?;
            Ok(rows.into_iter().filter(|t| predicate.eval(t)).collect())
        }
        LogicalPlan::Project { input, attrs } => {
            let rows = execute(input, db)?;
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            for t in rows {
                let p = t.project(attrs);
                if seen.insert(p.clone()) {
                    out.push(p);
                }
            }
            Ok(out)
        }
        LogicalPlan::Guard { input, attrs } => {
            let rows = execute(input, db)?;
            Ok(rows.into_iter().filter(|t| t.defined_on(attrs)).collect())
        }
        LogicalPlan::Join { left, right } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            Ok(hash_join(l, r))
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            for i in inputs {
                for t in execute(i, db)? {
                    if seen.insert(t.clone()) {
                        out.push(t);
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::Extend { input, attr, value } => {
            let rows = execute(input, db)?;
            Ok(rows
                .into_iter()
                .map(|mut t| {
                    t.insert(attr.as_str(), value.clone());
                    t
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::parser::parse;
    use crate::planner::plan_query;
    use flexrel_algebra::predicate::Predicate;
    use flexrel_core::attrs;
    use flexrel_core::value::Value;
    use flexrel_storage::RelationDef;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn db(n: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    fn run(db: &Database, frql: &str) -> Vec<Tuple> {
        let q = parse(frql).unwrap();
        let plan = plan_query(&q, db.catalog()).unwrap();
        execute(&plan, db).unwrap()
    }

    #[test]
    fn scan_filter_project_guard() {
        let db = db(200);
        let all = run(&db, "SELECT * FROM employee");
        assert_eq!(all.len(), 200);

        let secretaries = run(&db, "SELECT * FROM employee WHERE jobtype = 'secretary'");
        assert!(!secretaries.is_empty());
        assert!(secretaries
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("secretary"))));

        let projected = run(
            &db,
            "SELECT empno, salary FROM employee WHERE salary > 5000",
        );
        assert!(projected
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary"]));

        let guarded = run(&db, "SELECT * FROM employee GUARD products");
        assert!(guarded.iter().all(|t| t.has_name("products")));
        assert!(guarded.len() < 200);
    }

    #[test]
    fn optimized_and_unoptimized_plans_agree() {
        let db = db(300);
        let queries = [
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
            "SELECT empno FROM employee WHERE jobtype = 'salesman' GUARD sales-commission",
            "SELECT * FROM employee WHERE jobtype = 'secretary' GUARD products",
            "SELECT empno, products FROM employee WHERE jobtype = 'software engineer' AND PRESENT(products)",
            "SELECT * FROM employee WHERE salary > 9999999",
        ];
        for q in queries {
            let parsed = parse(q).unwrap();
            let plan = plan_query(&parsed, db.catalog()).unwrap();
            let naive: std::collections::BTreeSet<Tuple> =
                execute(&plan, &db).unwrap().into_iter().collect();
            let (optimized, _) = optimize(plan, db.catalog());
            let fast: std::collections::BTreeSet<Tuple> =
                execute(&optimized, &db).unwrap().into_iter().collect();
            assert_eq!(
                naive, fast,
                "optimization must not change results for {}",
                q
            );
        }
    }

    #[test]
    fn join_and_union_execution() {
        let db = db(50);
        // Join employee with itself projected on empno/salary: equivalent to
        // the original relation (key join).
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        let joined = execute(&left.join(right), &db).unwrap();
        assert_eq!(joined.len(), 50);
        assert!(joined
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary", "jobtype"]));

        let union = LogicalPlan::UnionAll {
            inputs: vec![
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("secretary"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
            ],
        };
        let rows = execute(&union, &db).unwrap();
        let by_scan = run(
            &db,
            "SELECT * FROM employee WHERE jobtype = 'secretary' OR jobtype = 'salesman'",
        );
        assert_eq!(
            rows.len(),
            by_scan.len(),
            "duplicates across branches are removed"
        );
    }

    #[test]
    fn extend_adds_constant() {
        let db = db(10);
        let plan = LogicalPlan::Extend {
            input: Box::new(LogicalPlan::scan("employee")),
            attr: "source".into(),
            value: Value::tag("hr"),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("source") == Some(&Value::tag("hr"))));
    }

    #[test]
    fn qualified_scan_applies_its_predicate() {
        let db = db(40);
        let plan = LogicalPlan::qualified_scan(
            "employee",
            Predicate::eq("jobtype", Value::tag("salesman")),
        );
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("salesman"))));
    }

    #[test]
    fn empty_plan_returns_nothing() {
        let db = db(5);
        assert!(execute(&LogicalPlan::Empty, &db).unwrap().is_empty());
    }
}
