//! A streaming, optionally partition-parallel executor for logical plans
//! against a [`flexrel_storage::Database`].
//!
//! Plans execute as iterator pipelines ([`execute_stream`]): each operator
//! pulls tuples from its input on demand instead of materializing a
//! `Vec<Tuple>` per operator.  Scans are partition-aware — a
//! [`ShapePredicate`] pushed down by the optimizer is evaluated once per
//! heap partition, so pruned partitions are never touched.  The only
//! blocking points are the ones inherent to the operators: the build side
//! of a hash join and the duplicate-elimination state of projections and
//! unions.
//!
//! # Snapshot discipline
//!
//! Before any tuple flows, the executor captures **one**
//! [`relation_snapshot`](Database::relation_snapshot) per scanned relation:
//! partition catalog and index set, taken atomically.  Every read of the
//! query — the partitions a pruned scan visits, the attribute bounds that
//! size joins ([`plan_attrs`] at execution time), index probes and the
//! index-nested-loop inner side — goes through that capture.  Concurrent
//! writers can therefore neither tear a stream mid-scan nor race a
//! shape-creating insert between the plan's pruning decision and the scan
//! it prunes; a query observes each relation at a single point in time.
//!
//! # Partition-parallel execution
//!
//! With [`ExecOptions::threads`] > 1, scans (and filters fused onto them,
//! including the build side of hash joins, which recurses through the same
//! path) fan the admitted partitions of their snapshot out over a small
//! thread pool; each worker streams its partitions, evaluates the
//! qualification, and sends batches into the merged output iterator.  The
//! partition is the natural unit of parallelism: the paper's DNF disjuncts
//! map one shape per partition, so workers never share mutable state.  The
//! result is the same *multiset* of tuples as serial execution (order may
//! differ).  [`scan_parallelism`] is the gate: tiny or single-partition
//! scans stay serial, and index lookups are always serial (a probe touches
//! a handful of tuples).

use std::collections::{BTreeSet, HashMap};
use std::sync::mpsc;
use std::sync::Arc;

use flexrel_algebra::predicate::{CmpOp, Predicate};
use flexrel_core::attr::AttrSet;
use flexrel_core::error::Result;
use flexrel_core::tuple::{ShapeId, Tuple};
use flexrel_storage::{Database, HashIndex, Partition, PartitionSnapshot, Rid, TableStats};

use crate::agg::GroupedAggs;
use crate::batch;
use crate::colscan;
use crate::logical::{LogicalPlan, ShapePredicate};

/// A stream of result tuples.
pub type TupleStream<'a> = Box<dyn Iterator<Item = Tuple> + 'a>;

/// Which dataflow the executor runs a plan through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// The batched late-materialization pipeline (the default): operators
    /// exchange [`batch::Chunk`]s — per-segment selection vectors over
    /// shared column segments — and owned [`Tuple`]s are only built at the
    /// points that need them (result boundary, join output, dedup).
    Late,
    /// The historical tuple-at-a-time streaming pipeline.  Kept as the
    /// differential oracle for the late pipeline and as the reference
    /// semantics for aggregation.
    Row,
}

/// Execution options: the physical knobs the executor (acting on the
/// optimizer's partition statistics) uses to pick between serial and
/// partition-parallel streams, and between the late-materialized and the
/// row-at-a-time pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Maximum number of worker threads a single scan may fan out to.
    /// `1` (the default) disables parallelism entirely.
    pub threads: usize,
    /// Minimum number of live rows (across the admitted partitions) before
    /// a scan is worth parallelizing; below it, thread spawn and channel
    /// overhead dominate.
    pub min_parallel_rows: usize,
    /// Which pipeline executes the plan; [`PipelineMode::Late`] by default.
    pub pipeline: PipelineMode,
    /// Optional execution deadline.  The late pipeline checks it at every
    /// chunk source (serial and parallel scans, and the result boundary),
    /// so a statement is cancelled within one 1024-slot segment of work.
    /// When it trips, the chunk stream ends early and
    /// [`batch::ExecStats::timed_out`] reports `true` — callers that
    /// surface results (the statement entry point, the network server)
    /// must turn that flag into
    /// [`CoreError::Timeout`](flexrel_core::error::CoreError::Timeout)
    /// instead of returning the truncated rows.  `None` (the default)
    /// never cancels.
    pub deadline: Option<std::time::Instant>,
}

impl ExecOptions {
    /// Serial execution through the late-materialized pipeline — the
    /// default.
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            min_parallel_rows: 4096,
            pipeline: PipelineMode::Late,
            deadline: None,
        }
    }

    /// Partition-parallel execution with up to `threads` workers per scan.
    pub fn parallel(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
            min_parallel_rows: 4096,
            pipeline: PipelineMode::Late,
            deadline: None,
        }
    }

    /// Overrides the row floor below which scans stay serial (builder
    /// style); experiments use this to force the parallel path at small
    /// scales.
    pub fn with_min_parallel_rows(mut self, rows: usize) -> Self {
        self.min_parallel_rows = rows;
        self
    }

    /// Selects the executing pipeline (builder style).  The differential
    /// suite runs every query through both and compares.
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Shorthand for the tuple-at-a-time oracle pipeline.
    pub fn row_pipeline(self) -> Self {
        self.with_pipeline(PipelineMode::Row)
    }

    /// Sets the execution deadline (builder style).  See
    /// [`ExecOptions::deadline`] for the cancellation contract.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::serial()
    }
}

/// The worker count the executor chooses for a scan, from the partition
/// statistics of its snapshot: scans of fewer than two partitions or fewer
/// than [`ExecOptions::min_parallel_rows`] live rows stay serial, larger
/// ones fan out to at most one worker per partition.
pub fn scan_parallelism(partitions: usize, rows: usize, opts: &ExecOptions) -> usize {
    if opts.threads <= 1 || partitions < 2 || rows < opts.min_parallel_rows {
        1
    } else {
        opts.threads.min(partitions)
    }
}

/// One relation's atomically captured read state: partition snapshot plus
/// index snapshots (see [`Database::relation_snapshot`]).
#[derive(Clone)]
pub(crate) struct RelSnap {
    pub(crate) parts: PartitionSnapshot,
    pub(crate) indexes: Vec<Arc<HashIndex>>,
}

impl RelSnap {
    pub(crate) fn index_on(&self, key: &AttrSet) -> Option<&Arc<HashIndex>> {
        self.indexes.iter().find(|idx| idx.key() == key)
    }
}

/// The per-query execution context: one snapshot per scanned relation plus
/// the execution options.  Built once before any tuple flows.  Shared with
/// the late-materialized pipeline ([`crate::batch`]).
pub(crate) struct ExecContext {
    snaps: HashMap<String, RelSnap>,
    /// Returned for relations outside the captured set (unreachable after
    /// a successful `build`, which snapshots every relation the plan
    /// mentions); avoids cloning in the hot `snap` accessor.
    empty: RelSnap,
    /// Per-relation table statistics (histograms, distinct counts), fetched
    /// only for plans whose estimates can use them (joins, aggregates).
    /// Advisory: they steer cost decisions, never correctness.
    stats: HashMap<String, TableStats>,
    pub(crate) opts: ExecOptions,
}

impl ExecContext {
    fn build(plan: &LogicalPlan, db: &Database, opts: ExecOptions) -> Result<ExecContext> {
        let mut relations = BTreeSet::new();
        collect_relations(plan, &mut relations);
        ExecContext::for_relations(
            relations,
            plan_needs_indexes(plan),
            plan_needs_stats(plan),
            db,
            opts,
        )
    }

    /// Captures the given relations.  Index snapshots are only taken when
    /// the plan can probe them (`needs_indexes`): a scan-only query then
    /// holds no `Arc<HashIndex>`, so concurrent index maintenance stays
    /// copy-free (see the index-granularity note on
    /// [`Database::relation_snapshot`]).  Table statistics are likewise
    /// only materialized when the plan's estimates consult them
    /// (`needs_stats`).
    fn for_relations(
        relations: BTreeSet<String>,
        needs_indexes: bool,
        needs_stats: bool,
        db: &Database,
        opts: ExecOptions,
    ) -> Result<ExecContext> {
        let mut snaps = HashMap::new();
        let mut stats = HashMap::new();
        for rel in relations {
            let snap = if needs_indexes {
                let (parts, indexes) = db.relation_snapshot(&rel)?;
                RelSnap { parts, indexes }
            } else {
                RelSnap {
                    parts: db.partition_snapshot(&rel)?,
                    indexes: Vec::new(),
                }
            };
            snaps.insert(rel.clone(), snap);
            if needs_stats {
                if let Ok(ts) = db.table_stats(&rel) {
                    stats.insert(rel, ts);
                }
            }
        }
        Ok(ExecContext {
            snaps,
            empty: RelSnap {
                parts: PartitionSnapshot::default(),
                indexes: Vec::new(),
            },
            stats,
            opts,
        })
    }

    /// The captured statistics of a relation, when the context loaded them.
    pub(crate) fn stats(&self, relation: &str) -> Option<&TableStats> {
        self.stats.get(relation)
    }

    /// Borrows the relation's captured snapshot; the metadata derivations
    /// (`snap_plan_attrs`, `snap_estimate_rows`, the join gates) call this
    /// per plan node, so no clone happens here — only the few ownership
    /// sites (scan and index-nested-loop streams) clone.
    pub(crate) fn snap(&self, relation: &str) -> &RelSnap {
        self.snaps.get(relation).unwrap_or(&self.empty)
    }
}

/// Whether executing `plan` can touch an index: only `IndexLookup` nodes
/// probe directly, and joins may pick the index-nested-loop strategy (or
/// estimate rows through index statistics).
fn plan_needs_indexes(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Empty | LogicalPlan::Scan { .. } => false,
        LogicalPlan::IndexLookup { .. } | LogicalPlan::Join { .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. }
        | LogicalPlan::Aggregate { input, .. } => plan_needs_indexes(input),
        LogicalPlan::UnionAll { inputs } => inputs.iter().any(plan_needs_indexes),
    }
}

/// Whether estimating `plan` can consult table statistics: only join
/// cardinalities and grouped-aggregate bounds use them, so scan-only
/// queries never pay for building (or fetching cached) histograms.
fn plan_needs_stats(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Empty | LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } => false,
        LogicalPlan::Join { .. } | LogicalPlan::Aggregate { .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. } => plan_needs_stats(input),
        LogicalPlan::UnionAll { inputs } => inputs.iter().any(plan_needs_stats),
    }
}

fn collect_relations(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
    match plan {
        LogicalPlan::Empty => {}
        LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexLookup { relation, .. } => {
            out.insert(relation.clone());
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. }
        | LogicalPlan::Aggregate { input, .. } => collect_relations(input, out),
        LogicalPlan::Join { left, right } => {
            collect_relations(left, out);
            collect_relations(right, out);
        }
        LogicalPlan::UnionAll { inputs } => {
            for p in inputs {
                collect_relations(p, out);
            }
        }
    }
}

/// An upper bound on the attribute set of the tuples a plan can produce,
/// derived from partition catalog metadata — for a base scan this is the
/// exact union of the live (admitted) partition shapes; no operator folds
/// over tuples to discover attributes.
///
/// Used by the hash join to compute the common-attribute set of its inputs:
/// any attribute shared by an actual pair of tuples is contained in the
/// intersection of the two bounds, which is what the join hashes on.
///
/// This entry point reads the database's *current* state and serves the
/// optimizer; during execution the same derivation runs against the query's
/// captured snapshots instead, so the bound always matches the partitions
/// the scan actually visits.
pub fn plan_attrs(plan: &LogicalPlan, db: &Database) -> AttrSet {
    match ExecContext::build(plan, db, ExecOptions::serial()) {
        Ok(ctx) => snap_plan_attrs(plan, &ctx),
        Err(_) => AttrSet::empty(),
    }
}

pub(crate) fn snap_plan_attrs(plan: &LogicalPlan, ctx: &ExecContext) -> AttrSet {
    match plan {
        LogicalPlan::Empty => AttrSet::empty(),
        LogicalPlan::Scan {
            relation, shape, ..
        } => ctx
            .snap(relation)
            .parts
            .partitions()
            .filter(|(_, p)| shape.as_ref().map(|s| s.admits(p.shape())).unwrap_or(true))
            .fold(AttrSet::empty(), |acc, (_, p)| acc.union(p.shape())),
        LogicalPlan::IndexLookup {
            relation,
            key,
            shapes,
            ..
        } => ctx
            .snap(relation)
            .parts
            .partitions()
            // An equality probe only reaches tuples defined on the key, so
            // partitions whose shape lacks it cannot contribute.
            .filter(|(_, p)| key.is_subset(p.shape()))
            .filter(|(_, p)| shapes.as_ref().map(|s| s.admits(p.shape())).unwrap_or(true))
            .fold(AttrSet::empty(), |acc, (_, p)| acc.union(p.shape())),
        LogicalPlan::Filter { input, .. } | LogicalPlan::Guard { input, .. } => {
            snap_plan_attrs(input, ctx)
        }
        LogicalPlan::Project { input, attrs } => snap_plan_attrs(input, ctx).intersection(attrs),
        LogicalPlan::Extend { input, attr, .. } => {
            let mut out = snap_plan_attrs(input, ctx);
            out.insert(attr.as_str());
            out
        }
        LogicalPlan::Join { left, right } => {
            snap_plan_attrs(left, ctx).union(&snap_plan_attrs(right, ctx))
        }
        LogicalPlan::UnionAll { inputs } => inputs.iter().fold(AttrSet::empty(), |acc, p| {
            acc.union(&snap_plan_attrs(p, ctx))
        }),
        // The output attributes are the grouping attributes plus the
        // aggregate outputs (an upper bound: an aggregate that saw no input
        // omits its output).
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let mut out = group_by.clone();
            for a in aggs {
                out.insert(a.output.clone());
            }
            out
        }
    }
}

/// The average probe chain length of an index snapshot (mirrors
/// [`flexrel_storage::IndexInfo::avg_matches`]).
fn idx_avg_matches(idx: &HashIndex) -> usize {
    let reachable = idx.len() - idx.partial_tuples().len();
    reachable
        .checked_div(idx.distinct_keys())
        .unwrap_or(1)
        .max(1)
}

/// A cardinality *estimate* for a plan, derived from partition metadata,
/// index statistics and — for joins, filters under them and grouped
/// aggregates — the stored per-partition table statistics (equi-depth
/// histograms and distinct counts, [`flexrel_storage::TableStats`]).
/// `None` when nothing can be derived (a join over relations with no
/// statistics).  For scans this is an exact live count; everything stacked
/// on one scales it by estimated selectivity — under skew an actual run
/// can return more.  The join-strategy gate and the cost-based join
/// ordering use it; do not rely on it as a hard bound.
pub fn estimate_rows(plan: &LogicalPlan, db: &Database) -> Option<usize> {
    let ctx = ExecContext::build(plan, db, ExecOptions::serial()).ok()?;
    snap_estimate_rows(plan, &ctx)
}

/// The stored relation a plan reads through shape-preserving operators,
/// for statistics lookup.
fn stats_leaf_rel(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexLookup { relation, .. } => {
            Some(relation)
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Project { input, .. } => stats_leaf_rel(input),
        _ => None,
    }
}

/// The estimated fraction of rows satisfying a predicate, from the
/// relation's statistics.  Conservative by construction: any atom the
/// statistics cannot judge (missing column, non-numeric comparison,
/// `PRESENT`) contributes selectivity 1, so a context without statistics
/// reproduces the old passthrough estimate exactly.
fn predicate_selectivity(p: &Predicate, stats: Option<&TableStats>) -> f64 {
    let numeric = |v: &flexrel_core::value::Value| match v {
        flexrel_core::value::Value::Int(i) => Some(*i as f64),
        flexrel_core::value::Value::Float(f) => Some(*f),
        _ => None,
    };
    let sel = match p {
        Predicate::True | Predicate::IsPresent(_) => 1.0,
        Predicate::False => 0.0,
        Predicate::Cmp { attr, op, value } => {
            let Some(stats) = stats else { return 1.0 };
            let eq = || stats.fraction_eq(attr.name());
            let le = || numeric(value).and_then(|x| stats.fraction_le(attr.name(), x));
            match op {
                CmpOp::Eq => eq().unwrap_or(1.0),
                CmpOp::Ne => eq().map(|s| 1.0 - s).unwrap_or(1.0),
                CmpOp::Lt | CmpOp::Le => le().unwrap_or(1.0),
                CmpOp::Gt | CmpOp::Ge => le().map(|s| 1.0 - s).unwrap_or(1.0),
            }
        }
        Predicate::And(a, b) => predicate_selectivity(a, stats) * predicate_selectivity(b, stats),
        Predicate::Or(a, b) => {
            let (sa, sb) = (
                predicate_selectivity(a, stats),
                predicate_selectivity(b, stats),
            );
            sa + sb - sa * sb
        }
        Predicate::Not(a) => 1.0 - predicate_selectivity(a, stats),
    };
    sel.clamp(0.0, 1.0)
}

pub(crate) fn snap_estimate_rows(plan: &LogicalPlan, ctx: &ExecContext) -> Option<usize> {
    match plan {
        LogicalPlan::Empty => Some(0),
        LogicalPlan::Scan {
            relation, shape, ..
        } => Some(
            ctx.snap(relation)
                .parts
                .partitions()
                .filter(|(_, p)| shape.as_ref().map(|s| s.admits(p.shape())).unwrap_or(true))
                .map(|(_, p)| p.len())
                .sum(),
        ),
        LogicalPlan::IndexLookup { relation, key, .. } => {
            let snap = ctx.snap(relation);
            match snap.index_on(key) {
                // One probe returns one hash chain: the average chain length
                // is the expected match count.
                Some(idx) => Some(idx_avg_matches(idx)),
                None => Some(snap.parts.len()),
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let base = snap_estimate_rows(input, ctx)?;
            let stats = stats_leaf_rel(input).and_then(|rel| ctx.stats(rel));
            let sel = predicate_selectivity(predicate, stats);
            Some(((base as f64 * sel).ceil() as usize).min(base))
        }
        LogicalPlan::Guard { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Extend { input, .. } => snap_estimate_rows(input, ctx),
        LogicalPlan::UnionAll { inputs } => inputs
            .iter()
            .map(|p| snap_estimate_rows(p, ctx))
            .sum::<Option<usize>>(),
        LogicalPlan::Join { left, right } => {
            let l = snap_estimate_rows(left, ctx)?;
            let r = snap_estimate_rows(right, ctx)?;
            let common = snap_plan_attrs(left, ctx).intersection(&snap_plan_attrs(right, ctx));
            if common.is_empty() {
                // A compatibility merge over disjoint attribute sets is a
                // cross product.
                return Some(l.saturating_mul(r));
            }
            // The equi-join estimate |L|·|R| / max(distinct(a)): for each
            // shared attribute take the larger side's distinct count
            // (containment assumption), then divide by the most selective
            // one.  Without statistics the cardinality is not derivable.
            let mut denom: u64 = 0;
            for a in common.iter() {
                for side in [left.as_ref(), right.as_ref()] {
                    let d = stats_leaf_rel(side)
                        .and_then(|rel| ctx.stats(rel))
                        .and_then(|s| s.distinct(a.name()));
                    if let Some(d) = d {
                        denom = denom.max(d);
                    }
                }
            }
            if denom == 0 {
                return None;
            }
            let est = (l as u128).saturating_mul(r as u128) / denom as u128;
            let est = est.min(usize::MAX as u128) as usize;
            Some(if l == 0 || r == 0 { 0 } else { est.max(1) })
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let base = snap_estimate_rows(input, ctx)?;
            if group_by.is_empty() {
                // A global aggregate emits exactly one row.
                return Some(1);
            }
            // Group count is bounded by the input rows and by the product
            // of the grouping attributes' distinct counts when statistics
            // carry them.
            let stats = stats_leaf_rel(input).and_then(|rel| ctx.stats(rel));
            let mut bound: u128 = 1;
            let mut any = false;
            for g in group_by.iter() {
                if let Some(d) = stats.and_then(|s| s.distinct(g.name())) {
                    any = true;
                    bound = bound.saturating_mul(d as u128);
                }
            }
            if any {
                Some(bound.min(base as u128) as usize)
            } else {
                Some(base)
            }
        }
    }
}

/// The physical strategy the executor picks for a [`LogicalPlan::Join`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Materialize and hash the right input, stream the left input.
    Hash,
    /// Stream the left input, probe the right relation's stored index on
    /// the equi-join attributes per tuple.
    IndexNestedLoopRight,
    /// Stream the right input, probe the left relation's stored index on
    /// the equi-join attributes per tuple.
    IndexNestedLoopLeft,
}

/// A side an index-nested-loop join can probe: a base scan, possibly under
/// residual filters.  The scan's qualification and any filter predicates are
/// folded into one per-tuple qualification that the probe re-applies; the
/// shape predicate is re-applied per rid.
pub(crate) struct InnerSide<'a> {
    pub(crate) relation: &'a str,
    pub(crate) qualification: Option<Predicate>,
    pub(crate) shapes: &'a Option<ShapePredicate>,
}

pub(crate) fn inl_inner_side(plan: &LogicalPlan) -> Option<InnerSide<'_>> {
    match plan {
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => Some(InnerSide {
            relation,
            qualification: qualification.clone(),
            shapes: shape,
        }),
        LogicalPlan::Filter { input, predicate } => {
            let side = inl_inner_side(input)?;
            let qualification = Some(match side.qualification {
                Some(q) => q.and(predicate.clone()),
                None => predicate.clone(),
            });
            Some(InnerSide {
                qualification,
                ..side
            })
        }
        _ => None,
    }
}

/// Whether probing the inner side's index on `common` beats building a
/// hash table over it, as a cost comparison: the index-nested-loop side
/// pays ~`outer_est` probes of ~`1 + avg_matches` work each (the probe
/// plus its expected chain), the hash join pays for materializing the
/// inner *plan*'s rows (its shape-pruned/filtered estimate, not the whole
/// relation) **and** streaming the outer side through the table.  The
/// factor 2 keeps the switch conservative around the break-even point.
/// Returns `false` when no index on exactly `common` exists.
fn inl_gate(
    outer: &LogicalPlan,
    inner: &LogicalPlan,
    inner_relation: &str,
    common: &AttrSet,
    ctx: &ExecContext,
) -> bool {
    let snap = ctx.snap(inner_relation);
    let Some(idx) = snap.index_on(common) else {
        return false;
    };
    let Some(outer_est) = snap_estimate_rows(outer, ctx) else {
        return false;
    };
    let inner_est = snap_estimate_rows(inner, ctx).unwrap_or(idx.len());
    let inl_cost = outer_est
        .saturating_mul(1 + idx_avg_matches(idx))
        .saturating_mul(2);
    let hash_cost = inner_est.saturating_add(outer_est);
    inl_cost <= hash_cost
}

/// The join strategy the executor will pick for `left ⋈ right`:
/// index-nested-loop when one side is a (possibly filtered) base scan with
/// a stored index on exactly the equi-join attributes and the statistics
/// gate passes, otherwise hash join.  Exposed so tests and the experiment
/// harness can show which access path a join takes.
pub fn join_strategy(left: &LogicalPlan, right: &LogicalPlan, db: &Database) -> JoinStrategy {
    let mut relations = BTreeSet::new();
    collect_relations(left, &mut relations);
    collect_relations(right, &mut relations);
    let Ok(ctx) = ExecContext::for_relations(relations, true, true, db, ExecOptions::serial())
    else {
        return JoinStrategy::Hash;
    };
    let common = snap_plan_attrs(left, &ctx).intersection(&snap_plan_attrs(right, &ctx));
    join_strategy_for(left, right, &common, &ctx)
}

/// [`join_strategy`] with the equi-join attribute set already computed —
/// the executor derives `common` once per join and shares it between the
/// strategy choice and the chosen stream.
pub(crate) fn join_strategy_for(
    left: &LogicalPlan,
    right: &LogicalPlan,
    common: &AttrSet,
    ctx: &ExecContext,
) -> JoinStrategy {
    if common.is_empty() {
        return JoinStrategy::Hash;
    }
    if let Some(side) = inl_inner_side(right) {
        if inl_gate(left, right, side.relation, common, ctx) {
            return JoinStrategy::IndexNestedLoopRight;
        }
    }
    if let Some(side) = inl_inner_side(left) {
        if inl_gate(right, left, side.relation, common, ctx) {
            return JoinStrategy::IndexNestedLoopLeft;
        }
    }
    JoinStrategy::Hash
}

/// Memoized shape-predicate verdicts for rid-level checks: one interner
/// resolution (`ShapeId` → `AttrSet`) per partition, not per matched tuple.
/// Shared by the `IndexLookup` executor and the index-nested-loop join.
struct ShapeAdmitMemo {
    shapes: Option<ShapePredicate>,
    verdicts: HashMap<ShapeId, bool>,
}

impl ShapeAdmitMemo {
    fn new(shapes: Option<ShapePredicate>) -> Self {
        ShapeAdmitMemo {
            shapes,
            verdicts: HashMap::new(),
        }
    }

    fn admits(&mut self, rid: Rid) -> bool {
        match &self.shapes {
            None => true,
            Some(s) => *self
                .verdicts
                .entry(rid.shape())
                .or_insert_with(|| s.admits(&rid.shape().attrs())),
        }
    }
}

/// Index-nested-loop join: streams the probe side and, per probe tuple,
/// looks the matching inner tuples up through the inner relation's index
/// snapshot on `common` — the inner side is never materialized as a whole.
/// Index and partitions come from the same atomic capture, so every probed
/// rid resolves consistently.  Inner tuples not defined on the full key
/// (the index's partial list) are checked pairwise, mirroring the hash
/// join's scan side; probe tuples not defined on `common` fall back to a
/// pairwise pass over the admitted inner side, which is materialized once
/// on first need and reused.
pub(crate) fn index_nested_loop_stream<'a>(
    probe: TupleStream<'a>,
    inner: RelSnap,
    inner_qualification: Option<Predicate>,
    inner_shapes: Option<ShapePredicate>,
    common: AttrSet,
) -> TupleStream<'a> {
    let mut shape_memo = ShapeAdmitMemo::new(inner_shapes.clone());
    let qualifies =
        move |q: &Option<Predicate>, t: &Tuple| q.as_ref().map(|q| q.eval(t)).unwrap_or(true);
    // The index snapshot is resolved once for the whole stream; each probe
    // is then one projection and one hash lookup yielding a borrowed rid
    // slice — no per-probe catalog walk or locking.
    let index = inner.index_on(&common).cloned();
    let partials: Vec<Tuple> = index
        .as_ref()
        .map(|idx| {
            idx.partial_tuples()
                .iter()
                .filter(|rid| shape_memo.admits(**rid))
                .filter_map(|rid| inner.parts.get(*rid))
                .filter(|t| qualifies(&inner_qualification, t))
                .collect()
        })
        .unwrap_or_default();
    let mut fallback: Option<Vec<Tuple>> = None;
    Box::new(probe.flat_map(move |l| {
        let mut out = Vec::new();
        let keyed = l.defined_on(&common);
        if keyed {
            if let Some(idx) = &index {
                for rid in idx.lookup(&l.project(&common)) {
                    let Some(r) = inner.parts.get(*rid) else {
                        continue;
                    };
                    if shape_memo.admits(*rid) && qualifies(&inner_qualification, &r) {
                        out.push(l.merged_with(&r));
                    }
                }
                for r in &partials {
                    if l.joinable_with(r) {
                        out.push(l.merged_with(r));
                    }
                }
                return out;
            }
        }
        // Rare paths: the probe tuple lacks part of the key (the index
        // cannot answer), or no index exists on `common` (unreachable when
        // the strategy gate chose this stream); pair against the (pruned,
        // qualified) inner side, materialized once across all such probes.
        let rows = fallback.get_or_insert_with(|| {
            inner
                .parts
                .clone()
                .retain_shapes(|s| inner_shapes.as_ref().map(|p| p.admits(s)).unwrap_or(true))
                .scan()
                .map(|(_, r)| r)
                .filter(|r| qualifies(&inner_qualification, r))
                .collect()
        });
        for r in rows.iter() {
            if l.joinable_with(r) {
                out.push(l.merged_with(r));
            }
        }
        out
    }))
}

/// Streaming hash join: the right input is materialized as the build side,
/// the left input streams through as the probe side.  `common` must be a
/// superset of every attribute an actual left/right tuple pair can share
/// (see [`plan_attrs`]); tuples not defined on all of `common` fall back to
/// pairwise `joinable_with` checks.
fn hash_join_stream<'a>(
    left: TupleStream<'a>,
    right: Vec<Tuple>,
    common: AttrSet,
) -> TupleStream<'a> {
    let mut hashed: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
    let mut scan_side: Vec<Tuple> = Vec::new();
    for r in right {
        if r.defined_on(&common) {
            hashed.entry(r.project(&common)).or_default().push(r);
        } else {
            scan_side.push(r);
        }
    }
    Box::new(left.flat_map(move |l| {
        let mut out = Vec::new();
        if l.defined_on(&common) {
            if let Some(partners) = hashed.get(&l.project(&common)) {
                for r in partners {
                    out.push(l.merged_with(r));
                }
            }
            for r in &scan_side {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        } else {
            for r in hashed.values().flatten().chain(scan_side.iter()) {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        }
        out
    }))
}

/// Fans the partitions of a scan snapshot out over `threads` workers, each
/// compiling the qualification against its partitions' shapes and running
/// the vectorized selection (see [`crate::colscan`]) over their segments,
/// sending batches into the merged stream.  Partitions are assigned
/// greedily, largest first, so the load balances even under shape skew.
/// Workers stop early when the consumer drops the stream (their channel
/// send fails).
fn parallel_scan_stream(
    parts: Vec<(ShapeId, Arc<Partition>)>,
    preds: Vec<Predicate>,
    threads: usize,
) -> TupleStream<'static> {
    let mut buckets: Vec<Vec<(ShapeId, Arc<Partition>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    let mut loads = vec![0usize; threads];
    let mut parts = parts;
    parts.sort_by_key(|(_, p)| std::cmp::Reverse(p.len()));
    for part in parts {
        let i = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        loads[i] += part.1.len();
        buckets[i].push(part);
    }
    let (tx, rx) = mpsc::sync_channel::<Vec<Tuple>>(threads * 2);
    for bucket in buckets.into_iter().filter(|b| !b.is_empty()) {
        let tx = tx.clone();
        let preds = preds.clone();
        std::thread::spawn(move || {
            for (_, part) in bucket {
                let heap = part.columns();
                let compiled = colscan::compile(&preds, heap);
                let mut batch = Vec::new();
                colscan::select_into(heap, &compiled, &mut batch);
                if tx.send(batch).is_err() {
                    return; // consumer dropped the stream
                }
            }
        });
    }
    drop(tx);
    Box::new(rx.into_iter().flatten())
}

/// Builds the (serial or parallel) stream for one base scan from its
/// snapshot: shape pruning per partition, then the qualification (and any
/// filter fused onto the scan) compiled per partition and evaluated
/// vectorized over the column segments (see [`crate::colscan`]).  The
/// qualification is *known* to hold on consistent data; applying it is a
/// no-op there but keeps hand-built fragment plans honest when they scan a
/// broader base relation.
fn scan_stream<'a>(
    snap: RelSnap,
    qualification: &'a Option<Predicate>,
    shape: &'a Option<ShapePredicate>,
    opts: &ExecOptions,
    extra_filter: Option<&'a Predicate>,
) -> TupleStream<'a> {
    let parts = snap
        .parts
        .retain_shapes(|s| shape.as_ref().map(|p| p.admits(s)).unwrap_or(true));
    let preds: Vec<Predicate> = qualification.iter().chain(extra_filter).cloned().collect();
    let workers = scan_parallelism(parts.partition_count(), parts.len(), opts);
    if workers > 1 {
        return parallel_scan_stream(parts.into_parts(), preds, workers);
    }
    let parts = parts.into_parts().into_iter().map(|(_, p)| p).collect();
    Box::new(colscan::VectorScan::new(parts, preds))
}

pub(crate) fn exec_node<'a>(plan: &'a LogicalPlan, ctx: &ExecContext) -> Result<TupleStream<'a>> {
    Ok(match plan {
        LogicalPlan::Empty => Box::new(std::iter::empty()),
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => scan_stream(
            ctx.snap(relation).clone(),
            qualification,
            shape,
            &ctx.opts,
            None,
        ),
        LogicalPlan::IndexLookup {
            relation,
            key,
            key_value,
            shapes,
        } => {
            // The probe resolves rids against the same capture the index
            // came from; the shape predicate is re-applied per rid (its
            // ShapeId names the partition), so shape pruning composes with
            // index access.  The verdict is memoized per ShapeId.
            let snap = ctx.snap(relation);
            let hits: Vec<(Rid, Tuple)> = match snap.index_on(key) {
                Some(idx) => idx
                    .lookup(key_value)
                    .iter()
                    .filter_map(|rid| snap.parts.get(*rid).map(|t| (*rid, t)))
                    .collect(),
                // No index on this key: shape-pruned snapshot scan.
                None => snap
                    .parts
                    .clone()
                    .retain_shapes(|s| key.is_subset(s))
                    .scan()
                    .filter(|(_, t)| t.project(key) == *key_value)
                    .collect(),
            };
            let mut admitted = ShapeAdmitMemo::new(shapes.clone());
            Box::new(
                hits.into_iter()
                    .filter(move |(rid, _)| admitted.admits(*rid))
                    .map(|(_, t)| t),
            )
        }
        LogicalPlan::Filter { input, predicate } => {
            // Fuse the filter onto a base scan so the parallel workers
            // evaluate it partition-locally instead of on the merged
            // stream.
            if let LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            } = &**input
            {
                scan_stream(
                    ctx.snap(relation).clone(),
                    qualification,
                    shape,
                    &ctx.opts,
                    Some(predicate),
                )
            } else {
                let rows = exec_node(input, ctx)?;
                Box::new(rows.filter(move |t| predicate.eval(t)))
            }
        }
        LogicalPlan::Project { input, attrs } => {
            let rows = exec_node(input, ctx)?;
            let mut seen: BTreeSet<Tuple> = BTreeSet::new();
            Box::new(rows.filter_map(move |t| {
                let p = t.project(attrs);
                seen.insert(p.clone()).then_some(p)
            }))
        }
        LogicalPlan::Guard { input, attrs } => {
            let rows = exec_node(input, ctx)?;
            Box::new(rows.filter(move |t| t.defined_on(attrs)))
        }
        LogicalPlan::Join { left, right } => {
            let common = snap_plan_attrs(left, ctx).intersection(&snap_plan_attrs(right, ctx));
            match join_strategy_for(left, right, &common, ctx) {
                JoinStrategy::IndexNestedLoopRight => {
                    let side = inl_inner_side(right).expect("the strategy implies a base scan");
                    let probe = exec_node(left, ctx)?;
                    index_nested_loop_stream(
                        probe,
                        ctx.snap(side.relation).clone(),
                        side.qualification,
                        side.shapes.clone(),
                        common,
                    )
                }
                JoinStrategy::IndexNestedLoopLeft => {
                    let side = inl_inner_side(left).expect("the strategy implies a base scan");
                    let probe = exec_node(right, ctx)?;
                    index_nested_loop_stream(
                        probe,
                        ctx.snap(side.relation).clone(),
                        side.qualification,
                        side.shapes.clone(),
                        common,
                    )
                }
                JoinStrategy::Hash => {
                    let l = exec_node(left, ctx)?;
                    // The build side recurses through the same machinery,
                    // so a large filtered scan parallelizes here as well.
                    let r: Vec<Tuple> = exec_node(right, ctx)?.collect();
                    hash_join_stream(l, r, common)
                }
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let streams: Vec<TupleStream<'a>> = inputs
                .iter()
                .map(|i| exec_node(i, ctx))
                .collect::<Result<_>>()?;
            let mut seen: BTreeSet<Tuple> = BTreeSet::new();
            Box::new(
                streams
                    .into_iter()
                    .flatten()
                    .filter(move |t| seen.insert(t.clone())),
            )
        }
        LogicalPlan::Extend { input, attr, value } => {
            let rows = exec_node(input, ctx)?;
            Box::new(rows.map(move |mut t| {
                t.insert(attr.as_str(), value.clone());
                t
            }))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // The row-wise fold is the reference semantics; the late
            // pipeline's columnar kernels are differentially checked
            // against this path.
            let rows = exec_node(input, ctx)?;
            let mut state = GroupedAggs::new(group_by.clone(), aggs.clone());
            for t in rows {
                state.add_tuple(&t);
            }
            Box::new(state.finish().into_iter())
        }
    })
}

/// Builds the streaming pipeline for a plan under explicit execution
/// options.  Catalog errors (unknown relations) surface here, before any
/// tuple flows; so does the per-relation snapshot capture.
///
/// With [`PipelineMode::Late`] (the default) the plan runs through the
/// batched late-materialization pipeline and this stream is its result
/// boundary — the point where selection vectors finally become owned
/// tuples.  With [`PipelineMode::Row`] it is the historical tuple-at-a-time
/// pipeline.
pub fn execute_stream_with<'a>(
    plan: &'a LogicalPlan,
    db: &'a Database,
    opts: &ExecOptions,
) -> Result<TupleStream<'a>> {
    let ctx = ExecContext::build(plan, db, opts.clone())?;
    match opts.pipeline {
        PipelineMode::Row => exec_node(plan, &ctx),
        PipelineMode::Late => {
            let stats = batch::ExecStats::with_deadline(opts.deadline);
            let chunks = batch::exec_chunks(plan, &ctx, &stats)?;
            Ok(batch::chunks_to_tuples(chunks, stats))
        }
    }
}

/// Executes a plan through the late-materialized pipeline, returning the
/// result tuples together with the pipeline's [`batch::ExecStats`] —
/// notably how many input-side tuples were materialized.  The stats are
/// how tests pin down that late materialization is actually happening
/// (an aggregate query must report **zero** materialized input tuples).
pub fn execute_collect(
    plan: &LogicalPlan,
    db: &Database,
    opts: &ExecOptions,
) -> Result<(Vec<Tuple>, batch::ExecStats)> {
    let ctx = ExecContext::build(plan, db, opts.clone())?;
    let stats = batch::ExecStats::with_deadline(opts.deadline);
    let chunks = batch::exec_chunks(plan, &ctx, &stats)?;
    let rows: Vec<Tuple> = batch::chunks_to_tuples(chunks, stats.clone()).collect();
    Ok((rows, stats))
}

/// Builds the serial streaming pipeline for a plan (the historical
/// behavior; see [`execute_stream_with`] for partition-parallel execution).
pub fn execute_stream<'a>(plan: &'a LogicalPlan, db: &'a Database) -> Result<TupleStream<'a>> {
    execute_stream_with(plan, db, &ExecOptions::serial())
}

/// Executes a logical plan under explicit options, materializing the result
/// tuples.  With `opts.threads > 1` the result is the same multiset as
/// serial execution; the order may differ.
pub fn execute_with(plan: &LogicalPlan, db: &Database, opts: &ExecOptions) -> Result<Vec<Tuple>> {
    Ok(execute_stream_with(plan, db, opts)?.collect())
}

/// Executes a logical plan serially, materializing the result tuples.  A
/// convenience wrapper around [`execute_stream`].
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Vec<Tuple>> {
    Ok(execute_stream(plan, db)?.collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::ShapePredicate;
    use crate::optimizer::optimize;
    use crate::parser::parse;
    use crate::planner::plan_query;
    use flexrel_algebra::predicate::Predicate;
    use flexrel_core::attrs;
    use flexrel_core::value::Value;
    use flexrel_storage::RelationDef;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn db(n: usize) -> Database {
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    fn run(db: &Database, frql: &str) -> Vec<Tuple> {
        let q = parse(frql).unwrap();
        let plan = plan_query(&q, &db.catalog()).unwrap();
        execute(&plan, db).unwrap()
    }

    #[test]
    fn scan_filter_project_guard() {
        let db = db(200);
        let all = run(&db, "SELECT * FROM employee");
        assert_eq!(all.len(), 200);

        let secretaries = run(&db, "SELECT * FROM employee WHERE jobtype = 'secretary'");
        assert!(!secretaries.is_empty());
        assert!(secretaries
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("secretary"))));

        let projected = run(
            &db,
            "SELECT empno, salary FROM employee WHERE salary > 5000",
        );
        assert!(projected
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary"]));

        let guarded = run(&db, "SELECT * FROM employee GUARD products");
        assert!(guarded.iter().all(|t| t.has_name("products")));
        assert!(guarded.len() < 200);
    }

    #[test]
    fn optimized_and_unoptimized_plans_agree() {
        let db = db(300);
        let queries = [
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
            "SELECT empno FROM employee WHERE jobtype = 'salesman' GUARD sales-commission",
            "SELECT * FROM employee WHERE jobtype = 'secretary' GUARD products",
            "SELECT empno, products FROM employee WHERE jobtype = 'software engineer' AND PRESENT(products)",
            "SELECT * FROM employee WHERE salary > 9999999",
        ];
        for q in queries {
            let parsed = parse(q).unwrap();
            let plan = plan_query(&parsed, &db.catalog()).unwrap();
            let naive: std::collections::BTreeSet<Tuple> =
                execute(&plan, &db).unwrap().into_iter().collect();
            let (optimized, _) = optimize(plan, &db.catalog());
            let fast: std::collections::BTreeSet<Tuple> =
                execute(&optimized, &db).unwrap().into_iter().collect();
            assert_eq!(
                naive, fast,
                "optimization must not change results for {}",
                q
            );
        }
    }

    #[test]
    fn shape_predicates_prune_partitions_without_changing_results() {
        let db = db(240);
        let frql = "SELECT * FROM employee WHERE jobtype = 'secretary' AND salary > 3000";
        let parsed = parse(frql).unwrap();
        let plan = plan_query(&parsed, &db.catalog()).unwrap();
        let (optimized, notes) = optimize(plan.clone(), &db.catalog());
        assert_eq!(optimized.pruned_scan_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "partition-pruning"));
        let naive: std::collections::BTreeSet<Tuple> =
            execute(&plan, &db).unwrap().into_iter().collect();
        let pruned: std::collections::BTreeSet<Tuple> =
            execute(&optimized, &db).unwrap().into_iter().collect();
        assert_eq!(naive, pruned);
        // The pruned scan bound covers only the secretary partition.
        let bound = plan_attrs(&optimized, &db);
        assert!(bound.is_superset(&attrs!["typing-speed", "foreign-languages"]));
        assert!(!bound.contains_name("sales-commission"));
    }

    #[test]
    fn execute_stream_is_lazy_per_tuple() {
        let db = db(100);
        let plan = LogicalPlan::scan("employee");
        let mut stream = execute_stream(&plan, &db).unwrap();
        // Pulling a single tuple must not require draining the pipeline.
        assert!(stream.next().is_some());
        drop(stream);
        // take() composes with the stream without materializing the rest.
        let five: Vec<Tuple> = execute_stream(&plan, &db).unwrap().take(5).collect();
        assert_eq!(five.len(), 5);
    }

    #[test]
    fn join_and_union_execution() {
        let db = db(50);
        // Join employee with itself projected on empno/salary: equivalent to
        // the original relation (key join).
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        let joined = execute(&left.join(right), &db).unwrap();
        assert_eq!(joined.len(), 50);
        assert!(joined
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary", "jobtype"]));

        let union = LogicalPlan::UnionAll {
            inputs: vec![
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("secretary"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
            ],
        };
        let rows = execute(&union, &db).unwrap();
        let by_scan = run(
            &db,
            "SELECT * FROM employee WHERE jobtype = 'secretary' OR jobtype = 'salesman'",
        );
        assert_eq!(
            rows.len(),
            by_scan.len(),
            "duplicates across branches are removed"
        );
    }

    #[test]
    fn join_common_attrs_come_from_partition_metadata() {
        let db = db(60);
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        assert_eq!(plan_attrs(&left, &db), attrs!["empno", "salary"]);
        assert_eq!(
            plan_attrs(&left, &db).intersection(&plan_attrs(&right, &db)),
            attrs!["empno"]
        );
        let join = left.join(right);
        assert_eq!(plan_attrs(&join, &db), attrs!["empno", "salary", "jobtype"]);
        assert_eq!(plan_attrs(&LogicalPlan::Empty, &db), AttrSet::empty());
    }

    #[test]
    fn extend_adds_constant() {
        let db = db(10);
        let plan = LogicalPlan::Extend {
            input: Box::new(LogicalPlan::scan("employee")),
            attr: "source".into(),
            value: Value::tag("hr"),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("source") == Some(&Value::tag("hr"))));
        assert!(plan_attrs(&plan, &db).contains_name("source"));
    }

    #[test]
    fn qualified_scan_applies_its_predicate() {
        let db = db(40);
        let plan = LogicalPlan::qualified_scan(
            "employee",
            Predicate::eq("jobtype", Value::tag("salesman")),
        );
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("salesman"))));
    }

    #[test]
    fn hand_built_shape_predicate_restricts_the_scan() {
        let db = db(80);
        let full = execute(&LogicalPlan::scan("employee"), &db).unwrap().len();
        let plan = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() < full);
        assert!(rows.iter().all(|t| t.has_name("typing-speed")));
    }

    #[test]
    fn empty_plan_returns_nothing() {
        let db = db(5);
        assert!(execute(&LogicalPlan::Empty, &db).unwrap().is_empty());
    }

    #[test]
    fn index_lookup_plans_agree_with_scans() {
        use crate::optimizer::optimize_with_db;
        let db = db(250);
        for frql in [
            "SELECT * FROM employee WHERE empno = 17",
            "SELECT * FROM employee WHERE jobtype = 'secretary'",
            "SELECT empno FROM employee WHERE jobtype = 'salesman' AND salary > 4000",
        ] {
            let parsed = parse(frql).unwrap();
            let plan = plan_query(&parsed, &db.catalog()).unwrap();
            let naive: std::collections::BTreeSet<Tuple> =
                execute(&plan, &db).unwrap().into_iter().collect();
            let (indexed, _) = optimize_with_db(plan, &db);
            assert_eq!(indexed.index_lookup_count(), 1, "{}: {}", frql, indexed);
            let fast: std::collections::BTreeSet<Tuple> =
                execute(&indexed, &db).unwrap().into_iter().collect();
            assert_eq!(
                naive, fast,
                "index access must not change results: {}",
                frql
            );
        }
    }

    #[test]
    fn index_lookup_applies_its_shape_predicate_per_rid() {
        let db = db(120);
        // A hand-built lookup on the jobtype index restricted to shapes that
        // carry typing-speed: salesman/engineer partitions are excluded even
        // though the probe key matches no secretaries... probe 'salesman'
        // with a secretary-only shape predicate: nothing may come back.
        let plan = LogicalPlan::IndexLookup {
            relation: "employee".into(),
            key: attrs!["jobtype"],
            key_value: Tuple::new().with("jobtype", Value::tag("salesman")),
            shapes: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        assert!(execute(&plan, &db).unwrap().is_empty());
        // Without the shape restriction the probe returns the salesmen.
        let plan = LogicalPlan::IndexLookup {
            relation: "employee".into(),
            key: attrs!["jobtype"],
            key_value: Tuple::new().with("jobtype", Value::tag("salesman")),
            shapes: None,
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("salesman"))));
    }

    /// A small key-list relation to drive index-nested-loop joins.
    fn with_wanted(db: Database, keys: &[i64]) -> Database {
        use flexrel_core::scheme::FlexScheme;
        db.create_relation(RelationDef::new(
            "wanted",
            FlexScheme::relational(attrs!["empno"]),
        ))
        .unwrap();
        for k in keys {
            db.insert("wanted", Tuple::new().with("empno", *k)).unwrap();
        }
        db
    }

    /// Registers a dependency-free copy of `employee` under `name` with the
    /// same instance.  No dependencies means no indexes, so joins against
    /// it always take the hash path — the baseline INL is checked against.
    fn with_shadow(db: Database, name: &str) -> Database {
        let scheme = db.catalog().get("employee").unwrap().scheme.clone();
        db.create_relation(RelationDef::new(name, scheme)).unwrap();
        let tuples: Vec<Tuple> = db
            .scan("employee")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        for t in tuples {
            db.insert(name, t).unwrap();
        }
        db
    }

    #[test]
    fn small_probe_side_picks_index_nested_loop() {
        let db = with_shadow(with_wanted(db(300), &[3, 7, 11, 200]), "employee_nx");
        let wanted = LogicalPlan::scan("wanted");
        let employee = LogicalPlan::scan("employee");
        // Indexed side right resp. left: both orientations are picked.
        assert_eq!(
            join_strategy(&wanted, &employee, &db),
            JoinStrategy::IndexNestedLoopRight
        );
        assert_eq!(
            join_strategy(&employee, &wanted, &db),
            JoinStrategy::IndexNestedLoopLeft
        );
        // A residual filter over the indexed scan folds into the probe's
        // qualification instead of disqualifying the side.
        let filtered = LogicalPlan::scan("employee").filter(Predicate::gt("salary", 0));
        assert_eq!(
            join_strategy(&wanted, &filtered, &db),
            JoinStrategy::IndexNestedLoopRight
        );

        // All INL shapes agree with the hash join over the index-free
        // shadow copy of the same instance.
        let inl: std::collections::BTreeSet<Tuple> = execute(&wanted.clone().join(employee), &db)
            .unwrap()
            .into_iter()
            .collect();
        let inl_filtered: std::collections::BTreeSet<Tuple> =
            execute(&wanted.clone().join(filtered), &db)
                .unwrap()
                .into_iter()
                .collect();
        let shadow = LogicalPlan::scan("employee_nx");
        assert_eq!(
            join_strategy(&wanted, &shadow, &db),
            JoinStrategy::Hash,
            "no index exists on the shadow relation"
        );
        let hash: std::collections::BTreeSet<Tuple> = execute(&wanted.join(shadow), &db)
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(inl, hash);
        assert_eq!(inl_filtered, hash, "salary > 0 holds for every employee");
        assert_eq!(hash.len(), 4, "empnos 3, 7, 11 and 200 exist among 300");
    }

    #[test]
    fn large_probe_side_stays_with_hash_join() {
        // Equal-size self join on the indexed key: probing 300 times with
        // ~1 match each is not cheaper than one 300-tuple build side, so
        // the statistics gate keeps the hash join.
        let db = db(300);
        let l = LogicalPlan::scan("employee").project(attrs!["empno"]);
        let r = LogicalPlan::scan("employee");
        assert!(db.has_index("employee", &attrs!["empno"]));
        assert_eq!(join_strategy(&l, &r, &db), JoinStrategy::Hash);
    }

    #[test]
    fn estimate_rows_uses_partition_and_index_statistics() {
        let db = with_wanted(db(240), &[1, 2]);
        assert_eq!(estimate_rows(&LogicalPlan::Empty, &db), Some(0));
        assert_eq!(
            estimate_rows(&LogicalPlan::scan("employee"), &db),
            Some(240)
        );
        assert_eq!(estimate_rows(&LogicalPlan::scan("wanted"), &db), Some(2));
        // A pruned scan counts only admitted partitions.
        let pruned = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        let est = estimate_rows(&pruned, &db).unwrap();
        assert!(est > 0 && est < 240, "est = {}", est);
        // An index lookup estimates one hash chain.
        let lookup = LogicalPlan::IndexLookup {
            relation: "employee".into(),
            key: attrs!["empno"],
            key_value: Tuple::new().with("empno", 5),
            shapes: None,
        };
        assert_eq!(estimate_rows(&lookup, &db), Some(1));
        // A join on a shared key estimates |L|·|R| / distinct(key): each
        // of the 2 wanted rows expects one employee partner.
        assert_eq!(
            estimate_rows(
                &LogicalPlan::scan("wanted").join(LogicalPlan::scan("employee")),
                &db
            ),
            Some(2)
        );
        // A grouped aggregate is bounded by the group key's distinct count.
        let grouped = LogicalPlan::scan("employee").aggregate(
            attrs!["jobtype"],
            vec![crate::logical::AggExpr::new(
                crate::logical::AggFunc::Count,
                None,
            )],
        );
        let est = estimate_rows(&grouped, &db).unwrap();
        assert!(est <= 3, "three job types, est = {}", est);
        // A global aggregate emits exactly one row.
        let global = LogicalPlan::scan("employee").aggregate(
            AttrSet::empty(),
            vec![crate::logical::AggExpr::new(
                crate::logical::AggFunc::Count,
                None,
            )],
        );
        assert_eq!(estimate_rows(&global, &db), Some(1));
    }

    /// The parallel gate: serial for single partitions, tiny scans, or
    /// `threads == 1`; otherwise capped by both knobs.
    #[test]
    fn scan_parallelism_gate() {
        let serial = ExecOptions::serial();
        let four = ExecOptions::parallel(4).with_min_parallel_rows(100);
        assert_eq!(scan_parallelism(8, 1_000_000, &serial), 1);
        assert_eq!(scan_parallelism(1, 1_000_000, &four), 1);
        assert_eq!(scan_parallelism(8, 50, &four), 1);
        assert_eq!(scan_parallelism(8, 1_000, &four), 4);
        assert_eq!(scan_parallelism(3, 1_000, &four), 3, "capped by partitions");
        assert_eq!(ExecOptions::default(), ExecOptions::serial());
    }

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort();
        v
    }

    #[test]
    fn parallel_execution_returns_the_serial_multiset() {
        let db = db(400);
        let opts = ExecOptions::parallel(4).with_min_parallel_rows(1);
        let plans = [
            LogicalPlan::scan("employee"),
            LogicalPlan::scan("employee").filter(Predicate::gt("salary", 4000)),
            LogicalPlan::scan("employee")
                .filter(Predicate::eq("jobtype", Value::tag("secretary")))
                .project(attrs!["empno", "typing-speed"]),
            LogicalPlan::scan("employee")
                .project(attrs!["empno", "salary"])
                .join(LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"])),
            LogicalPlan::scan("employee").guard(attrs!["products"]),
        ];
        for plan in &plans {
            let serial = sorted(execute(plan, &db).unwrap());
            let parallel = sorted(execute_with(plan, &db, &opts).unwrap());
            assert_eq!(serial, parallel, "parallel multiset differs: {}", plan);
        }
    }

    #[test]
    fn parallel_stream_stops_cleanly_when_dropped_early() {
        let db = db(300);
        let opts = ExecOptions::parallel(4).with_min_parallel_rows(1);
        let plan = LogicalPlan::scan("employee");
        let mut stream = execute_stream_with(&plan, &db, &opts).unwrap();
        assert!(stream.next().is_some());
        drop(stream); // workers must unblock and exit via the closed channel
        let all: Vec<Tuple> = execute_with(&plan, &db, &opts).unwrap();
        assert_eq!(all.len(), 300);
    }

    #[test]
    fn executor_snapshots_shield_a_query_from_concurrent_writes() {
        let db = db(120);
        let plan = LogicalPlan::scan("employee").filter(Predicate::gt("salary", 0));
        // Build the stream (captures the snapshot), then mutate the
        // relation heavily before draining it.
        let stream = execute_stream(&plan, &db).unwrap();
        let rids: Vec<Rid> = db
            .scan("employee")
            .unwrap()
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        for rid in rids {
            db.delete("employee", rid).unwrap();
        }
        assert_eq!(db.count("employee").unwrap(), 0);
        assert_eq!(stream.count(), 120, "the stream sees its snapshot");
        // A fresh stream sees the new state.
        assert_eq!(execute(&plan, &db).unwrap().len(), 0);
    }
}
