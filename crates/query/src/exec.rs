//! A streaming executor for logical plans against a
//! [`flexrel_storage::Database`].
//!
//! Plans execute as iterator pipelines ([`execute_stream`]): each operator
//! pulls tuples from its input on demand instead of materializing a
//! `Vec<Tuple>` per operator.  Scans are partition-aware — a
//! [`ShapePredicate`](crate::logical::ShapePredicate) pushed down by the
//! optimizer is evaluated once per heap partition, so pruned partitions are
//! never touched.  The only blocking points are the ones inherent to the
//! operators: the build side of a hash join and the duplicate-elimination
//! state of projections and unions.
//!
//! Join and projection attribute sets are derived from partition catalog
//! metadata ([`Database::relation_attrs`]) rather than by folding over
//! input tuples; see [`plan_attrs`].

use std::collections::{BTreeSet, HashMap};

use flexrel_core::attr::AttrSet;
use flexrel_core::error::Result;
use flexrel_core::tuple::Tuple;
use flexrel_storage::Database;

use crate::logical::LogicalPlan;

/// A stream of result tuples borrowed from the database.
pub type TupleStream<'a> = Box<dyn Iterator<Item = Tuple> + 'a>;

/// An upper bound on the attribute set of the tuples a plan can produce,
/// derived from partition catalog metadata — for a base scan this is the
/// exact union of the live (admitted) partition shapes; no operator folds
/// over tuples to discover attributes.
///
/// Used by the hash join to compute the common-attribute set of its inputs:
/// any attribute shared by an actual pair of tuples is contained in the
/// intersection of the two bounds, which is what the join hashes on.
pub fn plan_attrs(plan: &LogicalPlan, db: &Database) -> AttrSet {
    match plan {
        LogicalPlan::Empty => AttrSet::empty(),
        LogicalPlan::Scan {
            relation, shape, ..
        } => match db.partitions(relation) {
            Ok(parts) => parts
                .iter()
                .filter(|p| shape.as_ref().map(|s| s.admits(&p.shape)).unwrap_or(true))
                .fold(AttrSet::empty(), |acc, p| acc.union(&p.shape)),
            Err(_) => AttrSet::empty(),
        },
        LogicalPlan::Filter { input, .. } | LogicalPlan::Guard { input, .. } => {
            plan_attrs(input, db)
        }
        LogicalPlan::Project { input, attrs } => plan_attrs(input, db).intersection(attrs),
        LogicalPlan::Extend { input, attr, .. } => {
            let mut out = plan_attrs(input, db);
            out.insert(attr.as_str());
            out
        }
        LogicalPlan::Join { left, right } => plan_attrs(left, db).union(&plan_attrs(right, db)),
        LogicalPlan::UnionAll { inputs } => inputs
            .iter()
            .fold(AttrSet::empty(), |acc, p| acc.union(&plan_attrs(p, db))),
    }
}

/// Streaming hash join: the right input is materialized as the build side,
/// the left input streams through as the probe side.  `common` must be a
/// superset of every attribute an actual left/right tuple pair can share
/// (see [`plan_attrs`]); tuples not defined on all of `common` fall back to
/// pairwise `joinable_with` checks.
fn hash_join_stream<'a>(
    left: TupleStream<'a>,
    right: Vec<Tuple>,
    common: AttrSet,
) -> TupleStream<'a> {
    let mut hashed: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
    let mut scan_side: Vec<Tuple> = Vec::new();
    for r in right {
        if r.defined_on(&common) {
            hashed.entry(r.project(&common)).or_default().push(r);
        } else {
            scan_side.push(r);
        }
    }
    Box::new(left.flat_map(move |l| {
        let mut out = Vec::new();
        if l.defined_on(&common) {
            if let Some(partners) = hashed.get(&l.project(&common)) {
                for r in partners {
                    out.push(l.merged_with(r));
                }
            }
            for r in &scan_side {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        } else {
            for r in hashed.values().flatten().chain(scan_side.iter()) {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        }
        out
    }))
}

/// Builds the streaming pipeline for a plan.  Catalog errors (unknown
/// relations) surface here, before any tuple flows.
pub fn execute_stream<'a>(plan: &'a LogicalPlan, db: &'a Database) -> Result<TupleStream<'a>> {
    Ok(match plan {
        LogicalPlan::Empty => Box::new(std::iter::empty()),
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => {
            let rows = db
                .scan_where(relation, move |s| {
                    shape.as_ref().map(|p| p.admits(s)).unwrap_or(true)
                })?
                .map(|(_, t)| t.clone());
            // The qualification is *known* to hold; applying it is a no-op
            // on consistent data but keeps hand-built fragment plans honest
            // when they scan a broader base relation.
            match qualification {
                Some(q) => Box::new(rows.filter(move |t| q.eval(t))),
                None => Box::new(rows),
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute_stream(input, db)?;
            Box::new(rows.filter(move |t| predicate.eval(t)))
        }
        LogicalPlan::Project { input, attrs } => {
            let rows = execute_stream(input, db)?;
            let mut seen: BTreeSet<Tuple> = BTreeSet::new();
            Box::new(rows.filter_map(move |t| {
                let p = t.project(attrs);
                seen.insert(p.clone()).then_some(p)
            }))
        }
        LogicalPlan::Guard { input, attrs } => {
            let rows = execute_stream(input, db)?;
            Box::new(rows.filter(move |t| t.defined_on(attrs)))
        }
        LogicalPlan::Join { left, right } => {
            let common = plan_attrs(left, db).intersection(&plan_attrs(right, db));
            let l = execute_stream(left, db)?;
            let r: Vec<Tuple> = execute_stream(right, db)?.collect();
            hash_join_stream(l, r, common)
        }
        LogicalPlan::UnionAll { inputs } => {
            let streams: Vec<TupleStream<'a>> = inputs
                .iter()
                .map(|i| execute_stream(i, db))
                .collect::<Result<_>>()?;
            let mut seen: BTreeSet<Tuple> = BTreeSet::new();
            Box::new(
                streams
                    .into_iter()
                    .flatten()
                    .filter(move |t| seen.insert(t.clone())),
            )
        }
        LogicalPlan::Extend { input, attr, value } => {
            let rows = execute_stream(input, db)?;
            Box::new(rows.map(move |mut t| {
                t.insert(attr.as_str(), value.clone());
                t
            }))
        }
    })
}

/// Executes a logical plan, materializing the result tuples.  A convenience
/// wrapper around [`execute_stream`].
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Vec<Tuple>> {
    Ok(execute_stream(plan, db)?.collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::ShapePredicate;
    use crate::optimizer::optimize;
    use crate::parser::parse;
    use crate::planner::plan_query;
    use flexrel_algebra::predicate::Predicate;
    use flexrel_core::attrs;
    use flexrel_core::value::Value;
    use flexrel_storage::RelationDef;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn db(n: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    fn run(db: &Database, frql: &str) -> Vec<Tuple> {
        let q = parse(frql).unwrap();
        let plan = plan_query(&q, db.catalog()).unwrap();
        execute(&plan, db).unwrap()
    }

    #[test]
    fn scan_filter_project_guard() {
        let db = db(200);
        let all = run(&db, "SELECT * FROM employee");
        assert_eq!(all.len(), 200);

        let secretaries = run(&db, "SELECT * FROM employee WHERE jobtype = 'secretary'");
        assert!(!secretaries.is_empty());
        assert!(secretaries
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("secretary"))));

        let projected = run(
            &db,
            "SELECT empno, salary FROM employee WHERE salary > 5000",
        );
        assert!(projected
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary"]));

        let guarded = run(&db, "SELECT * FROM employee GUARD products");
        assert!(guarded.iter().all(|t| t.has_name("products")));
        assert!(guarded.len() < 200);
    }

    #[test]
    fn optimized_and_unoptimized_plans_agree() {
        let db = db(300);
        let queries = [
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
            "SELECT empno FROM employee WHERE jobtype = 'salesman' GUARD sales-commission",
            "SELECT * FROM employee WHERE jobtype = 'secretary' GUARD products",
            "SELECT empno, products FROM employee WHERE jobtype = 'software engineer' AND PRESENT(products)",
            "SELECT * FROM employee WHERE salary > 9999999",
        ];
        for q in queries {
            let parsed = parse(q).unwrap();
            let plan = plan_query(&parsed, db.catalog()).unwrap();
            let naive: std::collections::BTreeSet<Tuple> =
                execute(&plan, &db).unwrap().into_iter().collect();
            let (optimized, _) = optimize(plan, db.catalog());
            let fast: std::collections::BTreeSet<Tuple> =
                execute(&optimized, &db).unwrap().into_iter().collect();
            assert_eq!(
                naive, fast,
                "optimization must not change results for {}",
                q
            );
        }
    }

    #[test]
    fn shape_predicates_prune_partitions_without_changing_results() {
        let db = db(240);
        let frql = "SELECT * FROM employee WHERE jobtype = 'secretary' AND salary > 3000";
        let parsed = parse(frql).unwrap();
        let plan = plan_query(&parsed, db.catalog()).unwrap();
        let (optimized, notes) = optimize(plan.clone(), db.catalog());
        assert_eq!(optimized.pruned_scan_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "partition-pruning"));
        let naive: std::collections::BTreeSet<Tuple> =
            execute(&plan, &db).unwrap().into_iter().collect();
        let pruned: std::collections::BTreeSet<Tuple> =
            execute(&optimized, &db).unwrap().into_iter().collect();
        assert_eq!(naive, pruned);
        // The pruned scan bound covers only the secretary partition.
        let bound = plan_attrs(&optimized, &db);
        assert!(bound.is_superset(&attrs!["typing-speed", "foreign-languages"]));
        assert!(!bound.contains_name("sales-commission"));
    }

    #[test]
    fn execute_stream_is_lazy_per_tuple() {
        let db = db(100);
        let plan = LogicalPlan::scan("employee");
        let mut stream = execute_stream(&plan, &db).unwrap();
        // Pulling a single tuple must not require draining the pipeline.
        assert!(stream.next().is_some());
        drop(stream);
        // take() composes with the stream without materializing the rest.
        let five: Vec<Tuple> = execute_stream(&plan, &db).unwrap().take(5).collect();
        assert_eq!(five.len(), 5);
    }

    #[test]
    fn join_and_union_execution() {
        let db = db(50);
        // Join employee with itself projected on empno/salary: equivalent to
        // the original relation (key join).
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        let joined = execute(&left.join(right), &db).unwrap();
        assert_eq!(joined.len(), 50);
        assert!(joined
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary", "jobtype"]));

        let union = LogicalPlan::UnionAll {
            inputs: vec![
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("secretary"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
            ],
        };
        let rows = execute(&union, &db).unwrap();
        let by_scan = run(
            &db,
            "SELECT * FROM employee WHERE jobtype = 'secretary' OR jobtype = 'salesman'",
        );
        assert_eq!(
            rows.len(),
            by_scan.len(),
            "duplicates across branches are removed"
        );
    }

    #[test]
    fn join_common_attrs_come_from_partition_metadata() {
        let db = db(60);
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        assert_eq!(plan_attrs(&left, &db), attrs!["empno", "salary"]);
        assert_eq!(
            plan_attrs(&left, &db).intersection(&plan_attrs(&right, &db)),
            attrs!["empno"]
        );
        let join = left.join(right);
        assert_eq!(plan_attrs(&join, &db), attrs!["empno", "salary", "jobtype"]);
        assert_eq!(plan_attrs(&LogicalPlan::Empty, &db), AttrSet::empty());
    }

    #[test]
    fn extend_adds_constant() {
        let db = db(10);
        let plan = LogicalPlan::Extend {
            input: Box::new(LogicalPlan::scan("employee")),
            attr: "source".into(),
            value: Value::tag("hr"),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("source") == Some(&Value::tag("hr"))));
        assert!(plan_attrs(&plan, &db).contains_name("source"));
    }

    #[test]
    fn qualified_scan_applies_its_predicate() {
        let db = db(40);
        let plan = LogicalPlan::qualified_scan(
            "employee",
            Predicate::eq("jobtype", Value::tag("salesman")),
        );
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("salesman"))));
    }

    #[test]
    fn hand_built_shape_predicate_restricts_the_scan() {
        let db = db(80);
        let full = execute(&LogicalPlan::scan("employee"), &db).unwrap().len();
        let plan = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() < full);
        assert!(rows.iter().all(|t| t.has_name("typing-speed")));
    }

    #[test]
    fn empty_plan_returns_nothing() {
        let db = db(5);
        assert!(execute(&LogicalPlan::Empty, &db).unwrap().is_empty());
    }
}
