//! A streaming executor for logical plans against a
//! [`flexrel_storage::Database`].
//!
//! Plans execute as iterator pipelines ([`execute_stream`]): each operator
//! pulls tuples from its input on demand instead of materializing a
//! `Vec<Tuple>` per operator.  Scans are partition-aware — a
//! [`ShapePredicate`] pushed down by the
//! optimizer is evaluated once per heap partition, so pruned partitions are
//! never touched.  The only blocking points are the ones inherent to the
//! operators: the build side of a hash join and the duplicate-elimination
//! state of projections and unions.
//!
//! Join and projection attribute sets are derived from partition catalog
//! metadata ([`Database::relation_attrs`]) rather than by folding over
//! input tuples; see [`plan_attrs`].

use std::collections::{BTreeSet, HashMap};

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::AttrSet;
use flexrel_core::error::Result;
use flexrel_core::tuple::{ShapeId, Tuple};
use flexrel_storage::{Database, Rid};

use crate::logical::{LogicalPlan, ShapePredicate};

/// A stream of result tuples borrowed from the database.
pub type TupleStream<'a> = Box<dyn Iterator<Item = Tuple> + 'a>;

/// An upper bound on the attribute set of the tuples a plan can produce,
/// derived from partition catalog metadata — for a base scan this is the
/// exact union of the live (admitted) partition shapes; no operator folds
/// over tuples to discover attributes.
///
/// Used by the hash join to compute the common-attribute set of its inputs:
/// any attribute shared by an actual pair of tuples is contained in the
/// intersection of the two bounds, which is what the join hashes on.
pub fn plan_attrs(plan: &LogicalPlan, db: &Database) -> AttrSet {
    match plan {
        LogicalPlan::Empty => AttrSet::empty(),
        LogicalPlan::Scan {
            relation, shape, ..
        } => match db.partitions(relation) {
            Ok(parts) => parts
                .iter()
                .filter(|p| shape.as_ref().map(|s| s.admits(&p.shape)).unwrap_or(true))
                .fold(AttrSet::empty(), |acc, p| acc.union(&p.shape)),
            Err(_) => AttrSet::empty(),
        },
        LogicalPlan::IndexLookup {
            relation,
            key,
            shapes,
            ..
        } => match db.partitions(relation) {
            // An equality probe only reaches tuples defined on the key, so
            // partitions whose shape lacks it cannot contribute.
            Ok(parts) => parts
                .iter()
                .filter(|p| key.is_subset(&p.shape))
                .filter(|p| shapes.as_ref().map(|s| s.admits(&p.shape)).unwrap_or(true))
                .fold(AttrSet::empty(), |acc, p| acc.union(&p.shape)),
            Err(_) => AttrSet::empty(),
        },
        LogicalPlan::Filter { input, .. } | LogicalPlan::Guard { input, .. } => {
            plan_attrs(input, db)
        }
        LogicalPlan::Project { input, attrs } => plan_attrs(input, db).intersection(attrs),
        LogicalPlan::Extend { input, attr, .. } => {
            let mut out = plan_attrs(input, db);
            out.insert(attr.as_str());
            out
        }
        LogicalPlan::Join { left, right } => plan_attrs(left, db).union(&plan_attrs(right, db)),
        LogicalPlan::UnionAll { inputs } => inputs
            .iter()
            .fold(AttrSet::empty(), |acc, p| acc.union(&plan_attrs(p, db))),
    }
}

/// A cardinality *estimate* for a plan, derived from partition metadata and
/// index statistics; `None` when nothing can be derived (joins and anything
/// above them).  For scans this is an exact live count (an upper bound for
/// everything stacked on one); for index lookups it is the *expected* chain
/// length — under key skew an actual probe can return more.  The
/// join-strategy gate uses it to size the probe side of an
/// index-nested-loop join; do not rely on it as a hard bound.
pub fn estimate_rows(plan: &LogicalPlan, db: &Database) -> Option<usize> {
    match plan {
        LogicalPlan::Empty => Some(0),
        LogicalPlan::Scan {
            relation, shape, ..
        } => db.partitions(relation).ok().map(|parts| {
            parts
                .iter()
                .filter(|p| shape.as_ref().map(|s| s.admits(&p.shape)).unwrap_or(true))
                .map(|p| p.tuples)
                .sum()
        }),
        LogicalPlan::IndexLookup { relation, key, .. } => {
            match db.index_info(relation, key).ok().flatten() {
                // One probe returns one hash chain: the average chain length
                // is the expected match count.
                Some(info) => Some(info.avg_matches()),
                None => db.count(relation).ok(),
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Extend { input, .. } => estimate_rows(input, db),
        LogicalPlan::UnionAll { inputs } => inputs
            .iter()
            .map(|p| estimate_rows(p, db))
            .sum::<Option<usize>>(),
        LogicalPlan::Join { .. } => None,
    }
}

/// The physical strategy the executor picks for a [`LogicalPlan::Join`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Materialize and hash the right input, stream the left input.
    Hash,
    /// Stream the left input, probe the right relation's stored index on
    /// the equi-join attributes per tuple.
    IndexNestedLoopRight,
    /// Stream the right input, probe the left relation's stored index on
    /// the equi-join attributes per tuple.
    IndexNestedLoopLeft,
}

/// A side an index-nested-loop join can probe: a base scan, possibly under
/// residual filters.  The scan's qualification and any filter predicates are
/// folded into one per-tuple qualification that the probe re-applies; the
/// shape predicate is re-applied per rid.
struct InnerSide<'a> {
    relation: &'a str,
    qualification: Option<Predicate>,
    shapes: &'a Option<ShapePredicate>,
}

fn inl_inner_side(plan: &LogicalPlan) -> Option<InnerSide<'_>> {
    match plan {
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => Some(InnerSide {
            relation,
            qualification: qualification.clone(),
            shapes: shape,
        }),
        LogicalPlan::Filter { input, predicate } => {
            let side = inl_inner_side(input)?;
            let qualification = Some(match side.qualification {
                Some(q) => q.and(predicate.clone()),
                None => predicate.clone(),
            });
            Some(InnerSide {
                qualification,
                ..side
            })
        }
        _ => None,
    }
}

/// Whether probing the inner side's index on `common` beats building a
/// hash table over it, by the index statistics: the outer side issues
/// ~`outer_est` probes of ~`avg_matches` results each, the hash join pays
/// for materializing the inner *plan*'s rows (its shape-pruned/filtered
/// estimate, not the whole relation).  The factor 2 keeps the switch
/// conservative around the break-even point.  Returns `false` when no
/// index on exactly `common` exists.
fn inl_gate(
    outer: &LogicalPlan,
    inner: &LogicalPlan,
    inner_relation: &str,
    common: &AttrSet,
    db: &Database,
) -> bool {
    let Ok(Some(info)) = db.index_info(inner_relation, common) else {
        return false;
    };
    let Some(outer_est) = estimate_rows(outer, db) else {
        return false;
    };
    let inner_est = estimate_rows(inner, db).unwrap_or(info.len);
    outer_est
        .saturating_mul(info.avg_matches())
        .saturating_mul(2)
        <= inner_est
}

/// The join strategy the executor will pick for `left ⋈ right`:
/// index-nested-loop when one side is a (possibly filtered) base scan with
/// a stored index on exactly the equi-join attributes and the statistics
/// gate passes, otherwise hash join.  Exposed so tests and the experiment
/// harness can show which access path a join takes.
pub fn join_strategy(left: &LogicalPlan, right: &LogicalPlan, db: &Database) -> JoinStrategy {
    let common = plan_attrs(left, db).intersection(&plan_attrs(right, db));
    join_strategy_for(left, right, &common, db)
}

/// [`join_strategy`] with the equi-join attribute set already computed —
/// the executor derives `common` once per join and shares it between the
/// strategy choice and the chosen stream.
fn join_strategy_for(
    left: &LogicalPlan,
    right: &LogicalPlan,
    common: &AttrSet,
    db: &Database,
) -> JoinStrategy {
    if common.is_empty() {
        return JoinStrategy::Hash;
    }
    if let Some(side) = inl_inner_side(right) {
        if inl_gate(left, right, side.relation, common, db) {
            return JoinStrategy::IndexNestedLoopRight;
        }
    }
    if let Some(side) = inl_inner_side(left) {
        if inl_gate(right, left, side.relation, common, db) {
            return JoinStrategy::IndexNestedLoopLeft;
        }
    }
    JoinStrategy::Hash
}

/// Memoized shape-predicate verdicts for rid-level checks: one interner
/// resolution (`ShapeId` → `AttrSet`) per partition, not per matched tuple.
/// Shared by the `IndexLookup` executor and the index-nested-loop join.
struct ShapeAdmitMemo<'a> {
    shapes: &'a Option<ShapePredicate>,
    verdicts: HashMap<ShapeId, bool>,
}

impl<'a> ShapeAdmitMemo<'a> {
    fn new(shapes: &'a Option<ShapePredicate>) -> Self {
        ShapeAdmitMemo {
            shapes,
            verdicts: HashMap::new(),
        }
    }

    fn admits(&mut self, rid: Rid) -> bool {
        match self.shapes {
            None => true,
            Some(s) => *self
                .verdicts
                .entry(rid.shape())
                .or_insert_with(|| s.admits(&rid.shape().attrs())),
        }
    }
}

/// Index-nested-loop join: streams the probe side and, per probe tuple,
/// looks the matching inner tuples up through the inner relation's stored
/// index on `common` — the inner side is never materialized as a whole.
/// Inner tuples not defined on the full key (the index's partial list) are
/// checked pairwise, mirroring the hash join's scan side; probe tuples not
/// defined on `common` fall back to a pairwise pass over the admitted inner
/// side, which is materialized once on first need and reused.
fn index_nested_loop_stream<'a>(
    probe: TupleStream<'a>,
    db: &'a Database,
    inner_relation: &'a str,
    inner_qualification: Option<Predicate>,
    inner_shapes: &'a Option<ShapePredicate>,
    common: AttrSet,
) -> Result<TupleStream<'a>> {
    let mut shape_memo = ShapeAdmitMemo::new(inner_shapes);
    let qualifies =
        move |q: &Option<Predicate>, t: &Tuple| q.as_ref().map(|q| q.eval(t)).unwrap_or(true);
    // The relation and its index are resolved once for the whole stream;
    // each probe is then one projection and one hash lookup yielding a
    // borrowed rid slice — no per-probe catalog walk or allocation.
    let index = db.index(inner_relation, &common)?;
    let partials: Vec<&'a Tuple> = db
        .lookup_partial(inner_relation, &common)?
        .into_iter()
        .filter(|(rid, t)| shape_memo.admits(*rid) && qualifies(&inner_qualification, t))
        .map(|(_, t)| t)
        .collect();
    let mut fallback: Option<Vec<&'a Tuple>> = None;
    Ok(Box::new(probe.flat_map(move |l| {
        let mut out = Vec::new();
        if l.defined_on(&common) {
            match index {
                Some(idx) => {
                    for rid in idx.lookup(&l.project(&common)) {
                        let Ok(Some(r)) = db.get(inner_relation, *rid) else {
                            continue;
                        };
                        if shape_memo.admits(*rid) && qualifies(&inner_qualification, r) {
                            out.push(l.merged_with(r));
                        }
                    }
                }
                // Unreachable when the strategy gate chose this stream (it
                // requires the index); kept as a correct scan fallback.
                None => {
                    if let Ok(hits) = db.lookup_eq(inner_relation, &common, &l.project(&common)) {
                        for (rid, r) in hits {
                            if shape_memo.admits(rid) && qualifies(&inner_qualification, r) {
                                out.push(l.merged_with(r));
                            }
                        }
                    }
                }
            }
            for r in &partials {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        } else {
            // Rare path: the probe tuple lacks part of the key, so the
            // index cannot answer; pair it against the (pruned, qualified)
            // inner side, materialized once across all such probe tuples.
            let rows = fallback.get_or_insert_with(|| {
                match db.scan_where(inner_relation, move |s| {
                    inner_shapes.as_ref().map(|p| p.admits(s)).unwrap_or(true)
                }) {
                    Ok(iter) => iter
                        .map(|(_, r)| r)
                        .filter(|r| qualifies(&inner_qualification, r))
                        .collect(),
                    Err(_) => Vec::new(),
                }
            });
            for r in rows.iter() {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        }
        out
    })))
}

/// Streaming hash join: the right input is materialized as the build side,
/// the left input streams through as the probe side.  `common` must be a
/// superset of every attribute an actual left/right tuple pair can share
/// (see [`plan_attrs`]); tuples not defined on all of `common` fall back to
/// pairwise `joinable_with` checks.
fn hash_join_stream<'a>(
    left: TupleStream<'a>,
    right: Vec<Tuple>,
    common: AttrSet,
) -> TupleStream<'a> {
    let mut hashed: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
    let mut scan_side: Vec<Tuple> = Vec::new();
    for r in right {
        if r.defined_on(&common) {
            hashed.entry(r.project(&common)).or_default().push(r);
        } else {
            scan_side.push(r);
        }
    }
    Box::new(left.flat_map(move |l| {
        let mut out = Vec::new();
        if l.defined_on(&common) {
            if let Some(partners) = hashed.get(&l.project(&common)) {
                for r in partners {
                    out.push(l.merged_with(r));
                }
            }
            for r in &scan_side {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        } else {
            for r in hashed.values().flatten().chain(scan_side.iter()) {
                if l.joinable_with(r) {
                    out.push(l.merged_with(r));
                }
            }
        }
        out
    }))
}

/// Builds the streaming pipeline for a plan.  Catalog errors (unknown
/// relations) surface here, before any tuple flows.
pub fn execute_stream<'a>(plan: &'a LogicalPlan, db: &'a Database) -> Result<TupleStream<'a>> {
    Ok(match plan {
        LogicalPlan::Empty => Box::new(std::iter::empty()),
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => {
            let rows = db
                .scan_where(relation, move |s| {
                    shape.as_ref().map(|p| p.admits(s)).unwrap_or(true)
                })?
                .map(|(_, t)| t.clone());
            // The qualification is *known* to hold; applying it is a no-op
            // on consistent data but keeps hand-built fragment plans honest
            // when they scan a broader base relation.
            match qualification {
                Some(q) => Box::new(rows.filter(move |t| q.eval(t))),
                None => Box::new(rows),
            }
        }
        LogicalPlan::IndexLookup {
            relation,
            key,
            key_value,
            shapes,
        } => {
            // The probe returns borrowed (rid, tuple) pairs; the shape
            // predicate is re-applied per rid (its ShapeId names the
            // partition), so shape pruning composes with index access.  The
            // verdict is memoized per ShapeId ([`ShapeAdmitMemo`]).
            let hits = db.lookup_eq(relation, key, key_value)?;
            let mut admitted = ShapeAdmitMemo::new(shapes);
            Box::new(
                hits.into_iter()
                    .filter(move |(rid, _)| admitted.admits(*rid))
                    .map(|(_, t)| t.clone()),
            )
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute_stream(input, db)?;
            Box::new(rows.filter(move |t| predicate.eval(t)))
        }
        LogicalPlan::Project { input, attrs } => {
            let rows = execute_stream(input, db)?;
            let mut seen: BTreeSet<Tuple> = BTreeSet::new();
            Box::new(rows.filter_map(move |t| {
                let p = t.project(attrs);
                seen.insert(p.clone()).then_some(p)
            }))
        }
        LogicalPlan::Guard { input, attrs } => {
            let rows = execute_stream(input, db)?;
            Box::new(rows.filter(move |t| t.defined_on(attrs)))
        }
        LogicalPlan::Join { left, right } => {
            let common = plan_attrs(left, db).intersection(&plan_attrs(right, db));
            match join_strategy_for(left, right, &common, db) {
                JoinStrategy::IndexNestedLoopRight => {
                    let side = inl_inner_side(right).expect("the strategy implies a base scan");
                    let probe = execute_stream(left, db)?;
                    index_nested_loop_stream(
                        probe,
                        db,
                        side.relation,
                        side.qualification,
                        side.shapes,
                        common,
                    )?
                }
                JoinStrategy::IndexNestedLoopLeft => {
                    let side = inl_inner_side(left).expect("the strategy implies a base scan");
                    let probe = execute_stream(right, db)?;
                    index_nested_loop_stream(
                        probe,
                        db,
                        side.relation,
                        side.qualification,
                        side.shapes,
                        common,
                    )?
                }
                JoinStrategy::Hash => {
                    let l = execute_stream(left, db)?;
                    let r: Vec<Tuple> = execute_stream(right, db)?.collect();
                    hash_join_stream(l, r, common)
                }
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let streams: Vec<TupleStream<'a>> = inputs
                .iter()
                .map(|i| execute_stream(i, db))
                .collect::<Result<_>>()?;
            let mut seen: BTreeSet<Tuple> = BTreeSet::new();
            Box::new(
                streams
                    .into_iter()
                    .flatten()
                    .filter(move |t| seen.insert(t.clone())),
            )
        }
        LogicalPlan::Extend { input, attr, value } => {
            let rows = execute_stream(input, db)?;
            Box::new(rows.map(move |mut t| {
                t.insert(attr.as_str(), value.clone());
                t
            }))
        }
    })
}

/// Executes a logical plan, materializing the result tuples.  A convenience
/// wrapper around [`execute_stream`].
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Vec<Tuple>> {
    Ok(execute_stream(plan, db)?.collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::ShapePredicate;
    use crate::optimizer::optimize;
    use crate::parser::parse;
    use crate::planner::plan_query;
    use flexrel_algebra::predicate::Predicate;
    use flexrel_core::attrs;
    use flexrel_core::value::Value;
    use flexrel_storage::RelationDef;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn db(n: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    fn run(db: &Database, frql: &str) -> Vec<Tuple> {
        let q = parse(frql).unwrap();
        let plan = plan_query(&q, db.catalog()).unwrap();
        execute(&plan, db).unwrap()
    }

    #[test]
    fn scan_filter_project_guard() {
        let db = db(200);
        let all = run(&db, "SELECT * FROM employee");
        assert_eq!(all.len(), 200);

        let secretaries = run(&db, "SELECT * FROM employee WHERE jobtype = 'secretary'");
        assert!(!secretaries.is_empty());
        assert!(secretaries
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("secretary"))));

        let projected = run(
            &db,
            "SELECT empno, salary FROM employee WHERE salary > 5000",
        );
        assert!(projected
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary"]));

        let guarded = run(&db, "SELECT * FROM employee GUARD products");
        assert!(guarded.iter().all(|t| t.has_name("products")));
        assert!(guarded.len() < 200);
    }

    #[test]
    fn optimized_and_unoptimized_plans_agree() {
        let db = db(300);
        let queries = [
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
            "SELECT empno FROM employee WHERE jobtype = 'salesman' GUARD sales-commission",
            "SELECT * FROM employee WHERE jobtype = 'secretary' GUARD products",
            "SELECT empno, products FROM employee WHERE jobtype = 'software engineer' AND PRESENT(products)",
            "SELECT * FROM employee WHERE salary > 9999999",
        ];
        for q in queries {
            let parsed = parse(q).unwrap();
            let plan = plan_query(&parsed, db.catalog()).unwrap();
            let naive: std::collections::BTreeSet<Tuple> =
                execute(&plan, &db).unwrap().into_iter().collect();
            let (optimized, _) = optimize(plan, db.catalog());
            let fast: std::collections::BTreeSet<Tuple> =
                execute(&optimized, &db).unwrap().into_iter().collect();
            assert_eq!(
                naive, fast,
                "optimization must not change results for {}",
                q
            );
        }
    }

    #[test]
    fn shape_predicates_prune_partitions_without_changing_results() {
        let db = db(240);
        let frql = "SELECT * FROM employee WHERE jobtype = 'secretary' AND salary > 3000";
        let parsed = parse(frql).unwrap();
        let plan = plan_query(&parsed, db.catalog()).unwrap();
        let (optimized, notes) = optimize(plan.clone(), db.catalog());
        assert_eq!(optimized.pruned_scan_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "partition-pruning"));
        let naive: std::collections::BTreeSet<Tuple> =
            execute(&plan, &db).unwrap().into_iter().collect();
        let pruned: std::collections::BTreeSet<Tuple> =
            execute(&optimized, &db).unwrap().into_iter().collect();
        assert_eq!(naive, pruned);
        // The pruned scan bound covers only the secretary partition.
        let bound = plan_attrs(&optimized, &db);
        assert!(bound.is_superset(&attrs!["typing-speed", "foreign-languages"]));
        assert!(!bound.contains_name("sales-commission"));
    }

    #[test]
    fn execute_stream_is_lazy_per_tuple() {
        let db = db(100);
        let plan = LogicalPlan::scan("employee");
        let mut stream = execute_stream(&plan, &db).unwrap();
        // Pulling a single tuple must not require draining the pipeline.
        assert!(stream.next().is_some());
        drop(stream);
        // take() composes with the stream without materializing the rest.
        let five: Vec<Tuple> = execute_stream(&plan, &db).unwrap().take(5).collect();
        assert_eq!(five.len(), 5);
    }

    #[test]
    fn join_and_union_execution() {
        let db = db(50);
        // Join employee with itself projected on empno/salary: equivalent to
        // the original relation (key join).
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        let joined = execute(&left.join(right), &db).unwrap();
        assert_eq!(joined.len(), 50);
        assert!(joined
            .iter()
            .all(|t| t.attrs() == attrs!["empno", "salary", "jobtype"]));

        let union = LogicalPlan::UnionAll {
            inputs: vec![
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("secretary"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
                LogicalPlan::scan("employee")
                    .filter(Predicate::eq("jobtype", Value::tag("salesman"))),
            ],
        };
        let rows = execute(&union, &db).unwrap();
        let by_scan = run(
            &db,
            "SELECT * FROM employee WHERE jobtype = 'secretary' OR jobtype = 'salesman'",
        );
        assert_eq!(
            rows.len(),
            by_scan.len(),
            "duplicates across branches are removed"
        );
    }

    #[test]
    fn join_common_attrs_come_from_partition_metadata() {
        let db = db(60);
        let left = LogicalPlan::scan("employee").project(attrs!["empno", "salary"]);
        let right = LogicalPlan::scan("employee").project(attrs!["empno", "jobtype"]);
        assert_eq!(plan_attrs(&left, &db), attrs!["empno", "salary"]);
        assert_eq!(
            plan_attrs(&left, &db).intersection(&plan_attrs(&right, &db)),
            attrs!["empno"]
        );
        let join = left.join(right);
        assert_eq!(plan_attrs(&join, &db), attrs!["empno", "salary", "jobtype"]);
        assert_eq!(plan_attrs(&LogicalPlan::Empty, &db), AttrSet::empty());
    }

    #[test]
    fn extend_adds_constant() {
        let db = db(10);
        let plan = LogicalPlan::Extend {
            input: Box::new(LogicalPlan::scan("employee")),
            attr: "source".into(),
            value: Value::tag("hr"),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("source") == Some(&Value::tag("hr"))));
        assert!(plan_attrs(&plan, &db).contains_name("source"));
    }

    #[test]
    fn qualified_scan_applies_its_predicate() {
        let db = db(40);
        let plan = LogicalPlan::qualified_scan(
            "employee",
            Predicate::eq("jobtype", Value::tag("salesman")),
        );
        let rows = execute(&plan, &db).unwrap();
        assert!(rows
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("salesman"))));
    }

    #[test]
    fn hand_built_shape_predicate_restricts_the_scan() {
        let db = db(80);
        let full = execute(&LogicalPlan::scan("employee"), &db).unwrap().len();
        let plan = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() < full);
        assert!(rows.iter().all(|t| t.has_name("typing-speed")));
    }

    #[test]
    fn empty_plan_returns_nothing() {
        let db = db(5);
        assert!(execute(&LogicalPlan::Empty, &db).unwrap().is_empty());
    }

    #[test]
    fn index_lookup_plans_agree_with_scans() {
        use crate::optimizer::optimize_with_db;
        let db = db(250);
        for frql in [
            "SELECT * FROM employee WHERE empno = 17",
            "SELECT * FROM employee WHERE jobtype = 'secretary'",
            "SELECT empno FROM employee WHERE jobtype = 'salesman' AND salary > 4000",
        ] {
            let parsed = parse(frql).unwrap();
            let plan = plan_query(&parsed, db.catalog()).unwrap();
            let naive: std::collections::BTreeSet<Tuple> =
                execute(&plan, &db).unwrap().into_iter().collect();
            let (indexed, _) = optimize_with_db(plan, &db);
            assert_eq!(indexed.index_lookup_count(), 1, "{}: {}", frql, indexed);
            let fast: std::collections::BTreeSet<Tuple> =
                execute(&indexed, &db).unwrap().into_iter().collect();
            assert_eq!(
                naive, fast,
                "index access must not change results: {}",
                frql
            );
        }
    }

    #[test]
    fn index_lookup_applies_its_shape_predicate_per_rid() {
        let db = db(120);
        // A hand-built lookup on the jobtype index restricted to shapes that
        // carry typing-speed: salesman/engineer partitions are excluded even
        // though the probe key matches no secretaries... probe 'salesman'
        // with a secretary-only shape predicate: nothing may come back.
        let plan = LogicalPlan::IndexLookup {
            relation: "employee".into(),
            key: attrs!["jobtype"],
            key_value: Tuple::new().with("jobtype", Value::tag("salesman")),
            shapes: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        assert!(execute(&plan, &db).unwrap().is_empty());
        // Without the shape restriction the probe returns the salesmen.
        let plan = LogicalPlan::IndexLookup {
            relation: "employee".into(),
            key: attrs!["jobtype"],
            key_value: Tuple::new().with("jobtype", Value::tag("salesman")),
            shapes: None,
        };
        let rows = execute(&plan, &db).unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|t| t.get_name("jobtype") == Some(&Value::tag("salesman"))));
    }

    /// A small key-list relation to drive index-nested-loop joins.
    fn with_wanted(mut db: Database, keys: &[i64]) -> Database {
        use flexrel_core::scheme::FlexScheme;
        db.create_relation(RelationDef::new(
            "wanted",
            FlexScheme::relational(attrs!["empno"]),
        ))
        .unwrap();
        for k in keys {
            db.insert("wanted", Tuple::new().with("empno", *k)).unwrap();
        }
        db
    }

    /// Registers a dependency-free copy of `employee` under `name` with the
    /// same instance.  No dependencies means no indexes, so joins against
    /// it always take the hash path — the baseline INL is checked against.
    fn with_shadow(mut db: Database, name: &str) -> Database {
        let scheme = db.catalog().get("employee").unwrap().scheme.clone();
        db.create_relation(RelationDef::new(name, scheme)).unwrap();
        let tuples: Vec<Tuple> = db
            .scan("employee")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        for t in tuples {
            db.insert(name, t).unwrap();
        }
        db
    }

    #[test]
    fn small_probe_side_picks_index_nested_loop() {
        let db = with_shadow(with_wanted(db(300), &[3, 7, 11, 200]), "employee_nx");
        let wanted = LogicalPlan::scan("wanted");
        let employee = LogicalPlan::scan("employee");
        // Indexed side right resp. left: both orientations are picked.
        assert_eq!(
            join_strategy(&wanted, &employee, &db),
            JoinStrategy::IndexNestedLoopRight
        );
        assert_eq!(
            join_strategy(&employee, &wanted, &db),
            JoinStrategy::IndexNestedLoopLeft
        );
        // A residual filter over the indexed scan folds into the probe's
        // qualification instead of disqualifying the side.
        let filtered = LogicalPlan::scan("employee").filter(Predicate::gt("salary", 0));
        assert_eq!(
            join_strategy(&wanted, &filtered, &db),
            JoinStrategy::IndexNestedLoopRight
        );

        // All INL shapes agree with the hash join over the index-free
        // shadow copy of the same instance.
        let inl: std::collections::BTreeSet<Tuple> = execute(&wanted.clone().join(employee), &db)
            .unwrap()
            .into_iter()
            .collect();
        let inl_filtered: std::collections::BTreeSet<Tuple> =
            execute(&wanted.clone().join(filtered), &db)
                .unwrap()
                .into_iter()
                .collect();
        let shadow = LogicalPlan::scan("employee_nx");
        assert_eq!(
            join_strategy(&wanted, &shadow, &db),
            JoinStrategy::Hash,
            "no index exists on the shadow relation"
        );
        let hash: std::collections::BTreeSet<Tuple> = execute(&wanted.join(shadow), &db)
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(inl, hash);
        assert_eq!(inl_filtered, hash, "salary > 0 holds for every employee");
        assert_eq!(hash.len(), 4, "empnos 3, 7, 11 and 200 exist among 300");
    }

    #[test]
    fn large_probe_side_stays_with_hash_join() {
        // Equal-size self join on the indexed key: probing 300 times with
        // ~1 match each is not cheaper than one 300-tuple build side, so
        // the statistics gate keeps the hash join.
        let db = db(300);
        let l = LogicalPlan::scan("employee").project(attrs!["empno"]);
        let r = LogicalPlan::scan("employee");
        assert!(db.has_index("employee", &attrs!["empno"]));
        assert_eq!(join_strategy(&l, &r, &db), JoinStrategy::Hash);
    }

    #[test]
    fn estimate_rows_uses_partition_and_index_statistics() {
        let db = with_wanted(db(240), &[1, 2]);
        assert_eq!(estimate_rows(&LogicalPlan::Empty, &db), Some(0));
        assert_eq!(
            estimate_rows(&LogicalPlan::scan("employee"), &db),
            Some(240)
        );
        assert_eq!(estimate_rows(&LogicalPlan::scan("wanted"), &db), Some(2));
        // A pruned scan counts only admitted partitions.
        let pruned = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        };
        let est = estimate_rows(&pruned, &db).unwrap();
        assert!(est > 0 && est < 240, "est = {}", est);
        // An index lookup estimates one hash chain.
        let lookup = LogicalPlan::IndexLookup {
            relation: "employee".into(),
            key: attrs!["empno"],
            key_value: Tuple::new().with("empno", 5),
            shapes: None,
        };
        assert_eq!(estimate_rows(&lookup, &db), Some(1));
        // Joins are unbounded.
        assert_eq!(
            estimate_rows(
                &LogicalPlan::scan("wanted").join(LogicalPlan::scan("employee")),
                &db
            ),
            None
        );
    }
}
