//! The text-statement entry point: one call that takes an FRQL string and a
//! database handle through parse → plan → optimize → execute, with an
//! optional deadline.
//!
//! This is the boundary the network server (and any other embedder that
//! receives statements as text) calls per statement.  It owns two contracts
//! the lower layers leave to the caller:
//!
//! * **`EXPLAIN` dispatch** — a statement prefixed with `EXPLAIN` returns
//!   the rendered optimized plan instead of rows.
//! * **Timeout surfacing** — when [`ExecOptions::deadline`] trips, the late
//!   pipeline ends its chunk stream early and flags
//!   [`crate::ExecStats::timed_out`]; `run_statement` converts that flag into
//!   [`CoreError::Timeout`] so truncated row sets never escape to a client.

use flexrel_core::error::{CoreError, Result};
use flexrel_core::tuple::Tuple;
use flexrel_storage::Database;

use crate::exec::{execute_collect, ExecOptions};
use crate::optimizer::{explain_query, optimize_with_db};
use crate::parser::parse;
use crate::planner::plan_query;

/// What a successfully executed statement produced.
#[derive(Clone, Debug, PartialEq)]
pub enum StatementOutcome {
    /// Result tuples of a query, in pipeline order (a multiset; parallel
    /// scans may permute it).
    Rows(Vec<Tuple>),
    /// The rendered optimized plan of an `EXPLAIN` statement.
    Explain(String),
}

/// Parses, plans, optimizes (against the live database's statistics and
/// indexes) and executes one FRQL statement.
///
/// Errors from every stage come back as [`CoreError`]: parse and binding
/// errors, unknown relations, and — when `opts.deadline` has passed before
/// the result stream is drained — [`CoreError::Timeout`].
pub fn run_statement(db: &Database, frql: &str, opts: &ExecOptions) -> Result<StatementOutcome> {
    let query = parse(frql)?;
    if query.explain {
        return Ok(StatementOutcome::Explain(explain_query(frql, db)?));
    }
    let plan = plan_query(&query, &db.catalog())?;
    let (optimized, _notes) = optimize_with_db(plan, db);
    let (rows, stats) = execute_collect(&optimized, db, opts)?;
    if stats.timed_out() {
        return Err(CoreError::Timeout(format!(
            "deadline passed after {} rows were produced",
            rows.len()
        )));
    }
    Ok(StatementOutcome::Rows(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_storage::RelationDef;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn database(n: usize) -> Database {
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    #[test]
    fn runs_queries_and_explains_from_text() {
        let db = database(64);
        let out = run_statement(
            &db,
            "SELECT empno FROM employee WHERE jobtype = 'secretary'",
            &ExecOptions::serial(),
        )
        .unwrap();
        match out {
            StatementOutcome::Rows(rows) => {
                assert!(!rows.is_empty());
                assert!(rows.iter().all(|t| t.has_name("empno")));
            }
            other => panic!("expected rows, got {:?}", other),
        }

        let out = run_statement(
            &db,
            "EXPLAIN SELECT * FROM employee WHERE jobtype = 'secretary'",
            &ExecOptions::serial(),
        )
        .unwrap();
        match out {
            StatementOutcome::Explain(text) => assert!(text.contains("employee"), "{}", text),
            other => panic!("expected explain, got {:?}", other),
        }
    }

    #[test]
    fn statement_errors_are_typed_not_panics() {
        let db = database(4);
        assert!(run_statement(&db, "SELEC oops", &ExecOptions::serial()).is_err());
        assert!(run_statement(&db, "SELECT * FROM nowhere", &ExecOptions::serial()).is_err());
        assert!(matches!(
            run_statement(&db, "SELECT bogus FROM employee", &ExecOptions::serial()),
            Err(CoreError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn an_expired_deadline_yields_timeout_never_truncated_rows() {
        let db = database(256);
        let opts = ExecOptions::serial().with_deadline(std::time::Instant::now());
        let err = run_statement(&db, "SELECT * FROM employee", &opts).unwrap_err();
        assert!(matches!(err, CoreError::Timeout(_)), "{:?}", err);
        // The same statement without a deadline still works on the same
        // handle — cancellation leaves no residue in the database.
        let out = run_statement(&db, "SELECT * FROM employee", &ExecOptions::serial()).unwrap();
        assert!(matches!(out, StatementOutcome::Rows(r) if r.len() == 256));
    }
}
