//! # flexrel-query
//!
//! Query processing over flexible relations: a small query language (FRQL),
//! logical plans, a rule-based optimizer whose rewrites are justified by
//! attribute dependencies (§3.1.2 and Example 4 of Kalus & Dadam, ICDE
//! 1995), and a streaming, partition-aware executor running against
//! [`flexrel_storage::Database`].
//!
//! ## The optimizer's AD-driven rewrites
//!
//! * **Redundant type-guard elimination** (Example 4): a guard asking for
//!   attributes whose presence already follows — via the axiom system ℛ/ℰ
//!   ([`flexrel_core::typecheck::analyse_guard`]) — from the selection
//!   formula is removed; the derivation justifying the removal is attached
//!   to the rewrite note.
//! * **Unsatisfiable-guard pruning**: a guard asking for attributes the
//!   selected variant can never carry collapses the subtree to an empty
//!   plan.
//! * **Variant/branch pruning** (qualified relations): joins and union
//!   branches whose qualification contradicts the query's equality
//!   constraints on the determining attributes are eliminated — the
//!   "unnecessary joins with variants that are known to be excluded".
//! * **Partition pruning**: the attributes a selection requires present
//!   ([`flexrel_algebra::predicate::Predicate::required_attrs`]) and the
//!   exact variant overlap an [`Ead`](flexrel_core::dep::Ead) prescribes
//!   for pinned determining values are pushed into a
//!   [`ShapePredicate`] on the scan; the executor
//!   evaluates it per heap partition and skips partitions whose shape
//!   cannot qualify.
//! * **Index access paths** ([`optimize_with_db`]): equality selections
//!   covered by a stored index (the auto-created determinant indexes, or a
//!   user-defined secondary one) become
//!   [`IndexLookup`](LogicalPlan::IndexLookup) probes with a residual
//!   filter, and joins on an indexed key stream one side against the index
//!   ([`join_strategy`], gated by the index statistics) instead of
//!   building a hash table.
//!
//! ```
//! use flexrel_query::prelude::*;
//! use flexrel_storage::{Database, RelationDef};
//! use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};
//!
//! let mut db = Database::new();
//! let def = RelationDef::from_relation(&employee_relation());
//! db.create_relation(def).unwrap();
//! for t in generate_employees(&EmployeeConfig::clean(100)) {
//!     db.insert("employee", t).unwrap();
//! }
//!
//! let query = parse(
//!     "SELECT empno, typing-speed FROM employee \
//!      WHERE salary > 3000 AND jobtype = 'secretary' GUARD typing-speed",
//! ).unwrap();
//! let plan = plan_query(&query, &db.catalog()).unwrap();
//! let (optimized, notes) = optimize(plan, &db.catalog());
//! assert!(notes.iter().any(|n| n.rule == "guard-elimination"));
//! let rows = execute(&optimized, &db).unwrap();
//! assert!(rows.iter().all(|t| t.has_name("typing-speed")));
//! ```

#![deny(missing_docs)]

pub mod agg;
pub mod batch;
pub mod colscan;
pub mod exec;
pub mod logical;
pub mod optimizer;
pub mod parser;
pub mod planner;
pub mod statement;

pub use agg::{Acc, GroupedAggs};
pub use batch::{Chunk, ColChunk, ExecStats};
pub use colscan::{
    aggregate_partition, aggregate_selected, compile as compile_predicates, Compiled, VectorScan,
};
pub use exec::{
    estimate_rows, execute, execute_collect, execute_stream, execute_stream_with, execute_with,
    join_strategy, plan_attrs, scan_parallelism, ExecOptions, JoinStrategy, PipelineMode,
    TupleStream,
};
pub use logical::{AggExpr, AggFunc, LogicalPlan, ShapePredicate};
pub use optimizer::{
    choose_access_paths, explain_query, optimize, optimize_with_db, PassContext, Pipeline,
    PlanExplain, Rewrite, RewriteNote,
};
pub use parser::{parse, Query};
pub use planner::plan_query;
pub use statement::{run_statement, StatementOutcome};

/// The most commonly used items.
pub mod prelude {
    pub use crate::exec::{
        execute, execute_collect, execute_stream, execute_stream_with, execute_with, join_strategy,
        ExecOptions, JoinStrategy, PipelineMode,
    };
    pub use crate::logical::{AggExpr, AggFunc, LogicalPlan, ShapePredicate};
    pub use crate::optimizer::{
        explain_query, optimize, optimize_with_db, PlanExplain, RewriteNote,
    };
    pub use crate::parser::{parse, Query};
    pub use crate::planner::plan_query;
    pub use crate::statement::{run_statement, StatementOutcome};
}
