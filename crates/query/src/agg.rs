//! Aggregation semantics for flexible relations, shared by both executor
//! pipelines.
//!
//! Aggregation over flexible relations differs from SQL in one important
//! way: there are no nulls.  Whether a tuple contributes to `SUM(x)` is a
//! matter of *shape* — the tuple either is or is not defined on `x` — and
//! within a shape-homogeneous partition that is a partition-level constant,
//! not a per-row check.  The rules implemented here:
//!
//! * `COUNT(*)` counts every tuple of the group.
//! * `COUNT(x)` counts the tuples defined on `x`; `SUM`/`MIN`/`MAX` fold
//!   only over tuples defined on their input attribute.
//! * A tuple not defined on **all** grouping attributes belongs to no group
//!   — grouping acts as a type guard (the optimizer pushes the grouping
//!   attributes into the scan's shape predicate for exactly this reason).
//! * A `SUM`/`MIN`/`MAX` whose group saw no input **omits** its output
//!   attribute: result tuples are flexible tuples, so "nothing to sum" is
//!   expressed by shape, not by a null.  `COUNT` always emits (possibly 0).
//! * Integer sums wrap (two's complement); mixed `Int`/`Float` input sums
//!   to `Float`.  `MIN`/`MAX` use [`Value`]'s total order.
//!
//! The row-wise fold ([`GroupedAggs::add_tuple`]) *defines* the semantics;
//! the columnar kernels ([`crate::colscan::aggregate_selected`]) must agree
//! with it bit-for-bit, which the proptest suite checks.  To keep float
//! sums reproducible, [`Acc`] accumulates integer and float contributions
//! separately: integer addition wraps (order-independent) and float
//! contributions are added in row order, so the kernels match the row fold
//! exactly as long as they fold each group's rows in storage order.

use std::collections::BTreeMap;

use flexrel_core::attr::AttrSet;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;

use crate::logical::{AggExpr, AggFunc};

/// One aggregate accumulator: the running state of a single aggregate
/// function over one group.
#[derive(Clone, Debug)]
pub enum Acc {
    /// `COUNT` — tuples (or present inputs) seen so far.
    Count(i64),
    /// `SUM` — integer part (wrapping), float part (row order), and whether
    /// any numeric input arrived at all.
    Sum {
        /// Running wrapping sum of the `Int` inputs.
        int: i64,
        /// Running sum of the `Float` inputs, in arrival order.
        float: f64,
        /// Whether any `Float` input arrived (the result is then a `Float`).
        saw_float: bool,
        /// Whether any numeric input arrived (otherwise the output attribute
        /// is omitted).
        any: bool,
    },
    /// `MIN` under [`Value`]'s total order; `None` until an input arrives.
    Min(Option<Value>),
    /// `MAX` under [`Value`]'s total order; `None` until an input arrives.
    Max(Option<Value>),
}

impl Acc {
    /// A fresh accumulator for the given function.
    pub fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
                any: false,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    /// Folds one input value.  For `COUNT` this counts the value; for `SUM`
    /// non-numeric values are ignored (they contribute nothing, mirroring
    /// that arithmetic over tags is undefined); `MIN`/`MAX` accept any value
    /// and keep the first-seen value on ties of the total order.
    pub fn add_value(&mut self, v: &Value) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum {
                int,
                float,
                saw_float,
                any,
            } => match v {
                Value::Int(i) => {
                    *int = int.wrapping_add(*i);
                    *any = true;
                }
                Value::Float(f) => {
                    *float += *f;
                    *saw_float = true;
                    *any = true;
                }
                _ => {}
            },
            Acc::Min(m) => {
                if m.as_ref().map(|m| v < m).unwrap_or(true) {
                    *m = Some(v.clone());
                }
            }
            Acc::Max(m) => {
                if m.as_ref().map(|m| v > m).unwrap_or(true) {
                    *m = Some(v.clone());
                }
            }
        }
    }

    /// Bulk `COUNT` update: `n` rows at once (the columnar kernels count a
    /// whole selection vector in one step).  Only valid on `COUNT`.
    pub fn add_count(&mut self, n: i64) {
        match self {
            Acc::Count(c) => *c += n,
            _ => unreachable!("add_count is a COUNT-only fast path"),
        }
    }

    /// Bulk integer-`SUM` update: a pre-folded wrapping partial sum over a
    /// non-empty run of rows.  Wrapping addition is associative, so this is
    /// exactly the element-wise fold.  Only valid on `SUM`.
    pub fn add_int_sum(&mut self, partial: i64) {
        match self {
            Acc::Sum { int, any, .. } => {
                *int = int.wrapping_add(partial);
                *any = true;
            }
            _ => unreachable!("add_int_sum is a SUM-only fast path"),
        }
    }

    /// The final value, or `None` when the output attribute is omitted
    /// (a `SUM`/`MIN`/`MAX` that saw no input).
    pub fn finish(&self) -> Option<Value> {
        match self {
            Acc::Count(n) => Some(Value::Int(*n)),
            Acc::Sum { any: false, .. } => None,
            Acc::Sum {
                int,
                float,
                saw_float,
                ..
            } => {
                if *saw_float {
                    Some(Value::Float(*int as f64 + *float))
                } else {
                    Some(Value::Int(*int))
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.clone(),
        }
    }
}

/// The blocking state of an `Aggregate` node: one [`Acc`] row per aggregate
/// expression per group, keyed by the group's projection onto the grouping
/// attributes.  Groups live in a `BTreeMap` so the output order is the
/// total order over key tuples — deterministic regardless of input order.
///
/// Both pipelines share this type: the row pipeline feeds it through
/// [`add_tuple`](GroupedAggs::add_tuple) (the semantic reference), the late
/// pipeline through the columnar kernels in [`crate::colscan`], which reach
/// a group's accumulators via [`group_accs`](GroupedAggs::group_accs)
/// without materializing input tuples.
#[derive(Debug)]
pub struct GroupedAggs {
    group_by: AttrSet,
    aggs: Vec<AggExpr>,
    groups: BTreeMap<Tuple, Vec<Acc>>,
}

impl GroupedAggs {
    /// Fresh state for `GROUP BY group_by` over `aggs`.  An empty
    /// `group_by` is the global aggregate: one group keyed by the empty
    /// tuple, emitted even over empty input.
    pub fn new(group_by: AttrSet, aggs: Vec<AggExpr>) -> Self {
        GroupedAggs {
            group_by,
            aggs,
            groups: BTreeMap::new(),
        }
    }

    /// The grouping attributes.
    pub fn group_by(&self) -> &AttrSet {
        &self.group_by
    }

    /// The aggregate expressions, in output order.
    pub fn aggs(&self) -> &[AggExpr] {
        &self.aggs
    }

    /// Folds one materialized tuple — the row-pipeline path and the
    /// reference semantics for the columnar kernels.
    pub fn add_tuple(&mut self, t: &Tuple) {
        if !t.defined_on(&self.group_by) {
            return;
        }
        let key = t.project(&self.group_by);
        let aggs = &self.aggs;
        let accs = self
            .groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| Acc::new(a.func)).collect());
        for (agg, acc) in aggs.iter().zip(accs.iter_mut()) {
            match &agg.input {
                None => acc.add_count(1),
                Some(a) => {
                    if let Some(v) = t.get(a) {
                        acc.add_value(v);
                    }
                }
            }
        }
    }

    /// The accumulators of the group keyed by `key` (created on first
    /// touch).  `key` must be a tuple over exactly the grouping attributes;
    /// the columnar kernels build it once per distinct group, not per row.
    pub fn group_accs(&mut self, key: Tuple) -> &mut [Acc] {
        debug_assert_eq!(key.attrs(), self.group_by);
        let aggs = &self.aggs;
        self.groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| Acc::new(a.func)).collect())
    }

    /// Finalizes into result tuples: each group's key merged with the
    /// aggregate outputs (omitting aggregates that saw no input).  A global
    /// aggregate over empty input still yields its single row — `COUNT(*)`
    /// of nothing is 0.
    pub fn finish(mut self) -> Vec<Tuple> {
        if self.groups.is_empty() && self.group_by.is_empty() {
            self.groups.insert(
                Tuple::empty(),
                self.aggs.iter().map(|a| Acc::new(a.func)).collect(),
            );
        }
        let aggs = self.aggs;
        self.groups
            .into_iter()
            .map(|(key, accs)| {
                let mut out = key;
                for (agg, acc) in aggs.iter().zip(accs.iter()) {
                    if let Some(v) = acc.finish() {
                        out.insert(agg.output.clone(), v);
                    }
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::AggFunc;
    use flexrel_core::attrs;

    fn aggs() -> Vec<AggExpr> {
        vec![
            AggExpr::new(AggFunc::Count, None),
            AggExpr::new(AggFunc::Count, Some("x".into())),
            AggExpr::new(AggFunc::Sum, Some("x".into())),
            AggExpr::new(AggFunc::Min, Some("x".into())),
            AggExpr::new(AggFunc::Max, Some("x".into())),
        ]
    }

    #[test]
    fn global_aggregate_over_empty_input_emits_one_row() {
        let state = GroupedAggs::new(AttrSet::empty(), aggs());
        let rows = state.finish();
        assert_eq!(rows.len(), 1);
        let t = &rows[0];
        assert_eq!(t.get_name("count"), Some(&Value::Int(0)));
        assert_eq!(t.get_name("count-x"), Some(&Value::Int(0)));
        // No input: sum/min/max omit their output attributes.
        assert!(!t.has_name("sum-x"));
        assert!(!t.has_name("min-x"));
        assert!(!t.has_name("max-x"));
    }

    #[test]
    fn grouped_aggregate_over_empty_input_emits_nothing() {
        let state = GroupedAggs::new(attrs!["g"], aggs());
        assert!(state.finish().is_empty());
    }

    #[test]
    fn presence_gates_the_fold_and_grouping() {
        let mut state = GroupedAggs::new(attrs!["g"], aggs());
        state.add_tuple(&Tuple::new().with("g", Value::tag("a")).with("x", 3));
        state.add_tuple(&Tuple::new().with("g", Value::tag("a")).with("x", 4));
        state.add_tuple(&Tuple::new().with("g", Value::tag("a"))); // no x
        state.add_tuple(&Tuple::new().with("g", Value::tag("b"))); // no x
        state.add_tuple(&Tuple::new().with("x", 99)); // no g: in no group
        let rows = state.finish();
        assert_eq!(rows.len(), 2);
        let a = rows
            .iter()
            .find(|t| t.get_name("g") == Some(&Value::tag("a")))
            .unwrap();
        assert_eq!(a.get_name("count"), Some(&Value::Int(3)));
        assert_eq!(a.get_name("count-x"), Some(&Value::Int(2)));
        assert_eq!(a.get_name("sum-x"), Some(&Value::Int(7)));
        assert_eq!(a.get_name("min-x"), Some(&Value::Int(3)));
        assert_eq!(a.get_name("max-x"), Some(&Value::Int(4)));
        let b = rows
            .iter()
            .find(|t| t.get_name("g") == Some(&Value::tag("b")))
            .unwrap();
        assert_eq!(b.get_name("count"), Some(&Value::Int(1)));
        assert_eq!(b.get_name("count-x"), Some(&Value::Int(0)));
        assert!(!b.has_name("sum-x"));
    }

    #[test]
    fn integer_sums_wrap_and_mixed_sums_go_float() {
        let mut acc = Acc::new(AggFunc::Sum);
        acc.add_value(&Value::Int(i64::MAX));
        acc.add_value(&Value::Int(1));
        assert_eq!(acc.finish(), Some(Value::Int(i64::MIN)));

        let mut acc = Acc::new(AggFunc::Sum);
        acc.add_value(&Value::Int(2));
        acc.add_value(&Value::Float(0.5));
        assert_eq!(acc.finish(), Some(Value::Float(2.5)));

        // Non-numeric inputs are invisible to SUM.
        let mut acc = Acc::new(AggFunc::Sum);
        acc.add_value(&Value::tag("zed"));
        assert_eq!(acc.finish(), None);
    }

    #[test]
    fn min_max_follow_the_total_order() {
        let mut min = Acc::new(AggFunc::Min);
        let mut max = Acc::new(AggFunc::Max);
        for v in [Value::Int(4), Value::Float(2.5), Value::Int(7)] {
            min.add_value(&v);
            max.add_value(&v);
        }
        assert_eq!(min.finish(), Some(Value::Float(2.5)));
        assert_eq!(max.finish(), Some(Value::Int(7)));
    }
}
