//! The rule-based optimizer.
//!
//! Every rewrite is *justified*: redundant type guards are removed only when
//! the axiom system ([`flexrel_core::axioms::AxiomSystem::E`], applied via
//! [`flexrel_core::typecheck::analyse_guard`]) derives the corresponding
//! attribute dependency from the declared dependencies (Example 4); branches
//! and joins are pruned only when their qualification provably contradicts
//! the query's equality constraints on the determining attributes (§3.1.2,
//! qualified relations); and scans are restricted to the heap partitions
//! whose shape can satisfy the selection — using the exact variant overlap
//! an [`flexrel_core::dep::Ead`] prescribes for pinned determining values.

use flexrel_algebra::predicate::{CmpOp, Predicate};
use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::axioms::AxiomSystem;
use flexrel_core::dep::DependencySet;
use flexrel_core::tuple::Tuple;
use flexrel_core::typecheck::{analyse_guard, GuardAnalysis, SelectionContext, TypeGuard};
use flexrel_storage::{Catalog, Database, IndexInfo, RelationDef};

use crate::logical::{LogicalPlan, ShapePredicate};

/// A record of one rewrite the optimizer performed, for EXPLAIN output.
#[derive(Clone, Debug, PartialEq)]
pub struct RewriteNote {
    /// The rule that fired (e.g. `"guard-elimination"`).
    pub rule: String,
    /// Human-readable description, including the derivation for
    /// guard-elimination rewrites.
    pub detail: String,
}

impl RewriteNote {
    fn new(rule: &str, detail: impl Into<String>) -> Self {
        RewriteNote {
            rule: rule.to_string(),
            detail: detail.into(),
        }
    }
}

/// Optimizes a plan, returning the rewritten plan and the rewrite notes.
///
/// Runs three phases: the justified rewrites (guard elimination via
/// [`analyse_guard`], variant/join pruning), empty-plan propagation, and
/// the partition-pruning pass that attaches
/// [`ShapePredicate`]s to scans.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> (LogicalPlan, Vec<RewriteNote>) {
    let mut notes = Vec::new();
    let plan = rewrite(plan, catalog, &SelectionContext::none(), &mut notes);
    let plan = simplify_empties(plan, &mut notes);
    let plan = prune_scans(
        plan,
        catalog,
        &AttrSet::empty(),
        &Tuple::empty(),
        &mut notes,
    );
    (plan, notes)
}

/// Optimizes a plan against a live database: runs [`optimize`] and then the
/// access-path pass ([`choose_access_paths`]), which needs the database's
/// index metadata ([`Database::indexes`]) on top of the catalog.
///
/// Prefer this entry point when executing against a [`Database`]; plain
/// [`optimize`] remains for callers that only have a catalog (and for
/// measuring what the justified rewrites alone achieve).
pub fn optimize_with_db(plan: LogicalPlan, db: &Database) -> (LogicalPlan, Vec<RewriteNote>) {
    let (plan, mut notes) = optimize(plan, &db.catalog());
    let plan = choose_access_paths(plan, db, &mut notes);
    (plan, notes)
}

/// The access-path pass: rewrites `Filter(… ∧ A = c ∧ …) ∘ Scan` into an
/// [`LogicalPlan::IndexLookup`] (plus a residual filter for the conjuncts
/// the index does not answer) when the stored relation has an index — auto
/// determinant or user-created secondary — whose key is fully pinned by the
/// filter's top-level equality conjuncts.
///
/// Runs *after* [`optimize`], so the scan already carries the
/// [`ShapePredicate`] pushed down by partition pruning; the predicate moves
/// onto the lookup's `shapes` field and the executor re-applies it per
/// matching rid (via the rid's `ShapeId`), composing index probing with
/// shape pruning instead of losing it.  When several indexes cover the
/// pinned attributes the one with the most distinct keys (the most
/// selective probe) wins.
pub fn choose_access_paths(
    plan: LogicalPlan,
    db: &Database,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = choose_access_paths(*input, db, notes);
            if let LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            } = input
            {
                let pinned = predicate.implied_equalities();
                if let Some(info) = covering_index(db, &relation, &pinned) {
                    let key_value = pinned.project(&info.key);
                    let mut residual =
                        strip_consumed_equalities(&predicate, &info.key, &key_value).simplify();
                    if let Some(q) = qualification {
                        // The scan would have applied its qualification;
                        // the lookup keeps it as part of the residual.
                        residual = residual.and(q).simplify();
                    }
                    notes.push(RewriteNote::new(
                        "access-path",
                        format!(
                            "scan of {} replaced by index lookup on {} = {} \
                             ({} distinct keys over {} entries)",
                            relation, info.key, key_value, info.distinct_keys, info.len
                        ),
                    ));
                    let lookup = LogicalPlan::IndexLookup {
                        relation,
                        key: info.key,
                        key_value,
                        shapes: shape,
                    };
                    return if residual == Predicate::True {
                        lookup
                    } else {
                        lookup.filter(residual)
                    };
                }
                LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Scan {
                        relation,
                        qualification,
                        shape,
                    }),
                    predicate,
                }
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(choose_access_paths(*input, db, notes)),
            attrs,
        },
        LogicalPlan::Guard { input, attrs } => LogicalPlan::Guard {
            input: Box::new(choose_access_paths(*input, db, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => LogicalPlan::Extend {
            input: Box::new(choose_access_paths(*input, db, notes)),
            attr,
            value,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(choose_access_paths(*input, db, notes)),
            group_by,
            aggs,
        },
        LogicalPlan::Join { left, right } => LogicalPlan::Join {
            left: Box::new(choose_access_paths(*left, db, notes)),
            right: Box::new(choose_access_paths(*right, db, notes)),
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| choose_access_paths(p, db, notes))
                .collect(),
        },
        leaf
        @ (LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } | LogicalPlan::Empty) => leaf,
    }
}

/// The most selective stored index whose key is fully pinned by the
/// equality constraints, if any.
fn covering_index(db: &Database, relation: &str, pinned: &Tuple) -> Option<IndexInfo> {
    if pinned.is_empty() {
        return None;
    }
    let pinned_attrs = pinned.attrs();
    db.indexes(relation)
        .ok()?
        .into_iter()
        .filter(|info| !info.key.is_empty() && info.key.is_subset(&pinned_attrs))
        .max_by_key(|info| (info.distinct_keys, info.key.len()))
}

/// Replaces the top-level equality conjuncts the index probe answers
/// (`A = c` with `A` in the key and `c` the probed constant) by `True`; the
/// caller simplifies the remainder into the residual filter.
fn strip_consumed_equalities(p: &Predicate, key: &AttrSet, key_value: &Tuple) -> Predicate {
    match p {
        Predicate::Cmp {
            attr,
            op: CmpOp::Eq,
            value,
        } if key.contains(attr) && key_value.get(attr) == Some(value) => Predicate::True,
        Predicate::And(a, b) => strip_consumed_equalities(a, key, key_value)
            .and(strip_consumed_equalities(b, key, key_value)),
        other => other.clone(),
    }
}

/// The dependencies visible below a plan node: the union of the declared
/// dependency sets of every scanned relation in the subtree.
fn subtree_deps(plan: &LogicalPlan, catalog: &Catalog) -> DependencySet {
    match plan {
        LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexLookup { relation, .. } => catalog
            .get(relation)
            .map(|def| def.deps.clone())
            .unwrap_or_default(),
        // An aggregate's output attributes are new (counts, sums, group
        // keys); the scanned relations' dependencies say nothing about them.
        LogicalPlan::Empty | LogicalPlan::Aggregate { .. } => DependencySet::new(),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. } => subtree_deps(input, catalog),
        LogicalPlan::Join { left, right } => {
            subtree_deps(left, catalog).union(&subtree_deps(right, catalog))
        }
        LogicalPlan::UnionAll { inputs } => inputs.iter().fold(DependencySet::new(), |acc, p| {
            acc.union(&subtree_deps(p, catalog))
        }),
    }
}

/// The selection context established *below* a node: predicates of filters
/// and scan qualifications in the subtree contribute their required
/// attributes and implied equalities.
fn subtree_context(plan: &LogicalPlan) -> SelectionContext {
    fn merge(ctx: SelectionContext, p: &Predicate) -> SelectionContext {
        let mut ctx = ctx.with_referenced(p.required_attrs());
        for (a, v) in p.implied_equalities().iter() {
            ctx = ctx.with_equality(a.clone(), v.clone());
        }
        ctx
    }
    match plan {
        LogicalPlan::Empty => SelectionContext::none(),
        LogicalPlan::Scan { qualification, .. } => match qualification {
            Some(q) => merge(SelectionContext::none(), q),
            None => SelectionContext::none(),
        },
        // An index lookup pins its key attributes to the probe constants:
        // every yielded tuple is defined on `key` and agrees with
        // `key_value`.
        LogicalPlan::IndexLookup { key, key_value, .. } => {
            let mut ctx = SelectionContext::none().with_referenced(key.clone());
            for (a, v) in key_value.iter() {
                ctx = ctx.with_equality(a.clone(), v.clone());
            }
            ctx
        }
        LogicalPlan::Filter { input, predicate } => merge(subtree_context(input), predicate),
        LogicalPlan::Guard { input, attrs } => {
            subtree_context(input).with_referenced(attrs.clone())
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Extend { input, .. } => {
            subtree_context(input)
        }
        LogicalPlan::Join { left, right } => {
            // Both sides' constraints hold for the join result.
            let l = subtree_context(left);
            let r = subtree_context(right);
            let mut ctx = l.with_referenced(r.referenced.clone());
            for (a, v) in r.equalities.iter() {
                ctx = ctx.with_equality(a.clone(), v.clone());
            }
            ctx
        }
        // A union guarantees only what holds on every branch; be
        // conservative and claim nothing.  An aggregate rewrites tuples
        // entirely (group keys + aggregate outputs): every output row is
        // defined on the grouping attributes, but nothing else survives.
        LogicalPlan::UnionAll { .. } => SelectionContext::none(),
        LogicalPlan::Aggregate { group_by, .. } => {
            SelectionContext::none().with_referenced(group_by.clone())
        }
    }
}

/// All equality constraints established by scan qualifications inside a
/// subtree (used for branch pruning).
fn qualification_equalities(plan: &LogicalPlan) -> Tuple {
    match plan {
        LogicalPlan::Scan {
            qualification: Some(q),
            ..
        } => q.implied_equalities(),
        LogicalPlan::IndexLookup { key_value, .. } => key_value.clone(),
        LogicalPlan::Scan { .. } | LogicalPlan::Empty => Tuple::empty(),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. } => qualification_equalities(input),
        LogicalPlan::Join { left, right } => {
            qualification_equalities(left).merged_with(&qualification_equalities(right))
        }
        // Aggregate outputs carry new attributes; the inputs' pinned
        // constants do not survive into them.
        LogicalPlan::UnionAll { .. } | LogicalPlan::Aggregate { .. } => Tuple::empty(),
    }
}

/// Whether two equality constraint sets contradict each other: some shared
/// attribute is pinned to different constants.
fn contradicts(a: &Tuple, b: &Tuple) -> bool {
    a.iter()
        .any(|(attr, v)| b.get(attr).map(|w| w != v).unwrap_or(false))
}

fn rewrite(
    plan: LogicalPlan,
    catalog: &Catalog,
    above: &SelectionContext,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Guard { input, attrs } => {
            let deps = subtree_deps(&input, catalog);
            let below = subtree_context(&input);
            let ctx = merge_contexts(above, &below);
            let guard = TypeGuard::new(attrs.clone());
            match analyse_guard(&deps, &ctx, &guard, AxiomSystem::E) {
                GuardAnalysis::Redundant(derivation) => {
                    notes.push(RewriteNote::new(
                        "guard-elimination",
                        format!(
                            "guard for {} is redundant; justified by:\n{}",
                            attrs, derivation
                        ),
                    ));
                    rewrite(*input, catalog, above, notes)
                }
                GuardAnalysis::Unsatisfiable => {
                    notes.push(RewriteNote::new(
                        "guard-unsatisfiable",
                        format!(
                            "guard for {} can never hold under the selection; branch pruned",
                            attrs
                        ),
                    ));
                    LogicalPlan::Empty
                }
                GuardAnalysis::Necessary => LogicalPlan::Guard {
                    input: Box::new(rewrite(*input, catalog, above, notes)),
                    attrs,
                },
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            // Eliminate redundant / unsatisfiable IsPresent conjuncts inside
            // the predicate itself.  The context for judging a PRESENT
            // conjunct is everything known *besides* the guards themselves:
            // the constraints from above, from below, and from the
            // comparison conjuncts of this very predicate (a guard must not
            // justify itself).
            let deps = subtree_deps(&input, catalog);
            let below = subtree_context(&input);
            let own = context_without_guards(&predicate);
            let ctx_all = merge_contexts(&merge_contexts(above, &below), &own);
            let simplified = simplify_guards_in_predicate(&predicate, &deps, &ctx_all, notes);

            // Branch pruning: if the filter's equalities contradict the
            // qualification of the scans below, the result is empty.
            let filter_eq = simplified.implied_equalities();
            let qual_eq = qualification_equalities(&input);
            if contradicts(&filter_eq, &qual_eq) {
                notes.push(RewriteNote::new(
                    "variant-pruning",
                    format!(
                        "selection {} contradicts the branch qualification {}; branch removed",
                        simplified, qual_eq
                    ),
                ));
                return LogicalPlan::Empty;
            }

            // Push the filter's context downwards (for nested guards and
            // union branches).
            let mut ctx_for_children = above.clone().with_referenced(simplified.required_attrs());
            for (a, v) in simplified.implied_equalities().iter() {
                ctx_for_children = ctx_for_children.with_equality(a.clone(), v.clone());
            }
            let new_input = rewrite(*input, catalog, &ctx_for_children, notes);
            if simplified == Predicate::False {
                notes.push(RewriteNote::new(
                    "constant-folding",
                    "predicate is constant false",
                ));
                return LogicalPlan::Empty;
            }
            if simplified == Predicate::True {
                notes.push(RewriteNote::new(
                    "constant-folding",
                    "predicate is constant true",
                ));
                return new_input;
            }
            LogicalPlan::Filter {
                input: Box::new(new_input),
                predicate: simplified,
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut kept = Vec::new();
            for branch in inputs {
                let qual_eq = qualification_equalities(&branch);
                if contradicts(&above.equalities, &qual_eq) {
                    notes.push(RewriteNote::new(
                        "variant-pruning",
                        format!(
                            "union branch qualified by {} is excluded by the selection constraints {}",
                            qual_eq, above.equalities
                        ),
                    ));
                    continue;
                }
                kept.push(rewrite(branch, catalog, above, notes));
            }
            LogicalPlan::UnionAll { inputs: kept }
        }
        LogicalPlan::Join { left, right } => {
            // If the constraints established above (e.g. a selection on the
            // determining attribute) contradict a side's qualification, the
            // join produces nothing.
            for side in [&left, &right] {
                let qual_eq = qualification_equalities(side);
                if contradicts(&above.equalities, &qual_eq) {
                    notes.push(RewriteNote::new(
                        "join-pruning",
                        format!(
                            "join with a variant qualified by {} is excluded by the selection constraints {}",
                            qual_eq, above.equalities
                        ),
                    ));
                    return LogicalPlan::Empty;
                }
            }
            LogicalPlan::Join {
                left: Box::new(rewrite(*left, catalog, above, notes)),
                right: Box::new(rewrite(*right, catalog, above, notes)),
            }
        }
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, catalog, above, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => LogicalPlan::Extend {
            input: Box::new(rewrite(*input, catalog, above, notes)),
            attr,
            value,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            // Constraints from above refer to the aggregate's *output*
            // attributes; they must not justify rewrites below it.
            input: Box::new(rewrite(*input, catalog, &SelectionContext::none(), notes)),
            group_by,
            aggs,
        },
        leaf
        @ (LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } | LogicalPlan::Empty) => leaf,
    }
}

/// The selection context a predicate establishes through its comparison
/// conjuncts only — `PRESENT(...)` atoms are ignored so that a guard cannot
/// justify its own elimination.
fn context_without_guards(p: &Predicate) -> SelectionContext {
    fn required(p: &Predicate) -> AttrSet {
        match p {
            Predicate::Cmp { attr, .. } => attr.to_set(),
            Predicate::And(a, b) => required(a).union(&required(b)),
            Predicate::Or(a, b) => required(a).intersection(&required(b)),
            _ => AttrSet::empty(),
        }
    }
    fn equalities(p: &Predicate) -> Tuple {
        match p {
            Predicate::Cmp {
                attr,
                op: flexrel_algebra::predicate::CmpOp::Eq,
                value,
            } => Tuple::new().with(attr.clone(), value.clone()),
            Predicate::And(a, b) => equalities(a).merged_with(&equalities(b)),
            _ => Tuple::empty(),
        }
    }
    let mut ctx = SelectionContext::none().with_referenced(required(p));
    for (a, v) in equalities(p).iter() {
        ctx = ctx.with_equality(a.clone(), v.clone());
    }
    ctx
}

fn merge_contexts(a: &SelectionContext, b: &SelectionContext) -> SelectionContext {
    let mut out = a.clone().with_referenced(b.referenced.clone());
    for (attr, v) in b.equalities.iter() {
        out = out.with_equality(attr.clone(), v.clone());
    }
    out
}

/// Replaces redundant `PRESENT(...)` conjuncts by `True` and unsatisfiable
/// ones by `False`, then simplifies.
fn simplify_guards_in_predicate(
    predicate: &Predicate,
    deps: &DependencySet,
    ctx: &SelectionContext,
    notes: &mut Vec<RewriteNote>,
) -> Predicate {
    fn walk(
        p: &Predicate,
        deps: &DependencySet,
        ctx: &SelectionContext,
        notes: &mut Vec<RewriteNote>,
    ) -> Predicate {
        match p {
            Predicate::IsPresent(attrs) => {
                match analyse_guard(deps, ctx, &TypeGuard::new(attrs.clone()), AxiomSystem::E) {
                    GuardAnalysis::Redundant(d) => {
                        notes.push(RewriteNote::new(
                            "guard-elimination",
                            format!("PRESENT({}) is redundant; justified by:\n{}", attrs, d),
                        ));
                        Predicate::True
                    }
                    GuardAnalysis::Unsatisfiable => {
                        notes.push(RewriteNote::new(
                            "guard-unsatisfiable",
                            format!("PRESENT({}) can never hold under the selection", attrs),
                        ));
                        Predicate::False
                    }
                    GuardAnalysis::Necessary => p.clone(),
                }
            }
            Predicate::And(a, b) => walk(a, deps, ctx, notes).and(walk(b, deps, ctx, notes)),
            // Inside disjunctions and negations the conjunction context does
            // not apply; leave them untouched.
            other => other.clone(),
        }
    }
    walk(predicate, deps, ctx, notes).simplify()
}

/// The partition-pruning pass: pushes what the operators *above* a scan
/// guarantee about qualifying tuples — attributes that must be present
/// (selections via [`Predicate::required_attrs`], explicit type guards) and
/// attributes pinned to constants by equality — down into a
/// [`ShapePredicate`] on the scan, so the executor can skip whole heap
/// partitions.
///
/// The context propagates through shape-preserving operators (filters,
/// guards, projections, union branches) and is cut off where tuples gain
/// attributes from elsewhere: an [`LogicalPlan::Extend`] removes its own
/// attribute from the context (the scan's tuples need not carry it), and a
/// join resets the context for both sides (a required attribute may be
/// contributed by the other side).
///
/// Besides pure presence, the pass performs the AD-driven step of §3.1.2 at
/// the storage level: when the selection pins an EAD's determining
/// attributes `X` to constants, Def. 2.1 fixes the exact `Y`-overlap
/// (`attr(t) ∩ Y = Yi`) of every qualifying tuple, so all partitions with a
/// different overlap are excluded — the physical counterpart of the
/// variant pruning the rewrite pass performs on qualified fragments.
fn prune_scans(
    plan: LogicalPlan,
    catalog: &Catalog,
    required: &AttrSet,
    equalities: &Tuple,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let req = required.union(&predicate.required_attrs());
            let eq = equalities.merged_with(&predicate.implied_equalities());
            LogicalPlan::Filter {
                input: Box::new(prune_scans(*input, catalog, &req, &eq, notes)),
                predicate,
            }
        }
        LogicalPlan::Guard { input, attrs } => {
            let req = required.union(&attrs);
            LogicalPlan::Guard {
                input: Box::new(prune_scans(*input, catalog, &req, equalities, notes)),
                attrs,
            }
        }
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(prune_scans(*input, catalog, required, equalities, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => {
            // The extended attribute is present in every output tuple no
            // matter what the input looked like; constraints on it must not
            // reach the scan.
            let mut req = required.clone();
            req.remove(&Attr::new(&attr));
            let mut eq = equalities.clone();
            eq.remove(&Attr::new(&attr));
            LogicalPlan::Extend {
                input: Box::new(prune_scans(*input, catalog, &req, &eq, notes)),
                attr,
                value,
            }
        }
        LogicalPlan::Join { left, right } => LogicalPlan::Join {
            // A join merges tuples: an attribute required above may be
            // supplied by either side, so nothing can be pushed across.
            left: Box::new(prune_scans(
                *left,
                catalog,
                &AttrSet::empty(),
                &Tuple::empty(),
                notes,
            )),
            right: Box::new(prune_scans(
                *right,
                catalog,
                &AttrSet::empty(),
                &Tuple::empty(),
                notes,
            )),
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| prune_scans(p, catalog, required, equalities, notes))
                .collect(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Grouping is a type guard: a row not defined on all of
            // `group_by` belongs to no group, so the grouping attributes
            // are required below.  Context from above refers to the
            // aggregate's output attributes and is dropped.
            LogicalPlan::Aggregate {
                input: Box::new(prune_scans(
                    *input,
                    catalog,
                    &group_by,
                    &Tuple::empty(),
                    notes,
                )),
                group_by,
                aggs,
            }
        }
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => {
            // The scan's own qualification holds for every tuple it yields,
            // so it contributes to the shape predicate as well.
            let mut req = required.clone();
            let mut eq = equalities.clone();
            if let Some(q) = &qualification {
                req.extend_with(&q.required_attrs());
                eq = eq.merged_with(&q.implied_equalities());
            }
            let pred = catalog
                .get(&relation)
                .ok()
                .and_then(|def| shape_predicate_for(def, &req, &eq));
            if let Some(p) = &pred {
                notes.push(RewriteNote::new(
                    "partition-pruning",
                    format!("scan of {} restricted to partitions with {}", relation, p),
                ));
            }
            // A shape predicate already on the scan (hand-built plans) is
            // result-affecting and must be preserved: conjoin rather than
            // replace.
            let shape = match (pred, shape) {
                (Some(mut p), Some(existing)) => {
                    p.required.extend_with(&existing.required);
                    p.regions.extend(existing.regions);
                    Some(p)
                }
                (p, existing) => p.or(existing),
            };
            LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            }
        }
        LogicalPlan::IndexLookup {
            relation,
            key,
            key_value,
            shapes,
        } => {
            // The lookup's own key equalities hold for every yielded tuple,
            // exactly like a scan qualification: they contribute required
            // attributes and pinned EAD determinants to the shape predicate.
            let req = required.union(&key);
            let eq = equalities.merged_with(&key_value);
            let pred = catalog
                .get(&relation)
                .ok()
                .and_then(|def| shape_predicate_for(def, &req, &eq));
            if let Some(p) = &pred {
                notes.push(RewriteNote::new(
                    "partition-pruning",
                    format!(
                        "index lookup on {} restricted to partitions with {}",
                        relation, p
                    ),
                ));
            }
            let shapes = match (pred, shapes) {
                (Some(mut p), Some(existing)) => {
                    p.required.extend_with(&existing.required);
                    p.regions.extend(existing.regions);
                    Some(p)
                }
                (p, existing) => p.or(existing),
            };
            LogicalPlan::IndexLookup {
                relation,
                key,
                key_value,
                shapes,
            }
        }
        leaf @ LogicalPlan::Empty => leaf,
    }
}

/// Builds the shape predicate for one scan from the accumulated context, or
/// `None` when nothing can be pruned.
fn shape_predicate_for(
    def: &RelationDef,
    required: &AttrSet,
    equalities: &Tuple,
) -> Option<ShapePredicate> {
    let mut regions: Vec<(AttrSet, AttrSet)> = Vec::new();
    let pinned = equalities.attrs();
    for ead in def.deps.eads() {
        if ead.lhs().is_subset(&pinned) {
            let x_value = equalities.project(ead.lhs());
            let yi = ead
                .variant_for(&x_value)
                .map(|(_, v)| v.attrs.clone())
                .unwrap_or_else(AttrSet::empty);
            regions.push((ead.rhs().clone(), yi));
        }
    }
    let pred = ShapePredicate {
        required: required.clone(),
        regions,
    };
    if pred.is_trivial() {
        None
    } else {
        Some(pred)
    }
}

/// Final cleanup: empty inputs propagate upwards.
fn simplify_empties(plan: LogicalPlan, notes: &mut Vec<RewriteNote>) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project { input, attrs } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Project {
                    input: Box::new(input),
                    attrs,
                }
            }
        }
        LogicalPlan::Guard { input, attrs } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Guard {
                    input: Box::new(input),
                    attrs,
                }
            }
        }
        LogicalPlan::Extend { input, attr, value } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Extend {
                    input: Box::new(input),
                    attr,
                    value,
                }
            }
        }
        LogicalPlan::Join { left, right } => {
            let left = simplify_empties(*left, notes);
            let right = simplify_empties(*right, notes);
            if matches!(left, LogicalPlan::Empty) || matches!(right, LogicalPlan::Empty) {
                notes.push(RewriteNote::new(
                    "empty-propagation",
                    "join with an empty input removed",
                ));
                LogicalPlan::Empty
            } else {
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let kept: Vec<LogicalPlan> = inputs
                .into_iter()
                .map(|p| simplify_empties(p, notes))
                .filter(|p| !matches!(p, LogicalPlan::Empty))
                .collect();
            match kept.len() {
                0 => LogicalPlan::Empty,
                1 => kept.into_iter().next().expect("one element"),
                _ => LogicalPlan::UnionAll { inputs: kept },
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = simplify_empties(*input, notes);
            // A *grouped* aggregate over nothing has no groups; a global
            // aggregate over nothing still emits its single row
            // (`COUNT(*) = 0`), so the node must survive an empty input.
            if matches!(input, LogicalPlan::Empty) && !group_by.is_empty() {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Aggregate {
                    input: Box::new(input),
                    group_by,
                    aggs,
                }
            }
        }
        leaf => leaf,
    }
}

/// The attribute set `AttrSet` re-exported for plan construction ergonomics
/// in downstream crates (benches build qualified-fragment plans by hand).
pub type Attrs = AttrSet;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::planner::plan_query;
    use flexrel_core::value::Value;
    use flexrel_storage::{Catalog, RelationDef};
    use flexrel_workload::employee_relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        c
    }

    fn planned(frql: &str) -> LogicalPlan {
        plan_query(&parse(frql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn example4_guard_is_eliminated_with_justification() {
        let plan = planned(
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
        );
        assert_eq!(plan.guard_count(), 1);
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 0, "the guard must be removed");
        let note = notes
            .iter()
            .find(|n| n.rule == "guard-elimination")
            .unwrap();
        assert!(
            note.detail.contains("A4 (left augmentation)") || note.detail.contains("AF2"),
            "the note must carry the derivation: {}",
            note.detail
        );
    }

    #[test]
    fn guard_for_excluded_variant_prunes_the_query() {
        let plan =
            planned("SELECT * FROM employee WHERE jobtype = 'secretary' GUARD sales-commission");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        assert!(notes.iter().any(|n| n.rule == "guard-unsatisfiable"));
    }

    #[test]
    fn necessary_guard_is_kept() {
        let plan = planned("SELECT * FROM employee WHERE salary > 5000 GUARD typing-speed");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 1);
        assert!(notes.iter().all(|n| n.rule != "guard-elimination"));
    }

    #[test]
    fn present_conjuncts_are_simplified_too() {
        let plan =
            planned("SELECT * FROM employee WHERE jobtype = 'secretary' AND PRESENT(typing-speed)");
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(notes.iter().any(|n| n.rule == "guard-elimination"));
        // The remaining filter no longer mentions the PRESENT conjunct.
        let s = optimized.to_string();
        assert!(!s.contains("present"));
        assert!(s.contains("jobtype = 'secretary'"));

        let plan =
            planned("SELECT * FROM employee WHERE jobtype = 'secretary' AND PRESENT(products)");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        assert!(notes.iter().any(|n| n.rule == "guard-unsatisfiable"));
    }

    #[test]
    fn union_branches_with_contradicting_qualification_are_pruned() {
        // Horizontal decomposition: three qualified fragments; a selection on
        // jobtype must keep only the matching fragment.
        let branches = vec![
            LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag("secretary")),
            ),
            LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag("software engineer")),
            ),
            LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag("salesman")),
            ),
        ];
        let plan = LogicalPlan::UnionAll { inputs: branches }.filter(
            Predicate::eq("jobtype", Value::tag("salesman")).and(Predicate::gt("salary", 1000)),
        );
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(
            notes.iter().filter(|n| n.rule == "variant-pruning").count(),
            2,
            "two of the three fragments are excluded"
        );
        // The union collapses to the single surviving branch.
        let s = optimized.to_string();
        assert!(!s.contains("UnionAll"));
        assert!(s.contains("qualified by jobtype = 'salesman'"));
    }

    #[test]
    fn joins_with_excluded_variants_are_pruned() {
        // Vertical decomposition: master ⋈ detail_i where detail_i is
        // qualified by the variant's jobtype; selecting secretaries excludes
        // the salesman detail join.
        let join_with = |tag: &str| {
            LogicalPlan::scan("employee").join(LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag(tag)),
            ))
        };
        let plan = LogicalPlan::UnionAll {
            inputs: vec![join_with("secretary"), join_with("salesman")],
        }
        .filter(Predicate::eq("jobtype", Value::tag("secretary")));
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(notes
            .iter()
            .any(|n| n.rule == "variant-pruning" || n.rule == "join-pruning"));
        assert_eq!(
            optimized.join_count(),
            1,
            "only the secretary join survives"
        );
    }

    #[test]
    fn partition_pruning_pushes_required_attrs_and_ead_regions() {
        // Equality on the EAD determinant → exact-overlap region constraint.
        let plan = planned("SELECT * FROM employee WHERE jobtype = 'secretary' AND salary > 1000");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.pruned_scan_count(), 1);
        let note = notes
            .iter()
            .find(|n| n.rule == "partition-pruning")
            .unwrap();
        assert!(
            note.detail.contains("shape ⊇") && note.detail.contains("shape ∩"),
            "{}",
            note.detail
        );
        // A kept (necessary) guard contributes its attributes too.
        let plan = planned("SELECT * FROM employee WHERE salary > 5000 GUARD typing-speed");
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 1);
        assert_eq!(optimized.pruned_scan_count(), 1);
        let s = optimized.to_string();
        assert!(s.contains("typing-speed"), "{}", s);
    }

    #[test]
    fn partition_pruning_preserves_hand_built_shape_predicates() {
        use crate::logical::ShapePredicate;
        use flexrel_core::attrs;
        // A hand-built scan restricted to typing-speed partitions is
        // result-affecting; optimizing a filter on top must conjoin, not
        // replace, the restriction.
        let plan = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        }
        .filter(Predicate::gt("salary", 0));
        let (optimized, _) = optimize(plan, &catalog());
        let LogicalPlan::Filter { input, .. } = optimized else {
            panic!("filter must survive");
        };
        let LogicalPlan::Scan {
            shape: Some(sp), ..
        } = *input
        else {
            panic!("scan must keep a shape predicate");
        };
        assert!(
            sp.required.is_superset(&attrs!["salary", "typing-speed"]),
            "hand-built restriction merged with the pushed context: {}",
            sp
        );
    }

    #[test]
    fn partition_pruning_stops_at_extend_and_join() {
        // A filter on the extended attribute must not constrain the scan:
        // the attribute exists on every extended tuple regardless of shape.
        let plan = LogicalPlan::Extend {
            input: Box::new(LogicalPlan::scan("employee")),
            attr: "source".into(),
            value: Value::tag("hr"),
        }
        .filter(Predicate::eq("source", Value::tag("hr")));
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(
            optimized.pruned_scan_count(),
            0,
            "extend cuts the context off: {}",
            optimized
        );

        // A filter above a join may be satisfied by either side; nothing is
        // pushed across, but each side keeps its own subtree context.
        let plan = LogicalPlan::scan("employee")
            .join(LogicalPlan::scan("employee"))
            .filter(Predicate::gt("salary", 1000));
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized.pruned_scan_count(), 0, "{}", optimized);
    }

    fn database(n: usize) -> Database {
        use flexrel_workload::{generate_employees, EmployeeConfig};
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    #[test]
    fn access_path_pass_rewrites_covered_equality_filters() {
        let db = database(50);
        let plan = planned("SELECT * FROM employee WHERE empno = 3 AND salary > 0");
        let (optimized, notes) = optimize_with_db(plan, &db);
        assert_eq!(optimized.index_lookup_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "access-path"));
        let s = optimized.to_string();
        assert!(s.contains("IndexLookup employee"), "{}", s);
        assert!(s.contains("salary > 0"), "residual filter kept: {}", s);
        assert!(!s.contains("empno = 3"), "consumed equality removed: {}", s);
    }

    #[test]
    fn access_path_pass_needs_a_covering_index() {
        let db = database(30);
        // No index on name: the filter stays a filtered scan.
        let plan = planned("SELECT * FROM employee WHERE name = 'emp3'");
        let (optimized, _) = optimize_with_db(plan.clone(), &db);
        assert_eq!(optimized.index_lookup_count(), 0, "{}", optimized);
        // A user-created secondary index enables the rewrite.
        db.create_index("employee", flexrel_core::attrs!["name"])
            .unwrap();
        let (optimized, notes) = optimize_with_db(plan, &db);
        assert_eq!(optimized.index_lookup_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "access-path"));
    }

    #[test]
    fn index_lookup_composes_with_partition_pruning() {
        // The equality on the EAD determinant both picks the jobtype index
        // and pins the variant region; the shape predicate pushed by
        // prune_scans must survive on the lookup node.
        let db = database(60);
        let plan = planned("SELECT * FROM employee WHERE jobtype = 'secretary'");
        let (optimized, _) = optimize_with_db(plan, &db);
        let LogicalPlan::IndexLookup {
            shapes: Some(sp),
            key,
            ..
        } = optimized
        else {
            panic!("expected a bare index lookup");
        };
        assert_eq!(key, flexrel_core::attrs!["jobtype"]);
        assert!(!sp.is_trivial());
        assert!(
            sp.regions.iter().any(|(_, yi)| !yi.is_empty()),
            "the pinned determinant fixes the variant region: {}",
            sp
        );
    }

    #[test]
    fn aggregation_pushes_group_attrs_and_survives_empty_inputs() {
        // Grouping attributes are required below the aggregate, so the scan
        // gets a shape predicate.
        let plan = planned("SELECT typing-speed, COUNT(*) FROM employee GROUP BY typing-speed");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.pruned_scan_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "partition-pruning"));

        // A global aggregate over a proven-empty input keeps its node (it
        // still emits COUNT(*) = 0); a grouped one collapses.
        let plan = LogicalPlan::Empty.aggregate(
            AttrSet::empty(),
            vec![crate::logical::AggExpr::new(
                crate::logical::AggFunc::Count,
                None,
            )],
        );
        let (optimized, _) = optimize(plan, &catalog());
        assert!(matches!(optimized, LogicalPlan::Aggregate { .. }));
        let plan = LogicalPlan::Empty.aggregate(
            flexrel_core::attrs!["jobtype"],
            vec![crate::logical::AggExpr::new(
                crate::logical::AggFunc::Count,
                None,
            )],
        );
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
    }

    #[test]
    fn constant_false_filter_collapses_to_empty() {
        let plan = LogicalPlan::scan("employee").filter(Predicate::False);
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        let plan = LogicalPlan::scan("employee").filter(Predicate::True);
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::scan("employee"));
    }

    #[test]
    fn empty_propagation_through_joins_and_unions() {
        let plan = LogicalPlan::Empty.join(LogicalPlan::scan("employee"));
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        assert!(notes.iter().any(|n| n.rule == "empty-propagation"));

        let plan = LogicalPlan::UnionAll {
            inputs: vec![LogicalPlan::Empty, LogicalPlan::scan("employee")],
        };
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::scan("employee"));
    }
}
