//! FRQL: a small query language for flexible relations.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query      := SELECT select_list FROM ident (JOIN ident)* [WHERE predicate]
//!               [GUARD attrlist] [GROUP BY attrlist]
//! select_list := '*' | select_item (',' select_item)*
//! select_item := ident | aggfn '(' ('*' | ident) ')'
//! aggfn      := COUNT | SUM | MIN | MAX          (COUNT '*' only)
//! attrlist   := ident (',' ident)*
//! predicate  := disjunct (OR disjunct)*
//! disjunct   := conjunct (AND conjunct)*
//! conjunct   := NOT conjunct | '(' predicate ')' | PRESENT '(' attrlist ')' | comparison
//! comparison := ident op literal
//! op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! literal    := integer | float | 'tag' | "string" | TRUE | FALSE
//! ```
//!
//! Attribute names may contain letters, digits, `_` and `-` (the paper's
//! attribute names such as `typing-speed` parse as single identifiers).
//! The aggregate function names are *not* reserved: `count` is an aggregate
//! only when followed by `(`, so attributes named `count` or `min` keep
//! parsing as identifiers.

use flexrel_algebra::predicate::{CmpOp, Predicate};
use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::error::{CoreError, Result};
use flexrel_core::value::Value;

use crate::logical::{AggExpr, AggFunc};

/// A parsed FRQL query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Whether the query was prefixed with `EXPLAIN`: the caller should
    /// render the optimized plan
    /// ([`crate::optimizer::PlanExplain`]) instead of executing it.
    pub explain: bool,
    /// The relation named in `FROM`.
    pub relation: String,
    /// Relations named in `JOIN` clauses, in source order.  Each joins
    /// naturally (on the common attributes) with the accumulated result to
    /// its left; empty for a single-relation query.
    pub joins: Vec<String>,
    /// The projection attribute list; `None` means `*`.
    pub projection: Option<AttrSet>,
    /// The `WHERE` predicate, if any.
    pub predicate: Option<Predicate>,
    /// The `GUARD` attribute list, if any (an explicit retrieval-side type
    /// guard).
    pub guard: Option<AttrSet>,
    /// Aggregate expressions of the select list, in source order.  Empty
    /// for a plain (non-aggregating) query.
    pub aggregates: Vec<AggExpr>,
    /// The `GROUP BY` attribute list, if any.  Only meaningful together
    /// with `aggregates`; the planner rejects it otherwise.
    pub group_by: Option<AttrSet>,
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Tag(String),
    Str(String),
    Symbol(String),
    Keyword(String),
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "JOIN", "WHERE", "GUARD", "AND", "OR", "NOT", "PRESENT", "TRUE", "FALSE",
    "GROUP", "BY", "EXPLAIN",
];

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' || c == '"' {
            let quote = c;
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != quote {
                s.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() {
                return Err(CoreError::Invalid("unterminated string literal".into()));
            }
            i += 1;
            tokens.push(if quote == '\'' {
                Token::Tag(s)
            } else {
                Token::Str(s)
            });
        } else if c.is_ascii_digit()
            || (c == '-'
                && chars
                    .get(i + 1)
                    .map(|d| d.is_ascii_digit())
                    .unwrap_or(false)
                && matches!(
                    tokens.last(),
                    None | Some(Token::Symbol(_)) | Some(Token::Keyword(_))
                ))
        {
            let mut s = String::new();
            s.push(c);
            i += 1;
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    is_float = true;
                }
                s.push(chars[i]);
                i += 1;
            }
            if is_float {
                tokens.push(Token::Float(s.parse().map_err(|_| {
                    CoreError::Invalid(format!("bad float literal {}", s))
                })?));
            } else {
                tokens.push(Token::Int(s.parse().map_err(|_| {
                    CoreError::Invalid(format!("bad integer literal {}", s))
                })?));
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len() && is_ident_char(chars[i]) {
                s.push(chars[i]);
                i += 1;
            }
            let upper = s.to_ascii_uppercase();
            if KEYWORDS.contains(&upper.as_str()) {
                tokens.push(Token::Keyword(upper));
            } else {
                tokens.push(Token::Ident(s));
            }
        } else {
            // Symbols: multi-char operators first.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
                tokens.push(Token::Symbol(two));
                i += 2;
            } else {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(CoreError::Invalid(format!(
                "expected {}, found {:?}",
                kw, other
            ))),
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(CoreError::Invalid(format!(
                "expected identifier, found {:?}",
                other
            ))),
        }
    }

    fn attr_list(&mut self) -> Result<AttrSet> {
        let mut out = AttrSet::empty();
        out.insert(self.ident()?.as_str());
        while self.accept_symbol(",") {
            out.insert(self.ident()?.as_str());
        }
        Ok(out)
    }

    /// An identifier spelling an aggregate function *followed by `(`* —
    /// the lookahead that keeps `count`/`min` usable as attribute names.
    fn peek_agg_func(&self) -> Option<AggFunc> {
        let Some(Token::Ident(s)) = self.peek() else {
            return None;
        };
        let func = match s.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        };
        match self.tokens.get(self.pos + 1) {
            Some(Token::Symbol(sym)) if sym == "(" => Some(func),
            _ => None,
        }
    }

    /// One select-list item: a plain attribute or an aggregate call.
    fn select_item(&mut self, attrs: &mut AttrSet, aggs: &mut Vec<AggExpr>) -> Result<()> {
        if let Some(func) = self.peek_agg_func() {
            self.pos += 2; // the function name and its `(`
            let input = if self.accept_symbol("*") {
                if func != AggFunc::Count {
                    return Err(CoreError::Invalid(format!(
                        "{}(*) is not a thing; only COUNT(*) takes *",
                        func.name()
                    )));
                }
                None
            } else {
                Some(Attr::new(self.ident()?))
            };
            if !self.accept_symbol(")") {
                return Err(CoreError::Invalid(format!(
                    "expected ) after {} argument",
                    func.name()
                )));
            }
            aggs.push(AggExpr::new(func, input));
        } else {
            attrs.insert(self.ident()?.as_str());
        }
        Ok(())
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Tag(s)) => Ok(Value::tag(s)),
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Value::Bool(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Value::Bool(false)),
            other => Err(CoreError::Invalid(format!(
                "expected literal, found {:?}",
                other
            ))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut left = self.conjunction()?;
        while self.accept_keyword("OR") {
            let right = self.conjunction()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut left = self.atom()?;
        while self.accept_keyword("AND") {
            let right = self.atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Predicate> {
        if self.accept_keyword("NOT") {
            return Ok(self.atom()?.negate());
        }
        if self.accept_keyword("TRUE") {
            return Ok(Predicate::True);
        }
        if self.accept_keyword("FALSE") {
            return Ok(Predicate::False);
        }
        if self.accept_keyword("PRESENT") {
            if !self.accept_symbol("(") {
                return Err(CoreError::Invalid("expected ( after PRESENT".into()));
            }
            let attrs = self.attr_list()?;
            if !self.accept_symbol(")") {
                return Err(CoreError::Invalid("expected ) after PRESENT list".into()));
            }
            return Ok(Predicate::present(attrs));
        }
        if self.accept_symbol("(") {
            let p = self.predicate()?;
            if !self.accept_symbol(")") {
                return Err(CoreError::Invalid("expected )".into()));
            }
            return Ok(p);
        }
        // comparison
        let attr = self.ident()?;
        let op = match self.next() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => CmpOp::Eq,
                "<>" | "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(CoreError::Invalid(format!("unknown operator {}", other))),
            },
            other => {
                return Err(CoreError::Invalid(format!(
                    "expected operator, found {:?}",
                    other
                )))
            }
        };
        let value = self.literal()?;
        Ok(Predicate::Cmp {
            attr: attr.as_str().into(),
            op,
            value,
        })
    }
}

/// Parses an FRQL query.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain = p.accept_keyword("EXPLAIN");
    p.expect_keyword("SELECT")?;
    let mut aggregates = Vec::new();
    let projection = if p.accept_symbol("*") {
        None
    } else {
        let mut attrs = AttrSet::empty();
        p.select_item(&mut attrs, &mut aggregates)?;
        while p.accept_symbol(",") {
            p.select_item(&mut attrs, &mut aggregates)?;
        }
        if attrs.is_empty() && !aggregates.is_empty() {
            // A pure-aggregate select list: no projection to apply.
            None
        } else {
            Some(attrs)
        }
    };
    p.expect_keyword("FROM")?;
    let relation = p.ident()?;
    let mut joins = Vec::new();
    while p.accept_keyword("JOIN") {
        joins.push(p.ident()?);
    }
    let predicate = if p.accept_keyword("WHERE") {
        Some(p.predicate()?)
    } else {
        None
    };
    let guard = if p.accept_keyword("GUARD") {
        Some(p.attr_list()?)
    } else {
        None
    };
    let group_by = if p.accept_keyword("GROUP") {
        p.expect_keyword("BY")?;
        Some(p.attr_list()?)
    } else {
        None
    };
    if let Some(tok) = p.peek() {
        return Err(CoreError::Invalid(format!(
            "unexpected trailing token {:?}",
            tok
        )));
    }
    Ok(Query {
        explain,
        relation,
        joins,
        projection,
        predicate,
        guard,
        aggregates,
        group_by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;

    #[test]
    fn parses_an_explain_prefix() {
        let q = parse("EXPLAIN SELECT * FROM employee WHERE salary > 5000").unwrap();
        assert!(q.explain);
        assert_eq!(q.relation, "employee");
        let q = parse("SELECT * FROM employee").unwrap();
        assert!(!q.explain);
    }

    #[test]
    fn parses_the_example4_query() {
        let q = parse(
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
        )
        .unwrap();
        assert_eq!(q.relation, "employee");
        assert_eq!(q.projection, None);
        assert_eq!(q.guard, Some(attrs!["typing-speed"]));
        let p = q.predicate.unwrap();
        assert_eq!(p.to_string(), "(salary > 5000 AND jobtype = 'secretary')");
    }

    #[test]
    fn parses_join_clauses_in_order() {
        let q = parse("SELECT id, label FROM wide JOIN kinds WHERE id = 7").unwrap();
        assert_eq!(q.relation, "wide");
        assert_eq!(q.joins, vec!["kinds".to_string()]);
        let q = parse("SELECT * FROM a JOIN b JOIN c").unwrap();
        assert_eq!(q.joins, vec!["b".to_string(), "c".to_string()]);
        // JOIN is a keyword now, so it cannot appear where a relation
        // identifier is required.
        assert!(parse("SELECT * FROM JOIN").is_err());
        assert!(parse("SELECT * FROM a JOIN").is_err());
        let q = parse("SELECT * FROM wide").unwrap();
        assert!(q.joins.is_empty());
    }

    #[test]
    fn parses_projection_lists_and_hyphenated_attrs() {
        let q = parse("SELECT empno, typing-speed, foreign-languages FROM employee").unwrap();
        assert_eq!(
            q.projection,
            Some(attrs!["empno", "typing-speed", "foreign-languages"])
        );
        assert!(q.predicate.is_none());
        assert!(q.guard.is_none());
    }

    #[test]
    fn parses_boolean_structure_and_present() {
        let q =
            parse("SELECT * FROM r WHERE (a = 1 OR b = 2) AND NOT PRESENT(c, d) AND flag = TRUE")
                .unwrap();
        let p = q.predicate.unwrap();
        let s = p.to_string();
        assert!(s.contains("OR"));
        assert!(s.contains("NOT"));
        assert!(s.contains("present({c, d})"));
        assert!(s.contains("flag = true"));
    }

    #[test]
    fn parses_all_comparison_operators_and_literals() {
        for (op, txt) in [
            ("=", "="),
            ("<>", "<>"),
            ("!=", "<>"),
            ("<", "<"),
            ("<=", "<="),
            (">", ">"),
            (">=", ">="),
        ] {
            let q = parse(&format!("SELECT * FROM r WHERE x {} 3", op)).unwrap();
            assert!(q.predicate.unwrap().to_string().contains(txt));
        }
        let q = parse("SELECT * FROM r WHERE x = -4").unwrap();
        assert!(q.predicate.unwrap().to_string().contains("-4"));
        let q = parse("SELECT * FROM r WHERE x = 2.5 AND y = \"abc\"").unwrap();
        assert!(q.predicate.unwrap().to_string().contains("2.5"));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("FROM employee").is_err());
        assert!(parse("SELECT * employee").is_err());
        assert!(parse("SELECT * FROM employee WHERE").is_err());
        assert!(parse("SELECT * FROM employee WHERE x >").is_err());
        assert!(parse("SELECT * FROM employee WHERE x > 1 trailing").is_err());
        assert!(parse("SELECT * FROM employee WHERE x ~ 1").is_err());
        assert!(parse("SELECT * FROM e WHERE s = 'unterminated").is_err());
        assert!(parse("SELECT * FROM e WHERE PRESENT a").is_err());
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let q =
            parse("SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM employee").unwrap();
        assert_eq!(q.projection, None);
        assert_eq!(q.group_by, None);
        assert_eq!(q.aggregates.len(), 4);
        assert_eq!(q.aggregates[0], AggExpr::new(AggFunc::Count, None));
        assert_eq!(
            q.aggregates[1],
            AggExpr::new(AggFunc::Sum, Some(Attr::new("salary")))
        );
        assert_eq!(q.aggregates[1].output.name(), "sum-salary");

        let q = parse("SELECT kind, count(*) FROM wide WHERE id >= 10 GROUP BY kind").unwrap();
        assert_eq!(q.projection, Some(attrs!["kind"]));
        assert_eq!(q.group_by, Some(attrs!["kind"]));
        assert_eq!(q.aggregates, vec![AggExpr::new(AggFunc::Count, None)]);
        assert!(q.predicate.is_some());
    }

    #[test]
    fn aggregate_names_stay_usable_as_attributes() {
        // `count`/`min`/`sum` without a following `(` are plain identifiers.
        let q = parse("SELECT count, min FROM r WHERE sum = 1").unwrap();
        assert_eq!(q.projection, Some(attrs!["count", "min"]));
        assert!(q.aggregates.is_empty());
    }

    #[test]
    fn rejects_malformed_aggregates() {
        assert!(parse("SELECT SUM(*) FROM r").is_err(), "only COUNT takes *");
        assert!(parse("SELECT COUNT( FROM r").is_err());
        assert!(parse("SELECT COUNT(x FROM r").is_err());
        assert!(parse("SELECT COUNT(*) FROM r GROUP kind").is_err());
        assert!(parse("SELECT COUNT(*) FROM r GROUP BY").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("select empno from employee where salary >= 100 guard products").unwrap();
        assert_eq!(q.relation, "employee");
        assert_eq!(q.projection, Some(attrs!["empno"]));
        assert_eq!(q.guard, Some(attrs!["products"]));
    }
}
