//! The rule-based optimizer.
//!
//! Every rewrite is *justified*: redundant type guards are removed only when
//! the axiom system ([`flexrel_core::axioms::AxiomSystem::E`], applied via
//! [`flexrel_core::typecheck::analyse_guard`]) derives the corresponding
//! attribute dependency from the declared dependencies (Example 4); branches
//! and joins are pruned only when their qualification provably contradicts
//! the query's equality constraints on the determining attributes (§3.1.2,
//! qualified relations); and scans are restricted to the heap partitions
//! whose shape can satisfy the selection — using the exact variant overlap
//! an [`flexrel_core::dep::Ead`] prescribes for pinned determining values.
//!
//! ## Structure (optimizer v2)
//!
//! The optimizer is a **multi-pass pipeline** over a small rule framework:
//!
//! * [`Rewrite`] — one rule: a named plan → plan transformation that records
//!   what it did as [`RewriteNote`]s.
//! * [`Pipeline`] — runs a rule list to a **fixpoint** (plans are compared
//!   structurally between rounds), so rules can feed each other: the
//!   semantic EAD simplification folds a predicate to `false`, and the
//!   classic constant-folding rule collapses the filter on the next round.
//! * [`PassContext`] — what rules see: the catalog, optionally the live
//!   database, and a lazily built [`SemanticFacts`] cache per relation (the
//!   closure-index view of the declared dependencies).
//!
//! The rules themselves live in submodules: [`mod@classic`] carries the
//! original justified rewrites (guard analysis, variant/join pruning,
//! constant folding, empty propagation, partition pruning, access paths),
//! [`mod@semantic`] the dependency-derived rewrites (join elimination,
//! group-by elimination, mandatory-guard elimination, EAD predicate
//! simplification), and [`mod@cost`] the statistics-backed join ordering.
//! [`mod@explain`] renders optimized plans with estimates and the notes of
//! the rules that fired.
//!
//! Two passes intentionally stay *outside* the fixpoint: partition pruning
//! runs once at the end (it decorates scans with
//! [`ShapePredicate`](crate::logical::ShapePredicate)s and
//! would otherwise conjoin the same regions repeatedly), and the
//! access-path pass runs last because index lookups are physical.

pub mod classic;
pub mod cost;
pub mod explain;
pub mod semantic;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use flexrel_core::attr::AttrSet;
use flexrel_core::facts::SemanticFacts;
use flexrel_core::tuple::Tuple;
use flexrel_core::typecheck::SelectionContext;
use flexrel_storage::{Catalog, Database};

use crate::logical::LogicalPlan;

pub use classic::choose_access_paths;
pub use explain::{explain_query, PlanExplain};

/// A record of one rewrite the optimizer performed, for EXPLAIN output.
#[derive(Clone, Debug, PartialEq)]
pub struct RewriteNote {
    /// The rule that fired (e.g. `"guard-elimination"`).
    pub rule: String,
    /// Human-readable description, including the derivation for
    /// guard-elimination rewrites.
    pub detail: String,
}

impl RewriteNote {
    pub(crate) fn new(rule: &str, detail: impl Into<String>) -> Self {
        RewriteNote {
            rule: rule.to_string(),
            detail: detail.into(),
        }
    }
}

/// What a [`Rewrite`] rule gets to see: the catalog, optionally the live
/// database (for statistics-backed rules), and a lazily built
/// [`SemanticFacts`] cache per relation.
pub struct PassContext<'a> {
    catalog: &'a Catalog,
    db: Option<&'a Database>,
    facts: RefCell<HashMap<String, Option<Rc<SemanticFacts>>>>,
}

impl<'a> PassContext<'a> {
    /// A context over a catalog only (no statistics available).
    pub fn new(catalog: &'a Catalog) -> Self {
        PassContext {
            catalog,
            db: None,
            facts: RefCell::new(HashMap::new()),
        }
    }

    /// A context over a live database: rules may additionally consult
    /// indexes and table statistics.
    pub fn with_db(catalog: &'a Catalog, db: &'a Database) -> Self {
        PassContext {
            catalog,
            db: Some(db),
            facts: RefCell::new(HashMap::new()),
        }
    }

    /// The catalog the plan is compiled against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The live database, when optimizing for execution.
    pub fn db(&self) -> Option<&'a Database> {
        self.db
    }

    /// The semantic facts (closure index, mandatory attributes, EAD
    /// variants) for a relation, built on first use and cached for the
    /// whole pipeline run.  `None` for unknown relations.
    pub fn facts(&self, relation: &str) -> Option<Rc<SemanticFacts>> {
        if let Some(cached) = self.facts.borrow().get(relation) {
            return cached.clone();
        }
        let built = self
            .catalog
            .get(relation)
            .ok()
            .map(|def| Rc::new(SemanticFacts::new(&def.scheme, &def.deps)));
        self.facts
            .borrow_mut()
            .insert(relation.to_string(), built.clone());
        built
    }
}

/// One optimizer rule: a named plan transformation.
///
/// A rule must be **note-safe**: it pushes a [`RewriteNote`] only when it
/// actually changes the plan, so running it again on its own output inside
/// the [`Pipeline`] fixpoint neither loops nor duplicates notes.
pub trait Rewrite {
    /// The rule's name, used in progress notes and EXPLAIN output.
    fn name(&self) -> &'static str;
    /// Applies the rule, recording what it did.
    fn apply(
        &self,
        plan: LogicalPlan,
        ctx: &PassContext<'_>,
        notes: &mut Vec<RewriteNote>,
    ) -> LogicalPlan;
}

/// The classic justified rewrites ([`classic::rewrite`]) wrapped as a
/// pipeline rule: guard analysis, variant/branch/join pruning and constant
/// folding.
struct ClassicRewrites;

impl Rewrite for ClassicRewrites {
    fn name(&self) -> &'static str {
        "classic"
    }
    fn apply(
        &self,
        plan: LogicalPlan,
        ctx: &PassContext<'_>,
        notes: &mut Vec<RewriteNote>,
    ) -> LogicalPlan {
        classic::rewrite(plan, ctx.catalog(), &SelectionContext::none(), notes)
    }
}

/// Empty-plan propagation ([`classic::simplify_empties`]) wrapped as a
/// pipeline rule, so emptiness proven by any other rule collapses the
/// surrounding operators on the same pipeline run.
struct EmptyPropagation;

impl Rewrite for EmptyPropagation {
    fn name(&self) -> &'static str {
        "empty-propagation"
    }
    fn apply(
        &self,
        plan: LogicalPlan,
        _ctx: &PassContext<'_>,
        notes: &mut Vec<RewriteNote>,
    ) -> LogicalPlan {
        classic::simplify_empties(plan, notes)
    }
}

/// A rule pipeline run to a fixpoint.
pub struct Pipeline {
    rules: Vec<Box<dyn Rewrite>>,
    max_rounds: usize,
}

impl Pipeline {
    /// The standard rule set: the classic justified rewrites, the
    /// dependency-derived semantic rewrites, and empty-plan propagation.
    pub fn standard() -> Self {
        Pipeline {
            rules: vec![
                Box::new(ClassicRewrites),
                Box::new(semantic::SemanticRules),
                Box::new(EmptyPropagation),
            ],
            max_rounds: 5,
        }
    }

    /// Runs every rule in order, repeating the whole list until the plan
    /// stops changing (or `max_rounds` is hit — a safety net; the standard
    /// rules all converge).
    pub fn run(
        &self,
        mut plan: LogicalPlan,
        ctx: &PassContext<'_>,
        notes: &mut Vec<RewriteNote>,
    ) -> LogicalPlan {
        for _ in 0..self.max_rounds {
            let before = plan.clone();
            for rule in &self.rules {
                plan = rule.apply(plan, ctx, notes);
            }
            if plan == before {
                break;
            }
        }
        plan
    }
}

/// Optimizes a plan, returning the rewritten plan and the rewrite notes.
///
/// Runs the standard [`Pipeline`] (justified rewrites, semantic rewrites,
/// empty-plan propagation) to a fixpoint, then the partition-pruning pass
/// that attaches [`crate::logical::ShapePredicate`]s to scans.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> (LogicalPlan, Vec<RewriteNote>) {
    let mut notes = Vec::new();
    let ctx = PassContext::new(catalog);
    let plan = Pipeline::standard().run(plan, &ctx, &mut notes);
    let plan = classic::prune_scans(
        plan,
        catalog,
        &AttrSet::empty(),
        &Tuple::empty(),
        &mut notes,
    );
    (plan, notes)
}

/// Optimizes a plan against a live database: runs the standard pipeline
/// with statistics available, the cost-based join-ordering pass
/// ([`mod@cost`]), partition pruning, and finally the access-path
/// pass ([`choose_access_paths`]), which needs the database's index
/// metadata ([`Database::indexes`]) on top of the catalog.
///
/// Prefer this entry point when executing against a [`Database`]; plain
/// [`optimize`] remains for callers that only have a catalog (and for
/// measuring what the justified rewrites alone achieve).
pub fn optimize_with_db(plan: LogicalPlan, db: &Database) -> (LogicalPlan, Vec<RewriteNote>) {
    let catalog = db.catalog();
    let mut notes = Vec::new();
    let ctx = PassContext::with_db(&catalog, db);
    let plan = Pipeline::standard().run(plan, &ctx, &mut notes);
    let plan = cost::order_joins(plan, db, &mut notes);
    let plan = classic::prune_scans(
        plan,
        &catalog,
        &AttrSet::empty(),
        &Tuple::empty(),
        &mut notes,
    );
    let plan = choose_access_paths(plan, db, &mut notes);
    (plan, notes)
}

/// The attribute set `AttrSet` re-exported for plan construction ergonomics
/// in downstream crates (benches build qualified-fragment plans by hand).
pub type Attrs = AttrSet;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::planner::plan_query;
    use flexrel_algebra::predicate::Predicate;
    use flexrel_core::value::Value;
    use flexrel_storage::RelationDef;
    use flexrel_workload::employee_relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        c
    }

    fn planned(frql: &str) -> LogicalPlan {
        plan_query(&parse(frql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn example4_guard_is_eliminated_with_justification() {
        let plan = planned(
            "SELECT * FROM employee WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing-speed",
        );
        assert_eq!(plan.guard_count(), 1);
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 0, "the guard must be removed");
        let note = notes
            .iter()
            .find(|n| n.rule == "guard-elimination")
            .unwrap();
        assert!(
            note.detail.contains("A4 (left augmentation)") || note.detail.contains("AF2"),
            "the note must carry the derivation: {}",
            note.detail
        );
    }

    #[test]
    fn guard_for_excluded_variant_prunes_the_query() {
        let plan =
            planned("SELECT * FROM employee WHERE jobtype = 'secretary' GUARD sales-commission");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        assert!(notes.iter().any(|n| n.rule == "guard-unsatisfiable"));
    }

    #[test]
    fn necessary_guard_is_kept() {
        let plan = planned("SELECT * FROM employee WHERE salary > 5000 GUARD typing-speed");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 1);
        assert!(notes.iter().all(|n| n.rule != "guard-elimination"));
    }

    #[test]
    fn present_conjuncts_are_simplified_too() {
        let plan =
            planned("SELECT * FROM employee WHERE jobtype = 'secretary' AND PRESENT(typing-speed)");
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(notes.iter().any(|n| n.rule == "guard-elimination"));
        // The remaining filter no longer mentions the PRESENT conjunct.
        let s = optimized.to_string();
        assert!(!s.contains("present"));
        assert!(s.contains("jobtype = 'secretary'"));

        let plan =
            planned("SELECT * FROM employee WHERE jobtype = 'secretary' AND PRESENT(products)");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        assert!(notes.iter().any(|n| n.rule == "guard-unsatisfiable"));
    }

    #[test]
    fn union_branches_with_contradicting_qualification_are_pruned() {
        // Horizontal decomposition: three qualified fragments; a selection on
        // jobtype must keep only the matching fragment.
        let branches = vec![
            LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag("secretary")),
            ),
            LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag("software engineer")),
            ),
            LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag("salesman")),
            ),
        ];
        let plan = LogicalPlan::UnionAll { inputs: branches }.filter(
            Predicate::eq("jobtype", Value::tag("salesman")).and(Predicate::gt("salary", 1000)),
        );
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(
            notes.iter().filter(|n| n.rule == "variant-pruning").count(),
            2,
            "two of the three fragments are excluded"
        );
        // The union collapses to the single surviving branch.
        let s = optimized.to_string();
        assert!(!s.contains("UnionAll"));
        assert!(s.contains("qualified by jobtype = 'salesman'"));
    }

    #[test]
    fn joins_with_excluded_variants_are_pruned() {
        // Vertical decomposition: master ⋈ detail_i where detail_i is
        // qualified by the variant's jobtype; selecting secretaries excludes
        // the salesman detail join.
        let join_with = |tag: &str| {
            LogicalPlan::scan("employee").join(LogicalPlan::qualified_scan(
                "employee",
                Predicate::eq("jobtype", Value::tag(tag)),
            ))
        };
        let plan = LogicalPlan::UnionAll {
            inputs: vec![join_with("secretary"), join_with("salesman")],
        }
        .filter(Predicate::eq("jobtype", Value::tag("secretary")));
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(notes
            .iter()
            .any(|n| n.rule == "variant-pruning" || n.rule == "join-pruning"));
        assert_eq!(
            optimized.join_count(),
            1,
            "only the secretary join survives"
        );
    }

    #[test]
    fn partition_pruning_pushes_required_attrs_and_ead_regions() {
        // Equality on the EAD determinant → exact-overlap region constraint.
        let plan = planned("SELECT * FROM employee WHERE jobtype = 'secretary' AND salary > 1000");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.pruned_scan_count(), 1);
        let note = notes
            .iter()
            .find(|n| n.rule == "partition-pruning")
            .unwrap();
        assert!(
            note.detail.contains("shape ⊇") && note.detail.contains("shape ∩"),
            "{}",
            note.detail
        );
        // A kept (necessary) guard contributes its attributes too.
        let plan = planned("SELECT * FROM employee WHERE salary > 5000 GUARD typing-speed");
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 1);
        assert_eq!(optimized.pruned_scan_count(), 1);
        let s = optimized.to_string();
        assert!(s.contains("typing-speed"), "{}", s);
    }

    #[test]
    fn partition_pruning_preserves_hand_built_shape_predicates() {
        use crate::logical::ShapePredicate;
        use flexrel_core::attrs;
        // A hand-built scan restricted to typing-speed partitions is
        // result-affecting; optimizing a filter on top must conjoin, not
        // replace, the restriction.
        let plan = LogicalPlan::Scan {
            relation: "employee".into(),
            qualification: None,
            shape: Some(ShapePredicate {
                required: attrs!["typing-speed"],
                regions: Vec::new(),
            }),
        }
        .filter(Predicate::gt("salary", 0));
        let (optimized, _) = optimize(plan, &catalog());
        let LogicalPlan::Filter { input, .. } = optimized else {
            panic!("filter must survive");
        };
        let LogicalPlan::Scan {
            shape: Some(sp), ..
        } = *input
        else {
            panic!("scan must keep a shape predicate");
        };
        assert!(
            sp.required.is_superset(&attrs!["salary", "typing-speed"]),
            "hand-built restriction merged with the pushed context: {}",
            sp
        );
    }

    #[test]
    fn partition_pruning_stops_at_extend_and_join() {
        // A filter on the extended attribute must not constrain the scan:
        // the attribute exists on every extended tuple regardless of shape.
        let plan = LogicalPlan::Extend {
            input: Box::new(LogicalPlan::scan("employee")),
            attr: "source".into(),
            value: Value::tag("hr"),
        }
        .filter(Predicate::eq("source", Value::tag("hr")));
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(
            optimized.pruned_scan_count(),
            0,
            "extend cuts the context off: {}",
            optimized
        );

        // A filter above a join may be satisfied by either side; nothing is
        // pushed across, but each side keeps its own subtree context.
        let plan = LogicalPlan::scan("employee")
            .join(LogicalPlan::scan("employee"))
            .filter(Predicate::gt("salary", 1000));
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized.pruned_scan_count(), 0, "{}", optimized);
    }

    fn database(n: usize) -> Database {
        use flexrel_workload::{generate_employees, EmployeeConfig};
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    #[test]
    fn access_path_pass_rewrites_covered_equality_filters() {
        let db = database(50);
        let plan = planned("SELECT * FROM employee WHERE empno = 3 AND salary > 0");
        let (optimized, notes) = optimize_with_db(plan, &db);
        assert_eq!(optimized.index_lookup_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "access-path"));
        let s = optimized.to_string();
        assert!(s.contains("IndexLookup employee"), "{}", s);
        assert!(s.contains("salary > 0"), "residual filter kept: {}", s);
        assert!(!s.contains("empno = 3"), "consumed equality removed: {}", s);
    }

    #[test]
    fn access_path_pass_needs_a_covering_index() {
        let db = database(30);
        // No index on name: the filter stays a filtered scan.
        let plan = planned("SELECT * FROM employee WHERE name = 'emp3'");
        let (optimized, _) = optimize_with_db(plan.clone(), &db);
        assert_eq!(optimized.index_lookup_count(), 0, "{}", optimized);
        // A user-created secondary index enables the rewrite.
        db.create_index("employee", flexrel_core::attrs!["name"])
            .unwrap();
        let (optimized, notes) = optimize_with_db(plan, &db);
        assert_eq!(optimized.index_lookup_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "access-path"));
    }

    #[test]
    fn index_lookup_composes_with_partition_pruning() {
        // The equality on the EAD determinant both picks the jobtype index
        // and pins the variant region; the shape predicate pushed by
        // prune_scans must survive on the lookup node.
        let db = database(60);
        let plan = planned("SELECT * FROM employee WHERE jobtype = 'secretary'");
        let (optimized, _) = optimize_with_db(plan, &db);
        let LogicalPlan::IndexLookup {
            shapes: Some(sp),
            key,
            ..
        } = optimized
        else {
            panic!("expected a bare index lookup");
        };
        assert_eq!(key, flexrel_core::attrs!["jobtype"]);
        assert!(!sp.is_trivial());
        assert!(
            sp.regions.iter().any(|(_, yi)| !yi.is_empty()),
            "the pinned determinant fixes the variant region: {}",
            sp
        );
    }

    #[test]
    fn aggregation_pushes_group_attrs_and_survives_empty_inputs() {
        // Grouping attributes are required below the aggregate, so the scan
        // gets a shape predicate.
        let plan = planned("SELECT typing-speed, COUNT(*) FROM employee GROUP BY typing-speed");
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.pruned_scan_count(), 1, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "partition-pruning"));

        // A global aggregate over a proven-empty input keeps its node (it
        // still emits COUNT(*) = 0); a grouped one collapses.
        let plan = LogicalPlan::Empty.aggregate(
            AttrSet::empty(),
            vec![crate::logical::AggExpr::new(
                crate::logical::AggFunc::Count,
                None,
            )],
        );
        let (optimized, _) = optimize(plan, &catalog());
        assert!(matches!(optimized, LogicalPlan::Aggregate { .. }));
        let plan = LogicalPlan::Empty.aggregate(
            flexrel_core::attrs!["jobtype"],
            vec![crate::logical::AggExpr::new(
                crate::logical::AggFunc::Count,
                None,
            )],
        );
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
    }

    #[test]
    fn constant_false_filter_collapses_to_empty() {
        let plan = LogicalPlan::scan("employee").filter(Predicate::False);
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        let plan = LogicalPlan::scan("employee").filter(Predicate::True);
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::scan("employee"));
    }

    #[test]
    fn empty_propagation_through_joins_and_unions() {
        let plan = LogicalPlan::Empty.join(LogicalPlan::scan("employee"));
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty);
        assert!(notes.iter().any(|n| n.rule == "empty-propagation"));

        let plan = LogicalPlan::UnionAll {
            inputs: vec![LogicalPlan::Empty, LogicalPlan::scan("employee")],
        };
        let (optimized, _) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::scan("employee"));
    }
}
