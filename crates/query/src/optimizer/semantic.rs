//! The dependency-derived semantic rewrites.
//!
//! Where the [`mod@super::classic`] rules reason from the *selection
//! context* (what a query's own predicates establish), these rules reason
//! from the **declared dependencies themselves**, via the
//! [`SemanticFacts`] view (closure index, mandatory attributes, EAD
//! variants) that [`super::PassContext::facts`] caches per relation:
//!
//! * **join-elimination** — a join whose only purpose is to fetch
//!   attributes the other side already determines (an FD `X → A` with the
//!   join key `X` and `A` mandatory) is removed; the fetched attributes
//!   are recovered by widening the surviving side's projection.
//! * **groupby-elimination** — grouping a duplicate-free projection by
//!   attributes that functionally determine every projected attribute
//!   yields singleton groups; `COUNT(*)` aggregates are folded to the
//!   constant `1`.
//! * **guard-elimination** (mandatory form) — a type guard asking only for
//!   attributes in the intersection of the scheme's DNF disjuncts is
//!   vacuous: every admitted shape carries them.
//! * **ead-predicate-simplification** — when a filter pins an EAD's
//!   determining attributes, Def. 2.1 fixes the variant, so comparisons
//!   and `PRESENT` atoms over attributes *outside* that variant are folded
//!   to `false` (classic constant folding then collapses the filter).
//!
//! All four are **note-safe**: they emit a [`RewriteNote`] only when they
//! change the plan, so the pipeline fixpoint neither loops nor duplicates
//! notes.

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::AttrSet;
use flexrel_core::facts::SemanticFacts;
use flexrel_core::value::Value;

use crate::logical::{AggFunc, LogicalPlan};

use super::{PassContext, Rewrite, RewriteNote};

/// The semantic rule bundle, registered in [`super::Pipeline::standard`].
pub struct SemanticRules;

impl Rewrite for SemanticRules {
    fn name(&self) -> &'static str {
        "semantic"
    }
    fn apply(
        &self,
        plan: LogicalPlan,
        ctx: &PassContext<'_>,
        notes: &mut Vec<RewriteNote>,
    ) -> LogicalPlan {
        rewrite(plan, ctx, notes)
    }
}

/// Bottom-up traversal: children first, then the node-level rules.
fn rewrite(plan: LogicalPlan, ctx: &PassContext<'_>, notes: &mut Vec<RewriteNote>) -> LogicalPlan {
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite(*input, ctx, notes)),
            predicate,
        },
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, ctx, notes)),
            attrs,
        },
        LogicalPlan::Guard { input, attrs } => LogicalPlan::Guard {
            input: Box::new(rewrite(*input, ctx, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => LogicalPlan::Extend {
            input: Box::new(rewrite(*input, ctx, notes)),
            attr,
            value,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, ctx, notes)),
            group_by,
            aggs,
        },
        LogicalPlan::Join { left, right } => LogicalPlan::Join {
            left: Box::new(rewrite(*left, ctx, notes)),
            right: Box::new(rewrite(*right, ctx, notes)),
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(|p| rewrite(p, ctx, notes)).collect(),
        },
        leaf => leaf,
    };
    let plan = try_join_elimination(plan, ctx, notes);
    let plan = try_groupby_elimination(plan, ctx, notes);
    let plan = try_guard_mandatory(plan, ctx, notes);
    try_ead_simplification(plan, ctx, notes)
}

/// The single stored relation a plan reads full tuples from, looking
/// through shape-preserving operators only.  `None` for projections,
/// extends, joins, unions and aggregates: their rows are no longer stored
/// tuples of one relation, so per-tuple dependency reasoning (FDs hold
/// pairwise on *stored* tuples) does not transfer.
fn leaf_relation(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexLookup { relation, .. } => {
            Some(relation)
        }
        LogicalPlan::Filter { input, .. } | LogicalPlan::Guard { input, .. } => {
            leaf_relation(input)
        }
        _ => None,
    }
}

/// A lower bound on the attributes present in every tuple a probe-side
/// plan over `rel` emits, or `None` when the plan reads anything other
/// than `rel` (or produces rows that are not restrictions of stored
/// tuples).
fn probe_lower(plan: &LogicalPlan, rel: &str, facts: &SemanticFacts) -> Option<AttrSet> {
    match plan {
        LogicalPlan::Scan { relation, .. } if relation == rel => Some(facts.mandatory().clone()),
        LogicalPlan::IndexLookup { relation, key, .. } if relation == rel => {
            Some(facts.mandatory().union(key))
        }
        LogicalPlan::Filter { input, .. } => probe_lower(input, rel, facts),
        LogicalPlan::Guard { input, attrs } => Some(probe_lower(input, rel, facts)?.union(attrs)),
        LogicalPlan::Project { input, attrs } => {
            Some(probe_lower(input, rel, facts)?.intersection(attrs))
        }
        _ => None,
    }
}

/// Whether a plan is a bare `π_A(rel)` fetch: a projection directly over an
/// unqualified, unrestricted scan.  Only such a side may be eliminated —
/// a qualification or shape restriction would make the projection a strict
/// subset of `π_A(rel)`, turning the join into a semi-join filter.
fn as_bare_projection(plan: &LogicalPlan) -> Option<(&str, &AttrSet)> {
    if let LogicalPlan::Project { input, attrs } = plan {
        if let LogicalPlan::Scan {
            relation,
            qualification: None,
            shape: None,
        } = input.as_ref()
        {
            return Some((relation, attrs));
        }
    }
    None
}

/// **join-elimination.**  In `probe ⋈ π_A(rel)` where the probe side also
/// reads `rel`, every probe tuple carries the join key `X = A ∩ attrs(probe)`
/// of a stored tuple, `A` is mandatory (so `π_A(rel)` has no partial
/// tuples) and the declared FDs give `X → A`: each probe tuple then merges
/// with **exactly one** build tuple — the `A`-projection of its own
/// originating stored tuple (the build side is duplicate-free because
/// `Project` has set semantics).  The join is the identity on the probe
/// side except for widening each tuple by `A`, so it is replaced by the
/// probe alone (when it already carries `A`) or by the probe with its
/// projection widened to `B ∪ A`.
fn try_join_elimination(
    plan: LogicalPlan,
    ctx: &PassContext<'_>,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    let LogicalPlan::Join { left, right } = plan else {
        return plan;
    };
    for (fetch, probe) in [(&left, &right), (&right, &left)] {
        let Some((rel, a)) = as_bare_projection(fetch) else {
            continue;
        };
        let Some(facts) = ctx.facts(rel) else {
            continue;
        };
        if leaf_relation_through_project(probe) != Some(rel) {
            continue;
        }
        let Some(lower) = probe_lower(probe, rel, &facts) else {
            continue;
        };
        if a.is_empty() || !a.is_subset(facts.mandatory()) {
            continue;
        }
        let x = a.intersection(&lower);
        if x.is_empty() || !facts.determines(&x, a) {
            continue;
        }
        if a.is_subset(&lower) {
            notes.push(RewriteNote::new(
                "join-elimination",
                format!(
                    "join with π_{}({}) removed: the other side already carries {}, \
                     and {} → {} makes each tuple's partner unique",
                    a, rel, a, x, a
                ),
            ));
            return (**probe).clone();
        }
        if let LogicalPlan::Project { input, attrs } = probe.as_ref() {
            // Widening is only sound when the projection's input rows are
            // full stored tuples (they carry the mandatory `A` with the
            // FD-consistent values).
            if leaf_relation(input).is_some() {
                notes.push(RewriteNote::new(
                    "join-elimination",
                    format!(
                        "join with π_{}({}) removed: {} → {} lets the projection \
                         be widened to fetch {} directly",
                        a, rel, x, a, a
                    ),
                ));
                return LogicalPlan::Project {
                    input: input.clone(),
                    attrs: attrs.union(a),
                };
            }
        }
    }
    LogicalPlan::Join { left, right }
}

/// Like [`leaf_relation`], but also looks through one `Project` (the probe
/// side of an eliminable join is typically a projection itself).
fn leaf_relation_through_project(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Project { input, .. } => leaf_relation(input),
        other => leaf_relation(other),
    }
}

/// **groupby-elimination.**  `GROUP BY G` over the duplicate-free
/// projection `π_B(rel)` with `G ⊆ B ⊆ mandatory` and the FD `G → B`:
/// distinct `B`-values have distinct `G`-values (the FD holds pairwise on
/// the stored tuples the projection came from), so every group is a
/// singleton and `COUNT(*)` is the constant `1`.
fn try_groupby_elimination(
    plan: LogicalPlan,
    ctx: &PassContext<'_>,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    let LogicalPlan::Aggregate {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return plan;
    };
    let eliminable = (|| {
        if group_by.is_empty()
            || !aggs
                .iter()
                .all(|a| matches!(a.func, AggFunc::Count) && a.input.is_none())
        {
            return None;
        }
        let LogicalPlan::Project {
            input: inner,
            attrs: b,
        } = input.as_ref()
        else {
            return None;
        };
        let rel = leaf_relation(inner)?;
        let facts = ctx.facts(rel)?;
        if b.is_subset(facts.mandatory()) && group_by.is_subset(b) && facts.determines(&group_by, b)
        {
            Some((inner.clone(), rel.to_string(), b.clone()))
        } else {
            None
        }
    })();
    match eliminable {
        Some((inner, rel, b)) => {
            notes.push(RewriteNote::new(
                "groupby-elimination",
                format!(
                    "GROUP BY {} over π_{}({}) has singleton groups ({} → {}); \
                     COUNT(*) folded to the constant 1",
                    group_by, b, rel, group_by, b
                ),
            ));
            let mut plan = LogicalPlan::Project {
                input: inner,
                attrs: group_by,
            };
            for agg in aggs {
                plan = LogicalPlan::Extend {
                    input: Box::new(plan),
                    attr: agg.output.name().to_string(),
                    value: Value::Int(1),
                };
            }
            plan
        }
        None => LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        },
    }
}

/// **guard-elimination**, mandatory form: a guard asking only for
/// attributes every admitted shape carries (the intersection of the
/// scheme's DNF disjuncts) is vacuous regardless of any selection context.
fn try_guard_mandatory(
    plan: LogicalPlan,
    ctx: &PassContext<'_>,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    let LogicalPlan::Guard { input, attrs } = plan else {
        return plan;
    };
    let mandatory = leaf_relation(&input)
        .and_then(|rel| ctx.facts(rel))
        .is_some_and(|facts| attrs.is_subset(facts.mandatory()));
    if mandatory {
        notes.push(RewriteNote::new(
            "guard-elimination",
            format!(
                "guard for {} is vacuous: the attributes are mandatory \
                 (present in every disjunct of the scheme's DNF)",
                attrs
            ),
        ));
        *input
    } else {
        LogicalPlan::Guard { input, attrs }
    }
}

/// **ead-predicate-simplification.**  When the filter's top-level equality
/// conjuncts pin an EAD's determining attributes, Def. 2.1 fixes the
/// variant of every tuple that can still qualify; atoms over attributes
/// *outside* that variant (`rhs \ Yi`) evaluate to `false` on all such
/// tuples, and tuples of other variants already fail the pinned equality
/// conjuncts — so those atoms fold to `false` unconditionally.
fn try_ead_simplification(
    plan: LogicalPlan,
    ctx: &PassContext<'_>,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    let LogicalPlan::Filter { input, predicate } = plan else {
        return plan;
    };
    let absent = leaf_relation(&input)
        .and_then(|rel| ctx.facts(rel))
        .map(|facts| facts.absent_attrs(&predicate.implied_equalities()))
        .unwrap_or_else(AttrSet::empty);
    if absent.is_empty() {
        return LogicalPlan::Filter { input, predicate };
    }
    let folded = fold_absent(&predicate, &absent).simplify();
    if folded != predicate {
        notes.push(RewriteNote::new(
            "ead-predicate-simplification",
            format!(
                "the pinned EAD determinant excludes {}; atoms over those \
                 attributes folded to false",
                absent
            ),
        ));
        LogicalPlan::Filter {
            input,
            predicate: folded,
        }
    } else {
        LogicalPlan::Filter { input, predicate }
    }
}

/// Folds every atom touching an attribute of `absent` to `false`,
/// uniformly through the whole predicate tree (sound because tuples not
/// matching the pinned determinant fail the top-level equality conjuncts
/// either way).
fn fold_absent(p: &Predicate, absent: &AttrSet) -> Predicate {
    match p {
        Predicate::Cmp { attr, .. } if absent.contains(attr) => Predicate::False,
        Predicate::IsPresent(attrs) if !attrs.intersection(absent).is_empty() => Predicate::False,
        Predicate::And(a, b) => fold_absent(a, absent).and(fold_absent(b, absent)),
        Predicate::Or(a, b) => fold_absent(a, absent).or(fold_absent(b, absent)),
        Predicate::Not(a) => fold_absent(a, absent).negate(),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use flexrel_core::attrs;
    use flexrel_storage::{Catalog, RelationDef};
    use flexrel_workload::employee_relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        c
    }

    /// The "fetch names for each picked employee" join: π_{empno}(filtered)
    /// ⋈ π_{empno,name}(employee).  empno → name makes the join a no-op
    /// widening of the projection.
    fn fetch_join() -> LogicalPlan {
        let probe = LogicalPlan::scan("employee")
            .filter(Predicate::gt("salary", 1000))
            .project(attrs!["empno"]);
        let fetch = LogicalPlan::scan("employee").project(attrs!["empno", "name"]);
        probe.join(fetch)
    }

    #[test]
    fn join_elimination_widens_the_projection() {
        let (optimized, notes) = optimize(fetch_join(), &catalog());
        assert_eq!(optimized.join_count(), 0, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "join-elimination"));
        let LogicalPlan::Project { attrs, .. } = optimized else {
            panic!("widened projection expected, got {}", optimized);
        };
        assert_eq!(attrs, attrs!["empno", "name"]);
    }

    #[test]
    fn join_elimination_removes_a_fully_covered_fetch() {
        // The probe already projects everything the fetch side supplies.
        let probe = LogicalPlan::scan("employee")
            .filter(Predicate::gt("salary", 1000))
            .project(attrs!["empno", "name"]);
        let fetch = LogicalPlan::scan("employee").project(attrs!["empno", "name"]);
        let (optimized, notes) = optimize(probe.clone().join(fetch), &catalog());
        assert_eq!(optimized.join_count(), 0, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "join-elimination"));
    }

    #[test]
    fn join_elimination_requires_the_fd() {
        // name is mandatory but nothing declares name → empno, so fetching
        // empno by name must keep the join.
        let probe = LogicalPlan::scan("employee")
            .filter(Predicate::gt("salary", 1000))
            .project(attrs!["name"]);
        let fetch = LogicalPlan::scan("employee").project(attrs!["name", "empno"]);
        let (optimized, notes) = optimize(probe.join(fetch), &catalog());
        assert_eq!(optimized.join_count(), 1, "{}", optimized);
        assert!(notes.iter().all(|n| n.rule != "join-elimination"));
    }

    #[test]
    fn join_elimination_requires_an_unqualified_fetch() {
        // A qualified fetch side is a strict subset of π_A(rel): the join
        // doubles as a semi-join filter and must be kept.  (The probe side
        // carries a filter so it is not itself a bare projection the rule
        // could eliminate in the other orientation.)
        let probe = LogicalPlan::scan("employee")
            .filter(Predicate::gt("salary", 1000))
            .project(attrs!["empno"]);
        let fetch = LogicalPlan::qualified_scan(
            "employee",
            Predicate::eq("jobtype", flexrel_core::value::Value::tag("secretary")),
        )
        .project(attrs!["empno", "name"]);
        let (optimized, notes) = optimize(probe.join(fetch), &catalog());
        assert_eq!(optimized.join_count(), 1, "{}", optimized);
        assert!(notes.iter().all(|n| n.rule != "join-elimination"));
    }

    #[test]
    fn an_unqualified_bare_fetch_may_be_eliminated_against_a_qualified_probe() {
        // The reverse orientation of the case above: the *unqualified* side
        // is the bare π_A(rel) build and covers every probe tuple, so the
        // join is the identity on the qualified probe.
        let probe = LogicalPlan::qualified_scan(
            "employee",
            Predicate::eq("jobtype", flexrel_core::value::Value::tag("secretary")),
        )
        .project(attrs!["empno", "name"]);
        let fetch = LogicalPlan::scan("employee").project(attrs!["empno"]);
        let (optimized, notes) = optimize(fetch.join(probe), &catalog());
        assert_eq!(optimized.join_count(), 0, "{}", optimized);
        assert!(notes.iter().any(|n| n.rule == "join-elimination"));
    }

    #[test]
    fn groupby_elimination_folds_count_to_one() {
        let plan = LogicalPlan::scan("employee")
            .project(attrs!["empno", "name"])
            .aggregate(
                attrs!["empno"],
                vec![crate::logical::AggExpr::new(AggFunc::Count, None)],
            );
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(notes.iter().any(|n| n.rule == "groupby-elimination"));
        let LogicalPlan::Extend { attr, value, input } = optimized else {
            panic!("constant count expected, got {}", optimized);
        };
        assert_eq!(attr, "count");
        assert_eq!(value, Value::Int(1));
        assert!(matches!(*input, LogicalPlan::Project { .. }));
    }

    #[test]
    fn groupby_elimination_requires_determination() {
        // name does not determine empno: groups may be real.
        let plan = LogicalPlan::scan("employee")
            .project(attrs!["empno", "name"])
            .aggregate(
                attrs!["name"],
                vec![crate::logical::AggExpr::new(AggFunc::Count, None)],
            );
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(matches!(optimized, LogicalPlan::Aggregate { .. }));
        assert!(notes.iter().all(|n| n.rule != "groupby-elimination"));
    }

    #[test]
    fn mandatory_guard_is_dropped_without_selection_context() {
        // No selection pins anything, so the classic analyse_guard pass
        // cannot justify the removal — the scheme's DNF intersection can.
        let plan = LogicalPlan::scan("employee").guard(attrs!["name", "salary"]);
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized.guard_count(), 0, "{}", optimized);
        assert!(notes
            .iter()
            .any(|n| n.rule == "guard-elimination" && n.detail.contains("mandatory")));
    }

    #[test]
    fn ead_simplification_folds_excluded_variant_atoms() {
        // Pinning jobtype = 'secretary' excludes sales-commission; the
        // comparison folds to false and the filter collapses to Empty.
        let plan = LogicalPlan::scan("employee").filter(
            Predicate::eq("jobtype", flexrel_core::value::Value::tag("secretary"))
                .and(Predicate::gt("sales-commission", 10)),
        );
        let (optimized, notes) = optimize(plan, &catalog());
        assert_eq!(optimized, LogicalPlan::Empty, "{}", optimized);
        assert!(notes
            .iter()
            .any(|n| n.rule == "ead-predicate-simplification"));
    }

    #[test]
    fn ead_simplification_keeps_same_variant_atoms() {
        let plan = LogicalPlan::scan("employee").filter(
            Predicate::eq("jobtype", flexrel_core::value::Value::tag("secretary"))
                .and(Predicate::gt("typing-speed", 10)),
        );
        let (optimized, notes) = optimize(plan, &catalog());
        assert!(
            matches!(optimized, LogicalPlan::Filter { .. }),
            "{}",
            optimized
        );
        assert!(notes
            .iter()
            .all(|n| n.rule != "ead-predicate-simplification"));
    }
}
