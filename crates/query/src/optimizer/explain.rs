//! `EXPLAIN` rendering: the optimized plan as an indented tree with
//! per-node row estimates, followed by the rewrite notes of every rule
//! that fired.

use std::fmt;

use flexrel_core::error::Result;
use flexrel_storage::Database;

use crate::exec;
use crate::logical::LogicalPlan;
use crate::parser::parse;
use crate::planner::plan_query;

use super::{optimize_with_db, RewriteNote};

/// A rendered explanation of an optimized plan: the operator tree (one
/// line per node, `~rows=` estimates where statistics allow one) and the
/// rewrite notes.  Build one with [`PlanExplain::new`], print it via
/// [`fmt::Display`].
#[derive(Clone, Debug)]
pub struct PlanExplain {
    rendered: String,
}

impl PlanExplain {
    /// Renders a plan.  With a database, each node is annotated with the
    /// executor's row estimate (which consults the stored statistics);
    /// without one the tree and notes alone are shown.
    pub fn new(plan: &LogicalPlan, notes: &[RewriteNote], db: Option<&Database>) -> Self {
        let mut out = String::new();
        render_node(plan, db, 0, &mut out);
        if !notes.is_empty() {
            out.push_str("rewrites:\n");
            for n in notes {
                // Multi-line details (derivations) are indented under the
                // rule name.
                let detail = n.detail.replace('\n', "\n      ");
                out.push_str(&format!("  [{}] {}\n", n.rule, detail));
            }
        }
        PlanExplain { rendered: out }
    }
}

impl fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

fn render_node(plan: &LogicalPlan, db: Option<&Database>, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let label = node_label(plan);
    let est = db
        .and_then(|db| exec::estimate_rows(plan, db))
        .map(|n| format!("  ~rows={}", n))
        .unwrap_or_default();
    out.push_str(&format!("{}{}{}\n", indent, label, est));
    match plan {
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. }
        | LogicalPlan::Aggregate { input, .. } => render_node(input, db, depth + 1, out),
        LogicalPlan::Join { left, right } => {
            render_node(left, db, depth + 1, out);
            render_node(right, db, depth + 1, out);
        }
        LogicalPlan::UnionAll { inputs } => {
            for p in inputs {
                render_node(p, db, depth + 1, out);
            }
        }
        LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } | LogicalPlan::Empty => {}
    }
}

fn node_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => {
            let mut s = format!("Scan {}", relation);
            if let Some(q) = qualification {
                s.push_str(&format!(" qualified by {}", q));
            }
            if let Some(sp) = shape {
                s.push_str(&format!(" [{}]", sp));
            }
            s
        }
        LogicalPlan::IndexLookup {
            relation,
            key,
            key_value,
            shapes,
        } => {
            let mut s = format!("IndexLookup {} on {} = {}", relation, key, key_value);
            if let Some(sp) = shapes {
                s.push_str(&format!(" [{}]", sp));
            }
            s
        }
        LogicalPlan::Filter { predicate, .. } => format!("Filter {}", predicate),
        LogicalPlan::Project { attrs, .. } => format!("Project {}", attrs),
        LogicalPlan::Guard { attrs, .. } => format!("Guard {}", attrs),
        LogicalPlan::Extend { attr, value, .. } => format!("Extend {} := {}", attr, value),
        LogicalPlan::Join { .. } => "Join".to_string(),
        LogicalPlan::UnionAll { .. } => "UnionAll".to_string(),
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let outputs: Vec<&str> = aggs.iter().map(|a| a.output.name()).collect();
            if group_by.is_empty() {
                format!("Aggregate [{}]", outputs.join(", "))
            } else {
                format!("Aggregate group by {} [{}]", group_by, outputs.join(", "))
            }
        }
        LogicalPlan::Empty => "Empty".to_string(),
    }
}

/// The `EXPLAIN` front end: parses FRQL (a leading `EXPLAIN` keyword is
/// accepted and implied), plans, optimizes against the live database, and
/// renders the result.
pub fn explain_query(frql: &str, db: &Database) -> Result<String> {
    let query = parse(frql)?;
    let plan = plan_query(&query, &db.catalog())?;
    let (optimized, notes) = optimize_with_db(plan, db);
    Ok(PlanExplain::new(&optimized, &notes, Some(db)).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_storage::RelationDef;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn database(n: usize) -> Database {
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    #[test]
    fn explain_renders_tree_estimates_and_notes() {
        let db = database(60);
        let out = explain_query(
            "EXPLAIN SELECT * FROM employee WHERE salary > 5000 \
             AND jobtype = 'secretary' GUARD typing-speed",
            &db,
        )
        .unwrap();
        assert!(out.contains("IndexLookup employee"), "{}", out);
        assert!(out.contains("~rows="), "{}", out);
        assert!(out.contains("[guard-elimination]"), "{}", out);
        assert!(out.contains("rewrites:"), "{}", out);
    }

    #[test]
    fn explain_keyword_is_optional_in_the_front_end() {
        let db = database(10);
        let with = explain_query("EXPLAIN SELECT * FROM employee", &db).unwrap();
        let without = explain_query("SELECT * FROM employee", &db).unwrap();
        assert_eq!(with, without);
    }
}
