//! The justified rewrites carried over from the single-pass optimizer:
//! guard elimination via [`analyse_guard`], variant/join pruning against
//! qualified fragments, constant folding, empty-plan propagation, the
//! partition-pruning pass and the access-path pass.  Every rule here
//! predates the multi-pass pipeline and is kept verbatim; the pipeline
//! ([`super::Pipeline`]) wraps them as [`super::Rewrite`] passes.

use flexrel_algebra::predicate::{CmpOp, Predicate};
use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::axioms::AxiomSystem;
use flexrel_core::dep::DependencySet;
use flexrel_core::tuple::Tuple;
use flexrel_core::typecheck::{analyse_guard, GuardAnalysis, SelectionContext, TypeGuard};
use flexrel_storage::{Catalog, Database, IndexInfo, RelationDef};

use crate::logical::{LogicalPlan, ShapePredicate};

use super::RewriteNote;

/// The access-path pass: rewrites `Filter(… ∧ A = c ∧ …) ∘ Scan` into an
/// [`LogicalPlan::IndexLookup`] (plus a residual filter for the conjuncts
/// the index does not answer) when the stored relation has an index — auto
/// determinant or user-created secondary — whose key is fully pinned by the
/// filter's top-level equality conjuncts.
///
/// Runs *after* [`super::optimize`], so the scan already carries the
/// [`ShapePredicate`] pushed down by partition pruning; the predicate moves
/// onto the lookup's `shapes` field and the executor re-applies it per
/// matching rid (via the rid's `ShapeId`), composing index probing with
/// shape pruning instead of losing it.  When several indexes cover the
/// pinned attributes the one with the most distinct keys (the most
/// selective probe) wins.
pub fn choose_access_paths(
    plan: LogicalPlan,
    db: &Database,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = choose_access_paths(*input, db, notes);
            if let LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            } = input
            {
                let pinned = predicate.implied_equalities();
                if let Some(info) = covering_index(db, &relation, &pinned) {
                    let key_value = pinned.project(&info.key);
                    let mut residual =
                        strip_consumed_equalities(&predicate, &info.key, &key_value).simplify();
                    if let Some(q) = qualification {
                        // The scan would have applied its qualification;
                        // the lookup keeps it as part of the residual.
                        residual = residual.and(q).simplify();
                    }
                    notes.push(RewriteNote::new(
                        "access-path",
                        format!(
                            "scan of {} replaced by index lookup on {} = {} \
                             ({} distinct keys over {} entries)",
                            relation, info.key, key_value, info.distinct_keys, info.len
                        ),
                    ));
                    let lookup = LogicalPlan::IndexLookup {
                        relation,
                        key: info.key,
                        key_value,
                        shapes: shape,
                    };
                    return if residual == Predicate::True {
                        lookup
                    } else {
                        lookup.filter(residual)
                    };
                }
                LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Scan {
                        relation,
                        qualification,
                        shape,
                    }),
                    predicate,
                }
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(choose_access_paths(*input, db, notes)),
            attrs,
        },
        LogicalPlan::Guard { input, attrs } => LogicalPlan::Guard {
            input: Box::new(choose_access_paths(*input, db, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => LogicalPlan::Extend {
            input: Box::new(choose_access_paths(*input, db, notes)),
            attr,
            value,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(choose_access_paths(*input, db, notes)),
            group_by,
            aggs,
        },
        LogicalPlan::Join { left, right } => LogicalPlan::Join {
            left: Box::new(choose_access_paths(*left, db, notes)),
            right: Box::new(choose_access_paths(*right, db, notes)),
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| choose_access_paths(p, db, notes))
                .collect(),
        },
        leaf
        @ (LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } | LogicalPlan::Empty) => leaf,
    }
}

/// The most selective stored index whose key is fully pinned by the
/// equality constraints, if any.
fn covering_index(db: &Database, relation: &str, pinned: &Tuple) -> Option<IndexInfo> {
    if pinned.is_empty() {
        return None;
    }
    let pinned_attrs = pinned.attrs();
    db.indexes(relation)
        .ok()?
        .into_iter()
        .filter(|info| !info.key.is_empty() && info.key.is_subset(&pinned_attrs))
        .max_by_key(|info| (info.distinct_keys, info.key.len()))
}

/// Replaces the top-level equality conjuncts the index probe answers
/// (`A = c` with `A` in the key and `c` the probed constant) by `True`; the
/// caller simplifies the remainder into the residual filter.
fn strip_consumed_equalities(p: &Predicate, key: &AttrSet, key_value: &Tuple) -> Predicate {
    match p {
        Predicate::Cmp {
            attr,
            op: CmpOp::Eq,
            value,
        } if key.contains(attr) && key_value.get(attr) == Some(value) => Predicate::True,
        Predicate::And(a, b) => strip_consumed_equalities(a, key, key_value)
            .and(strip_consumed_equalities(b, key, key_value)),
        other => other.clone(),
    }
}

/// The dependencies visible below a plan node: the union of the declared
/// dependency sets of every scanned relation in the subtree.
fn subtree_deps(plan: &LogicalPlan, catalog: &Catalog) -> DependencySet {
    match plan {
        LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexLookup { relation, .. } => catalog
            .get(relation)
            .map(|def| def.deps.clone())
            .unwrap_or_default(),
        // An aggregate's output attributes are new (counts, sums, group
        // keys); the scanned relations' dependencies say nothing about them.
        LogicalPlan::Empty | LogicalPlan::Aggregate { .. } => DependencySet::new(),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. } => subtree_deps(input, catalog),
        LogicalPlan::Join { left, right } => {
            subtree_deps(left, catalog).union(&subtree_deps(right, catalog))
        }
        LogicalPlan::UnionAll { inputs } => inputs.iter().fold(DependencySet::new(), |acc, p| {
            acc.union(&subtree_deps(p, catalog))
        }),
    }
}

/// The selection context established *below* a node: predicates of filters
/// and scan qualifications in the subtree contribute their required
/// attributes and implied equalities.
fn subtree_context(plan: &LogicalPlan) -> SelectionContext {
    fn merge(ctx: SelectionContext, p: &Predicate) -> SelectionContext {
        let mut ctx = ctx.with_referenced(p.required_attrs());
        for (a, v) in p.implied_equalities().iter() {
            ctx = ctx.with_equality(a.clone(), v.clone());
        }
        ctx
    }
    match plan {
        LogicalPlan::Empty => SelectionContext::none(),
        LogicalPlan::Scan { qualification, .. } => match qualification {
            Some(q) => merge(SelectionContext::none(), q),
            None => SelectionContext::none(),
        },
        // An index lookup pins its key attributes to the probe constants:
        // every yielded tuple is defined on `key` and agrees with
        // `key_value`.
        LogicalPlan::IndexLookup { key, key_value, .. } => {
            let mut ctx = SelectionContext::none().with_referenced(key.clone());
            for (a, v) in key_value.iter() {
                ctx = ctx.with_equality(a.clone(), v.clone());
            }
            ctx
        }
        LogicalPlan::Filter { input, predicate } => merge(subtree_context(input), predicate),
        LogicalPlan::Guard { input, attrs } => {
            subtree_context(input).with_referenced(attrs.clone())
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Extend { input, .. } => {
            subtree_context(input)
        }
        LogicalPlan::Join { left, right } => {
            // Both sides' constraints hold for the join result.
            let l = subtree_context(left);
            let r = subtree_context(right);
            let mut ctx = l.with_referenced(r.referenced.clone());
            for (a, v) in r.equalities.iter() {
                ctx = ctx.with_equality(a.clone(), v.clone());
            }
            ctx
        }
        // A union guarantees only what holds on every branch; be
        // conservative and claim nothing.  An aggregate rewrites tuples
        // entirely (group keys + aggregate outputs): every output row is
        // defined on the grouping attributes, but nothing else survives.
        LogicalPlan::UnionAll { .. } => SelectionContext::none(),
        LogicalPlan::Aggregate { group_by, .. } => {
            SelectionContext::none().with_referenced(group_by.clone())
        }
    }
}

/// All equality constraints established by scan qualifications inside a
/// subtree (used for branch pruning).
fn qualification_equalities(plan: &LogicalPlan) -> Tuple {
    match plan {
        LogicalPlan::Scan {
            qualification: Some(q),
            ..
        } => q.implied_equalities(),
        LogicalPlan::IndexLookup { key_value, .. } => key_value.clone(),
        LogicalPlan::Scan { .. } | LogicalPlan::Empty => Tuple::empty(),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Extend { input, .. } => qualification_equalities(input),
        LogicalPlan::Join { left, right } => {
            qualification_equalities(left).merged_with(&qualification_equalities(right))
        }
        // Aggregate outputs carry new attributes; the inputs' pinned
        // constants do not survive into them.
        LogicalPlan::UnionAll { .. } | LogicalPlan::Aggregate { .. } => Tuple::empty(),
    }
}

/// Whether two equality constraint sets contradict each other: some shared
/// attribute is pinned to different constants.
fn contradicts(a: &Tuple, b: &Tuple) -> bool {
    a.iter()
        .any(|(attr, v)| b.get(attr).map(|w| w != v).unwrap_or(false))
}

pub(super) fn rewrite(
    plan: LogicalPlan,
    catalog: &Catalog,
    above: &SelectionContext,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Guard { input, attrs } => {
            let deps = subtree_deps(&input, catalog);
            let below = subtree_context(&input);
            let ctx = merge_contexts(above, &below);
            let guard = TypeGuard::new(attrs.clone());
            match analyse_guard(&deps, &ctx, &guard, AxiomSystem::E) {
                GuardAnalysis::Redundant(derivation) => {
                    notes.push(RewriteNote::new(
                        "guard-elimination",
                        format!(
                            "guard for {} is redundant; justified by:\n{}",
                            attrs, derivation
                        ),
                    ));
                    rewrite(*input, catalog, above, notes)
                }
                GuardAnalysis::Unsatisfiable => {
                    notes.push(RewriteNote::new(
                        "guard-unsatisfiable",
                        format!(
                            "guard for {} can never hold under the selection; branch pruned",
                            attrs
                        ),
                    ));
                    LogicalPlan::Empty
                }
                GuardAnalysis::Necessary => LogicalPlan::Guard {
                    input: Box::new(rewrite(*input, catalog, above, notes)),
                    attrs,
                },
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            // Eliminate redundant / unsatisfiable IsPresent conjuncts inside
            // the predicate itself.  The context for judging a PRESENT
            // conjunct is everything known *besides* the guards themselves:
            // the constraints from above, from below, and from the
            // comparison conjuncts of this very predicate (a guard must not
            // justify itself).
            let deps = subtree_deps(&input, catalog);
            let below = subtree_context(&input);
            let own = context_without_guards(&predicate);
            let ctx_all = merge_contexts(&merge_contexts(above, &below), &own);
            let simplified = simplify_guards_in_predicate(&predicate, &deps, &ctx_all, notes);

            // Branch pruning: if the filter's equalities contradict the
            // qualification of the scans below, the result is empty.
            let filter_eq = simplified.implied_equalities();
            let qual_eq = qualification_equalities(&input);
            if contradicts(&filter_eq, &qual_eq) {
                notes.push(RewriteNote::new(
                    "variant-pruning",
                    format!(
                        "selection {} contradicts the branch qualification {}; branch removed",
                        simplified, qual_eq
                    ),
                ));
                return LogicalPlan::Empty;
            }

            // Push the filter's context downwards (for nested guards and
            // union branches).
            let mut ctx_for_children = above.clone().with_referenced(simplified.required_attrs());
            for (a, v) in simplified.implied_equalities().iter() {
                ctx_for_children = ctx_for_children.with_equality(a.clone(), v.clone());
            }
            let new_input = rewrite(*input, catalog, &ctx_for_children, notes);
            if simplified == Predicate::False {
                notes.push(RewriteNote::new(
                    "constant-folding",
                    "predicate is constant false",
                ));
                return LogicalPlan::Empty;
            }
            if simplified == Predicate::True {
                notes.push(RewriteNote::new(
                    "constant-folding",
                    "predicate is constant true",
                ));
                return new_input;
            }
            LogicalPlan::Filter {
                input: Box::new(new_input),
                predicate: simplified,
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut kept = Vec::new();
            for branch in inputs {
                let qual_eq = qualification_equalities(&branch);
                if contradicts(&above.equalities, &qual_eq) {
                    notes.push(RewriteNote::new(
                        "variant-pruning",
                        format!(
                            "union branch qualified by {} is excluded by the selection constraints {}",
                            qual_eq, above.equalities
                        ),
                    ));
                    continue;
                }
                kept.push(rewrite(branch, catalog, above, notes));
            }
            LogicalPlan::UnionAll { inputs: kept }
        }
        LogicalPlan::Join { left, right } => {
            // If the constraints established above (e.g. a selection on the
            // determining attribute) contradict a side's qualification, the
            // join produces nothing.
            for side in [&left, &right] {
                let qual_eq = qualification_equalities(side);
                if contradicts(&above.equalities, &qual_eq) {
                    notes.push(RewriteNote::new(
                        "join-pruning",
                        format!(
                            "join with a variant qualified by {} is excluded by the selection constraints {}",
                            qual_eq, above.equalities
                        ),
                    ));
                    return LogicalPlan::Empty;
                }
            }
            LogicalPlan::Join {
                left: Box::new(rewrite(*left, catalog, above, notes)),
                right: Box::new(rewrite(*right, catalog, above, notes)),
            }
        }
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, catalog, above, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => LogicalPlan::Extend {
            input: Box::new(rewrite(*input, catalog, above, notes)),
            attr,
            value,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            // Constraints from above refer to the aggregate's *output*
            // attributes; they must not justify rewrites below it.
            input: Box::new(rewrite(*input, catalog, &SelectionContext::none(), notes)),
            group_by,
            aggs,
        },
        leaf
        @ (LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } | LogicalPlan::Empty) => leaf,
    }
}

/// The selection context a predicate establishes through its comparison
/// conjuncts only — `PRESENT(...)` atoms are ignored so that a guard cannot
/// justify its own elimination.
fn context_without_guards(p: &Predicate) -> SelectionContext {
    fn required(p: &Predicate) -> AttrSet {
        match p {
            Predicate::Cmp { attr, .. } => attr.to_set(),
            Predicate::And(a, b) => required(a).union(&required(b)),
            Predicate::Or(a, b) => required(a).intersection(&required(b)),
            _ => AttrSet::empty(),
        }
    }
    fn equalities(p: &Predicate) -> Tuple {
        match p {
            Predicate::Cmp {
                attr,
                op: flexrel_algebra::predicate::CmpOp::Eq,
                value,
            } => Tuple::new().with(attr.clone(), value.clone()),
            Predicate::And(a, b) => equalities(a).merged_with(&equalities(b)),
            _ => Tuple::empty(),
        }
    }
    let mut ctx = SelectionContext::none().with_referenced(required(p));
    for (a, v) in equalities(p).iter() {
        ctx = ctx.with_equality(a.clone(), v.clone());
    }
    ctx
}

fn merge_contexts(a: &SelectionContext, b: &SelectionContext) -> SelectionContext {
    let mut out = a.clone().with_referenced(b.referenced.clone());
    for (attr, v) in b.equalities.iter() {
        out = out.with_equality(attr.clone(), v.clone());
    }
    out
}

/// Replaces redundant `PRESENT(...)` conjuncts by `True` and unsatisfiable
/// ones by `False`, then simplifies.
fn simplify_guards_in_predicate(
    predicate: &Predicate,
    deps: &DependencySet,
    ctx: &SelectionContext,
    notes: &mut Vec<RewriteNote>,
) -> Predicate {
    fn walk(
        p: &Predicate,
        deps: &DependencySet,
        ctx: &SelectionContext,
        notes: &mut Vec<RewriteNote>,
    ) -> Predicate {
        match p {
            Predicate::IsPresent(attrs) => {
                match analyse_guard(deps, ctx, &TypeGuard::new(attrs.clone()), AxiomSystem::E) {
                    GuardAnalysis::Redundant(d) => {
                        notes.push(RewriteNote::new(
                            "guard-elimination",
                            format!("PRESENT({}) is redundant; justified by:\n{}", attrs, d),
                        ));
                        Predicate::True
                    }
                    GuardAnalysis::Unsatisfiable => {
                        notes.push(RewriteNote::new(
                            "guard-unsatisfiable",
                            format!("PRESENT({}) can never hold under the selection", attrs),
                        ));
                        Predicate::False
                    }
                    GuardAnalysis::Necessary => p.clone(),
                }
            }
            Predicate::And(a, b) => walk(a, deps, ctx, notes).and(walk(b, deps, ctx, notes)),
            // Inside disjunctions and negations the conjunction context does
            // not apply; leave them untouched.
            other => other.clone(),
        }
    }
    walk(predicate, deps, ctx, notes).simplify()
}

/// The partition-pruning pass: pushes what the operators *above* a scan
/// guarantee about qualifying tuples — attributes that must be present
/// (selections via [`Predicate::required_attrs`], explicit type guards) and
/// attributes pinned to constants by equality — down into a
/// [`ShapePredicate`] on the scan, so the executor can skip whole heap
/// partitions.
///
/// The context propagates through shape-preserving operators (filters,
/// guards, projections, union branches) and is cut off where tuples gain
/// attributes from elsewhere: an [`LogicalPlan::Extend`] removes its own
/// attribute from the context (the scan's tuples need not carry it), and a
/// join resets the context for both sides (a required attribute may be
/// contributed by the other side).
///
/// Besides pure presence, the pass performs the AD-driven step of §3.1.2 at
/// the storage level: when the selection pins an EAD's determining
/// attributes `X` to constants, Def. 2.1 fixes the exact `Y`-overlap
/// (`attr(t) ∩ Y = Yi`) of every qualifying tuple, so all partitions with a
/// different overlap are excluded — the physical counterpart of the
/// variant pruning the rewrite pass performs on qualified fragments.
pub(super) fn prune_scans(
    plan: LogicalPlan,
    catalog: &Catalog,
    required: &AttrSet,
    equalities: &Tuple,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let req = required.union(&predicate.required_attrs());
            let eq = equalities.merged_with(&predicate.implied_equalities());
            LogicalPlan::Filter {
                input: Box::new(prune_scans(*input, catalog, &req, &eq, notes)),
                predicate,
            }
        }
        LogicalPlan::Guard { input, attrs } => {
            let req = required.union(&attrs);
            LogicalPlan::Guard {
                input: Box::new(prune_scans(*input, catalog, &req, equalities, notes)),
                attrs,
            }
        }
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(prune_scans(*input, catalog, required, equalities, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => {
            // The extended attribute is present in every output tuple no
            // matter what the input looked like; constraints on it must not
            // reach the scan.
            let mut req = required.clone();
            req.remove(&Attr::new(&attr));
            let mut eq = equalities.clone();
            eq.remove(&Attr::new(&attr));
            LogicalPlan::Extend {
                input: Box::new(prune_scans(*input, catalog, &req, &eq, notes)),
                attr,
                value,
            }
        }
        LogicalPlan::Join { left, right } => LogicalPlan::Join {
            // A join merges tuples: an attribute required above may be
            // supplied by either side, so nothing can be pushed across.
            left: Box::new(prune_scans(
                *left,
                catalog,
                &AttrSet::empty(),
                &Tuple::empty(),
                notes,
            )),
            right: Box::new(prune_scans(
                *right,
                catalog,
                &AttrSet::empty(),
                &Tuple::empty(),
                notes,
            )),
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| prune_scans(p, catalog, required, equalities, notes))
                .collect(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Grouping is a type guard: a row not defined on all of
            // `group_by` belongs to no group, so the grouping attributes
            // are required below.  Context from above refers to the
            // aggregate's output attributes and is dropped.
            LogicalPlan::Aggregate {
                input: Box::new(prune_scans(
                    *input,
                    catalog,
                    &group_by,
                    &Tuple::empty(),
                    notes,
                )),
                group_by,
                aggs,
            }
        }
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => {
            // The scan's own qualification holds for every tuple it yields,
            // so it contributes to the shape predicate as well.
            let mut req = required.clone();
            let mut eq = equalities.clone();
            if let Some(q) = &qualification {
                req.extend_with(&q.required_attrs());
                eq = eq.merged_with(&q.implied_equalities());
            }
            let pred = catalog
                .get(&relation)
                .ok()
                .and_then(|def| shape_predicate_for(def, &req, &eq));
            if let Some(p) = &pred {
                notes.push(RewriteNote::new(
                    "partition-pruning",
                    format!("scan of {} restricted to partitions with {}", relation, p),
                ));
            }
            // A shape predicate already on the scan (hand-built plans) is
            // result-affecting and must be preserved: conjoin rather than
            // replace.
            let shape = match (pred, shape) {
                (Some(mut p), Some(existing)) => {
                    p.required.extend_with(&existing.required);
                    p.regions.extend(existing.regions);
                    Some(p)
                }
                (p, existing) => p.or(existing),
            };
            LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            }
        }
        LogicalPlan::IndexLookup {
            relation,
            key,
            key_value,
            shapes,
        } => {
            // The lookup's own key equalities hold for every yielded tuple,
            // exactly like a scan qualification: they contribute required
            // attributes and pinned EAD determinants to the shape predicate.
            let req = required.union(&key);
            let eq = equalities.merged_with(&key_value);
            let pred = catalog
                .get(&relation)
                .ok()
                .and_then(|def| shape_predicate_for(def, &req, &eq));
            if let Some(p) = &pred {
                notes.push(RewriteNote::new(
                    "partition-pruning",
                    format!(
                        "index lookup on {} restricted to partitions with {}",
                        relation, p
                    ),
                ));
            }
            let shapes = match (pred, shapes) {
                (Some(mut p), Some(existing)) => {
                    p.required.extend_with(&existing.required);
                    p.regions.extend(existing.regions);
                    Some(p)
                }
                (p, existing) => p.or(existing),
            };
            LogicalPlan::IndexLookup {
                relation,
                key,
                key_value,
                shapes,
            }
        }
        leaf @ LogicalPlan::Empty => leaf,
    }
}

/// Builds the shape predicate for one scan from the accumulated context, or
/// `None` when nothing can be pruned.
fn shape_predicate_for(
    def: &RelationDef,
    required: &AttrSet,
    equalities: &Tuple,
) -> Option<ShapePredicate> {
    let mut regions: Vec<(AttrSet, AttrSet)> = Vec::new();
    let pinned = equalities.attrs();
    for ead in def.deps.eads() {
        if ead.lhs().is_subset(&pinned) {
            let x_value = equalities.project(ead.lhs());
            let yi = ead
                .variant_for(&x_value)
                .map(|(_, v)| v.attrs.clone())
                .unwrap_or_else(AttrSet::empty);
            regions.push((ead.rhs().clone(), yi));
        }
    }
    let pred = ShapePredicate {
        required: required.clone(),
        regions,
    };
    if pred.is_trivial() {
        None
    } else {
        Some(pred)
    }
}

/// Final cleanup: empty inputs propagate upwards.
pub(super) fn simplify_empties(plan: LogicalPlan, notes: &mut Vec<RewriteNote>) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project { input, attrs } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Project {
                    input: Box::new(input),
                    attrs,
                }
            }
        }
        LogicalPlan::Guard { input, attrs } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Guard {
                    input: Box::new(input),
                    attrs,
                }
            }
        }
        LogicalPlan::Extend { input, attr, value } => {
            let input = simplify_empties(*input, notes);
            if matches!(input, LogicalPlan::Empty) {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Extend {
                    input: Box::new(input),
                    attr,
                    value,
                }
            }
        }
        LogicalPlan::Join { left, right } => {
            let left = simplify_empties(*left, notes);
            let right = simplify_empties(*right, notes);
            if matches!(left, LogicalPlan::Empty) || matches!(right, LogicalPlan::Empty) {
                notes.push(RewriteNote::new(
                    "empty-propagation",
                    "join with an empty input removed",
                ));
                LogicalPlan::Empty
            } else {
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let kept: Vec<LogicalPlan> = inputs
                .into_iter()
                .map(|p| simplify_empties(p, notes))
                .filter(|p| !matches!(p, LogicalPlan::Empty))
                .collect();
            match kept.len() {
                0 => LogicalPlan::Empty,
                1 => kept.into_iter().next().expect("one element"),
                _ => LogicalPlan::UnionAll { inputs: kept },
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = simplify_empties(*input, notes);
            // A *grouped* aggregate over nothing has no groups; a global
            // aggregate over nothing still emits its single row
            // (`COUNT(*) = 0`), so the node must survive an empty input.
            if matches!(input, LogicalPlan::Empty) && !group_by.is_empty() {
                LogicalPlan::Empty
            } else {
                LogicalPlan::Aggregate {
                    input: Box::new(input),
                    group_by,
                    aggs,
                }
            }
        }
        leaf => leaf,
    }
}
