//! The statistics-backed cost pass: join ordering.
//!
//! For bushy/left-deep join trees of three or more inputs, the pass
//! flattens the tree into its leaves, estimates each leaf's cardinality
//! ([`crate::exec::estimate_rows`], which consults the per-partition
//! histograms and distinct counts of [`flexrel_storage::TableStats`]), and
//! rebuilds a left-deep tree greedily: start from the smallest leaf, then
//! repeatedly attach the **connected** leaf (one sharing an attribute with
//! the accumulated prefix) minimizing the estimated pair output
//! `|L| · |R| / max(distinct(a))` over the shared attributes `a` — the
//! textbook equi-join estimate, here justified because the flexible-tuple
//! compatibility merge on shared attributes behaves exactly like an
//! equi-join on them.  Leaves sharing no attribute (cross products) are
//! attached last.
//!
//! The pass is safe for *any* order: the compatibility merge is commutative
//! and associative, including genuine cross products, so reordering never
//! changes the result multiset — only how large the intermediates are.

use flexrel_core::attr::AttrSet;
use flexrel_storage::Database;

use crate::exec;
use crate::logical::LogicalPlan;

use super::RewriteNote;

/// Reorders join trees of ≥ 3 inputs by estimated intermediate size.
/// Leaves the plan untouched (and emits no note) when fewer than three
/// inputs join, when some leaf has no estimate, or when the greedy order
/// coincides with the existing one.
pub(super) fn order_joins(
    plan: LogicalPlan,
    db: &Database,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Join { left, right } => {
            let mut leaves = Vec::new();
            collect_join_leaves(LogicalPlan::Join { left, right }, &mut leaves);
            // Order the children's own sub-joins first (a leaf here is any
            // non-Join node; its subtree may still contain joins below a
            // projection or aggregate).
            let leaves: Vec<LogicalPlan> = leaves
                .into_iter()
                .map(|l| order_joins_in_children(l, db, notes))
                .collect();
            if leaves.len() < 3 {
                return rebuild_left_deep(leaves);
            }
            let ests: Vec<Option<usize>> =
                leaves.iter().map(|l| exec::estimate_rows(l, db)).collect();
            if ests.iter().any(|e| e.is_none()) {
                return rebuild_left_deep(leaves);
            }
            let order = greedy_order(&leaves, &ests, db);
            if order.iter().enumerate().all(|(i, &j)| i == j) {
                return rebuild_left_deep(leaves);
            }
            notes.push(RewriteNote::new(
                "join-ordering",
                format!(
                    "{} join inputs reordered by estimated intermediate size: {:?}",
                    order.len(),
                    order
                ),
            ));
            let mut by_index: Vec<Option<LogicalPlan>> = leaves.into_iter().map(Some).collect();
            rebuild_left_deep(
                order
                    .into_iter()
                    .map(|i| by_index[i].take().expect("each leaf used once"))
                    .collect(),
            )
        }
        other => order_joins_in_children(other, db, notes),
    }
}

/// Applies [`order_joins`] below a non-join node.
fn order_joins_in_children(
    plan: LogicalPlan,
    db: &Database,
    notes: &mut Vec<RewriteNote>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(order_joins(*input, db, notes)),
            predicate,
        },
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(order_joins(*input, db, notes)),
            attrs,
        },
        LogicalPlan::Guard { input, attrs } => LogicalPlan::Guard {
            input: Box::new(order_joins(*input, db, notes)),
            attrs,
        },
        LogicalPlan::Extend { input, attr, value } => LogicalPlan::Extend {
            input: Box::new(order_joins(*input, db, notes)),
            attr,
            value,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(order_joins(*input, db, notes)),
            group_by,
            aggs,
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| order_joins(p, db, notes))
                .collect(),
        },
        join @ LogicalPlan::Join { .. } => order_joins(join, db, notes),
        leaf => leaf,
    }
}

/// Flattens a join tree into its non-join leaves, in left-to-right order.
fn collect_join_leaves(plan: LogicalPlan, out: &mut Vec<LogicalPlan>) {
    match plan {
        LogicalPlan::Join { left, right } => {
            collect_join_leaves(*left, out);
            collect_join_leaves(*right, out);
        }
        other => out.push(other),
    }
}

fn rebuild_left_deep(leaves: Vec<LogicalPlan>) -> LogicalPlan {
    let mut iter = leaves.into_iter();
    let first = iter.next().expect("a join has at least two leaves");
    iter.fold(first, |acc, leaf| acc.join(leaf))
}

/// The distinct count of an attribute in the relation a leaf reads, when
/// statistics are available.
fn leaf_distinct(plan: &LogicalPlan, attr: &str, db: &Database) -> Option<u64> {
    let rel = match plan {
        LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexLookup { relation, .. } => relation,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Guard { input, .. }
        | LogicalPlan::Project { input, .. } => return leaf_distinct(input, attr, db),
        _ => return None,
    };
    db.table_stats(rel).ok()?.distinct(attr)
}

/// Greedy left-deep ordering: smallest leaf first, then always the
/// cheapest *connected* extension; disconnected leaves (cross products)
/// only when nothing connected remains.
fn greedy_order(leaves: &[LogicalPlan], ests: &[Option<usize>], db: &Database) -> Vec<usize> {
    let attrs: Vec<AttrSet> = leaves.iter().map(|l| exec::plan_attrs(l, db)).collect();

    // The estimated output of extending a prefix (whose leaves are
    // `members`) by leaf `i`: rows·rows / max(distinct(a)) over the shared
    // attributes, each attribute's distinct count taken as the max over
    // every participating leaf that has statistics for it (containment
    // assumption).
    let extend_estimate = |members: &[usize], acc_rows: u128, acc_attrs: &AttrSet, i: usize| {
        let cross = acc_rows.saturating_mul(ests[i].unwrap_or(1) as u128);
        let common = acc_attrs.intersection(&attrs[i]);
        if common.is_empty() {
            return cross;
        }
        let mut denom = 1u128;
        for a in common.iter() {
            let d = members
                .iter()
                .copied()
                .chain(std::iter::once(i))
                .filter_map(|j| leaf_distinct(&leaves[j], a.name(), db))
                .max()
                .unwrap_or(1);
            denom = denom.max(d as u128);
        }
        (cross / denom).max(1)
    };

    let mut remaining: Vec<usize> = (0..leaves.len()).collect();
    let start = *remaining
        .iter()
        .min_by_key(|&&i| ests[i].unwrap_or(usize::MAX))
        .expect("non-empty");
    remaining.retain(|&i| i != start);
    let mut order = vec![start];
    let mut acc_attrs = attrs[start].clone();
    let mut acc_rows = ests[start].unwrap_or(1) as u128;
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .map(|&i| {
                let cost = extend_estimate(&order, acc_rows, &acc_attrs, i);
                let connected = !acc_attrs.intersection(&attrs[i]).is_empty();
                (i, connected, cost)
            })
            // Connected extensions strictly before cross products, then by
            // estimated output.
            .min_by_key(|&(_, connected, cost)| (!connected, cost))
            .map(|(i, _, _)| i)
            .expect("non-empty");
        remaining.retain(|&i| i != next);
        acc_rows = extend_estimate(&order, acc_rows, &acc_attrs, next);
        acc_attrs = acc_attrs.union(&attrs[next]);
        order.push(next);
    }
    order
}
