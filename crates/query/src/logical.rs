//! Logical query plans over flexible relations.

use std::fmt;

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;

/// An aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(a)`: number of rows (rows defined on `a`).
    Count,
    /// `SUM(a)`: sum of the values of `a` over rows defined on it.  Integer
    /// sums wrap (two's complement), mirroring a plain `i64` fold.
    Sum,
    /// `MIN(a)` under [`Value`]'s total order.
    Min,
    /// `MAX(a)` under [`Value`]'s total order.
    Max,
}

impl AggFunc {
    /// The lowercase keyword (`count`, `sum`, …).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate expression of an [`LogicalPlan::Aggregate`] node.
///
/// Flexible-relation semantics: an aggregate over attribute `a` folds only
/// the input rows *defined on* `a` (presence is a shape-level fact, so no
/// per-row null checks are involved); `COUNT(*)` (`input: None`) counts
/// every row.  A group none of whose rows is defined on `a` simply omits
/// the output attribute — the result is a flexible tuple, like any other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated attribute; `None` is `COUNT(*)`.
    pub input: Option<Attr>,
    /// The attribute the result is emitted under.
    pub output: Attr,
}

impl AggExpr {
    /// An aggregate with the conventional output name: `count` for
    /// `COUNT(*)`, otherwise `<func>-<attr>` (e.g. `sum-salary`).
    pub fn new(func: AggFunc, input: Option<Attr>) -> Self {
        let output = match &input {
            None => Attr::new("count"),
            Some(a) => Attr::new(format!("{}-{}", func.name(), a.name())),
        };
        AggExpr {
            func,
            input,
            output,
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            None => write!(f, "{}(*)", self.func.name()),
            Some(a) => write!(f, "{}({})", self.func.name(), a.name()),
        }
    }
}

/// A predicate over tuple *shapes* (`attr(t)`), attached to a
/// [`LogicalPlan::Scan`] by the optimizer's partition-pruning pass.
///
/// The executor evaluates it once per heap partition (not per tuple): a
/// partition whose shape is not admitted is skipped entirely.  Two kinds of
/// constraints are combined:
///
/// * `required ⊆ shape` — attributes every qualifying tuple must be defined
///   on (from [`Predicate::required_attrs`] of the selections above the
///   scan and the attribute sets of explicit type guards);
/// * `shape ∩ Y = Yi` *regions* — derived from an
///   [`Ead`](flexrel_core::dep::Ead) `<X --exp.attr--> Y, {Vi --exp.attr-->
///   Yi}>` whose determinant `X` is pinned to constants by the selection:
///   every stored tuple with that `X`-value carries exactly `Yi` of `Y`
///   (Def. 2.1, enforced at insert time), so partitions with any other
///   `Y`-overlap cannot contribute.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ShapePredicate {
    /// Attributes that must be present in the shape.
    pub required: AttrSet,
    /// Exact-overlap constraints `(Y, Yi)`: the shape must satisfy
    /// `shape ∩ Y = Yi`.
    pub regions: Vec<(AttrSet, AttrSet)>,
}

impl ShapePredicate {
    /// Whether a partition of the given shape can contain qualifying tuples.
    pub fn admits(&self, shape: &AttrSet) -> bool {
        self.required.is_subset(shape)
            && self
                .regions
                .iter()
                .all(|(y, yi)| shape.intersection(y) == *yi)
    }

    /// Whether the predicate admits every shape (nothing to prune).
    pub fn is_trivial(&self) -> bool {
        self.required.is_empty() && self.regions.is_empty()
    }
}

impl fmt::Display for ShapePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if !self.required.is_empty() {
            write!(f, "shape ⊇ {}", self.required)?;
            first = false;
        }
        for (y, yi) in &self.regions {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "shape ∩ {} = {}", y, yi)?;
            first = false;
        }
        Ok(())
    }
}

/// A logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// A statically-known-empty result (produced by the optimizer when a
    /// branch is proven unsatisfiable).
    Empty,
    /// Scan of a stored relation.  `qualification` is a predicate known to
    /// hold for every tuple of the relation (a *qualified relation* in the
    /// sense of Ceri/Pelagatti); the optimizer uses it to prune branches.
    /// `shape` is an optional shape predicate the optimizer pushes down so
    /// the executor can skip whole heap partitions.
    Scan {
        /// The stored relation to scan.
        relation: String,
        /// A predicate known to hold for every tuple of the relation.
        qualification: Option<Predicate>,
        /// Partition-pruning predicate over tuple shapes.
        shape: Option<ShapePredicate>,
    },
    /// An indexed equality lookup — the access-path alternative to a scan,
    /// produced by the optimizer's access-path pass when a stored index
    /// covers the equality constraints of a selection.  Yields exactly the
    /// tuples whose projection onto `key` equals `key_value`.
    IndexLookup {
        /// The stored relation to probe.
        relation: String,
        /// The indexed attribute set (the probe key).
        key: AttrSet,
        /// The constant key value, a tuple over exactly `key`.
        key_value: Tuple,
        /// Partition-pruning predicate, applied per matching rid via its
        /// [`ShapeId`](flexrel_core::tuple::ShapeId) — shape pruning composes
        /// with the index probe instead of being lost to it.
        shapes: Option<ShapePredicate>,
    },
    /// Selection.
    Filter {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// The selection predicate.
        predicate: Predicate,
    },
    /// Projection onto an attribute set.
    Project {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// The attributes to project onto.
        attrs: AttrSet,
    },
    /// An explicit retrieval-side type guard: keep only tuples defined on
    /// all the listed attributes.
    Guard {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// The attributes whose presence is asserted.
        attrs: AttrSet,
    },
    /// Natural join of two inputs.
    Join {
        /// The left input.
        left: Box<LogicalPlan>,
        /// The right input.
        right: Box<LogicalPlan>,
    },
    /// Outer union of several inputs (heterogeneous shapes allowed).
    UnionAll {
        /// The union branches.
        inputs: Vec<LogicalPlan>,
    },
    /// Extension by a constant attribute.
    Extend {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// The attribute to add.
        attr: String,
        /// The constant value of the added attribute.
        value: Value,
    },
    /// Grouped aggregation: partitions the input by the values of
    /// `group_by` (rows not defined on all of `group_by` are excluded —
    /// grouping is a type guard) and folds each `agg` over its group.
    /// With an empty `group_by` there is exactly one output row.
    Aggregate {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// The grouping attributes (empty = one global group).
        group_by: AttrSet,
        /// The aggregates to compute.
        aggs: Vec<AggExpr>,
    },
}

impl LogicalPlan {
    /// Scan of a relation without qualification.
    pub fn scan(relation: impl Into<String>) -> Self {
        LogicalPlan::Scan {
            relation: relation.into(),
            qualification: None,
            shape: None,
        }
    }

    /// Scan of a qualified relation.
    pub fn qualified_scan(relation: impl Into<String>, qualification: Predicate) -> Self {
        LogicalPlan::Scan {
            relation: relation.into(),
            qualification: Some(qualification),
            shape: None,
        }
    }

    /// Number of scan nodes carrying a non-trivial shape predicate (used by
    /// tests and the experiment harness to show the optimizer pushed
    /// partition pruning down).
    pub fn pruned_scan_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::IndexLookup { .. } => 0,
            LogicalPlan::Scan { shape, .. } => {
                shape.as_ref().map(|s| !s.is_trivial()).unwrap_or(false) as usize
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Guard { input, .. }
            | LogicalPlan::Extend { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.pruned_scan_count(),
            LogicalPlan::Join { left, right } => {
                left.pruned_scan_count() + right.pruned_scan_count()
            }
            LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| p.pruned_scan_count()).sum(),
        }
    }

    /// Wraps the plan in a filter.
    pub fn filter(self, predicate: Predicate) -> Self {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps the plan in a projection.
    pub fn project(self, attrs: impl Into<AttrSet>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            attrs: attrs.into(),
        }
    }

    /// Wraps the plan in a type guard.
    pub fn guard(self, attrs: impl Into<AttrSet>) -> Self {
        LogicalPlan::Guard {
            input: Box::new(self),
            attrs: attrs.into(),
        }
    }

    /// Joins the plan with another plan.
    pub fn join(self, right: LogicalPlan) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Wraps the plan in a grouped aggregation.
    pub fn aggregate(self, group_by: impl Into<AttrSet>, aggs: Vec<AggExpr>) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by.into(),
            aggs,
        }
    }

    /// Number of index-lookup nodes (used by tests and the experiment
    /// harness to show the optimizer chose an index access path).
    pub fn index_lookup_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } => 0,
            LogicalPlan::IndexLookup { .. } => 1,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Guard { input, .. }
            | LogicalPlan::Extend { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.index_lookup_count(),
            LogicalPlan::Join { left, right } => {
                left.index_lookup_count() + right.index_lookup_count()
            }
            LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| p.index_lookup_count()).sum(),
        }
    }

    /// Number of nodes in the plan.
    pub fn node_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } => 1,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Guard { input, .. }
            | LogicalPlan::Extend { input, .. }
            | LogicalPlan::Aggregate { input, .. } => 1 + input.node_count(),
            LogicalPlan::Join { left, right } => 1 + left.node_count() + right.node_count(),
            LogicalPlan::UnionAll { inputs } => {
                1 + inputs.iter().map(|p| p.node_count()).sum::<usize>()
            }
        }
    }

    /// Number of guard nodes (used by tests and the experiment harness to
    /// show the optimizer removed them).
    pub fn guard_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } => 0,
            LogicalPlan::Guard { input, .. } => 1 + input.guard_count(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Extend { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.guard_count(),
            LogicalPlan::Join { left, right } => left.guard_count() + right.guard_count(),
            LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| p.guard_count()).sum(),
        }
    }

    /// Number of join nodes.
    pub fn join_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } => 0,
            LogicalPlan::Join { left, right } => 1 + left.join_count() + right.join_count(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Guard { input, .. }
            | LogicalPlan::Extend { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.join_count(),
            LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| p.join_count()).sum(),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Empty => writeln!(f, "{}Empty", pad),
            LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            } => {
                write!(f, "{}Scan {}", pad, relation)?;
                if let Some(q) = qualification {
                    write!(f, " [qualified by {}]", q)?;
                }
                match shape {
                    Some(s) if !s.is_trivial() => write!(f, " [partitions: {}]", s)?,
                    _ => {}
                }
                writeln!(f)
            }
            LogicalPlan::IndexLookup {
                relation,
                key,
                key_value,
                shapes,
            } => {
                write!(
                    f,
                    "{}IndexLookup {} [{} = {}]",
                    pad, relation, key, key_value
                )?;
                match shapes {
                    Some(s) if !s.is_trivial() => write!(f, " [partitions: {}]", s)?,
                    _ => {}
                }
                writeln!(f)
            }
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{}Filter {}", pad, predicate)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Project { input, attrs } => {
                writeln!(f, "{}Project {}", pad, attrs)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Guard { input, attrs } => {
                writeln!(f, "{}Guard {}", pad, attrs)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Join { left, right } => {
                writeln!(f, "{}Join", pad)?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            LogicalPlan::UnionAll { inputs } => {
                writeln!(f, "{}UnionAll", pad)?;
                for i in inputs {
                    i.fmt_indent(f, indent + 1)?;
                }
                Ok(())
            }
            LogicalPlan::Extend { input, attr, value } => {
                writeln!(f, "{}Extend {} := {}", pad, attr, value)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                write!(f, "{}Aggregate", pad)?;
                if !group_by.is_empty() {
                    write!(f, " group by {}", group_by)?;
                }
                for (i, a) in aggs.iter().enumerate() {
                    write!(f, "{}{}", if i == 0 { " " } else { ", " }, a)?;
                }
                writeln!(f)?;
                input.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;

    fn sample() -> LogicalPlan {
        LogicalPlan::scan("employee")
            .filter(Predicate::gt("salary", 5000))
            .guard(attrs!["typing-speed"])
            .project(attrs!["empno", "typing-speed"])
    }

    #[test]
    fn builders_and_counters() {
        let p = sample();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.guard_count(), 1);
        assert_eq!(p.join_count(), 0);
        let j = LogicalPlan::scan("a").join(LogicalPlan::scan("b"));
        assert_eq!(j.join_count(), 1);
        assert_eq!(j.node_count(), 3);
        let u = LogicalPlan::UnionAll {
            inputs: vec![sample(), LogicalPlan::Empty],
        };
        assert_eq!(u.node_count(), 6);
        assert_eq!(u.guard_count(), 1);
    }

    #[test]
    fn display_is_an_explain_tree() {
        let p = sample();
        let s = p.to_string();
        assert!(s.contains("Project {empno, typing-speed}"));
        assert!(s.contains("Guard {typing-speed}"));
        assert!(s.contains("Filter salary > 5000"));
        assert!(s.contains("  Scan employee") || s.contains("Scan employee"));
        let q = LogicalPlan::qualified_scan(
            "detail",
            Predicate::eq("jobtype", flexrel_core::value::Value::tag("salesman")),
        );
        assert!(q.to_string().contains("qualified by"));
    }
}
