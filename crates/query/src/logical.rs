//! Logical query plans over flexible relations.

use std::fmt;

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::AttrSet;
use flexrel_core::value::Value;

/// A logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// A statically-known-empty result (produced by the optimizer when a
    /// branch is proven unsatisfiable).
    Empty,
    /// Scan of a stored relation.  `qualification` is a predicate known to
    /// hold for every tuple of the relation (a *qualified relation* in the
    /// sense of Ceri/Pelagatti); the optimizer uses it to prune branches.
    Scan {
        relation: String,
        qualification: Option<Predicate>,
    },
    /// Selection.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Predicate,
    },
    /// Projection onto an attribute set.
    Project {
        input: Box<LogicalPlan>,
        attrs: AttrSet,
    },
    /// An explicit retrieval-side type guard: keep only tuples defined on
    /// all the listed attributes.
    Guard {
        input: Box<LogicalPlan>,
        attrs: AttrSet,
    },
    /// Natural join of two inputs.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Outer union of several inputs (heterogeneous shapes allowed).
    UnionAll { inputs: Vec<LogicalPlan> },
    /// Extension by a constant attribute.
    Extend {
        input: Box<LogicalPlan>,
        attr: String,
        value: Value,
    },
}

impl LogicalPlan {
    /// Scan of a relation without qualification.
    pub fn scan(relation: impl Into<String>) -> Self {
        LogicalPlan::Scan {
            relation: relation.into(),
            qualification: None,
        }
    }

    /// Scan of a qualified relation.
    pub fn qualified_scan(relation: impl Into<String>, qualification: Predicate) -> Self {
        LogicalPlan::Scan {
            relation: relation.into(),
            qualification: Some(qualification),
        }
    }

    /// Wraps the plan in a filter.
    pub fn filter(self, predicate: Predicate) -> Self {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps the plan in a projection.
    pub fn project(self, attrs: impl Into<AttrSet>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            attrs: attrs.into(),
        }
    }

    /// Wraps the plan in a type guard.
    pub fn guard(self, attrs: impl Into<AttrSet>) -> Self {
        LogicalPlan::Guard {
            input: Box::new(self),
            attrs: attrs.into(),
        }
    }

    /// Joins the plan with another plan.
    pub fn join(self, right: LogicalPlan) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Number of nodes in the plan.
    pub fn node_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } => 1,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Guard { input, .. }
            | LogicalPlan::Extend { input, .. } => 1 + input.node_count(),
            LogicalPlan::Join { left, right } => 1 + left.node_count() + right.node_count(),
            LogicalPlan::UnionAll { inputs } => {
                1 + inputs.iter().map(|p| p.node_count()).sum::<usize>()
            }
        }
    }

    /// Number of guard nodes (used by tests and the experiment harness to
    /// show the optimizer removed them).
    pub fn guard_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Guard { input, .. } => 1 + input.guard_count(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Extend { input, .. } => input.guard_count(),
            LogicalPlan::Join { left, right } => left.guard_count() + right.guard_count(),
            LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| p.guard_count()).sum(),
        }
    }

    /// Number of join nodes.
    pub fn join_count(&self) -> usize {
        match self {
            LogicalPlan::Empty | LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Join { left, right } => 1 + left.join_count() + right.join_count(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Guard { input, .. }
            | LogicalPlan::Extend { input, .. } => input.join_count(),
            LogicalPlan::UnionAll { inputs } => inputs.iter().map(|p| p.join_count()).sum(),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Empty => writeln!(f, "{}Empty", pad),
            LogicalPlan::Scan {
                relation,
                qualification,
            } => match qualification {
                Some(q) => writeln!(f, "{}Scan {} [qualified by {}]", pad, relation, q),
                None => writeln!(f, "{}Scan {}", pad, relation),
            },
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{}Filter {}", pad, predicate)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Project { input, attrs } => {
                writeln!(f, "{}Project {}", pad, attrs)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Guard { input, attrs } => {
                writeln!(f, "{}Guard {}", pad, attrs)?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Join { left, right } => {
                writeln!(f, "{}Join", pad)?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            LogicalPlan::UnionAll { inputs } => {
                writeln!(f, "{}UnionAll", pad)?;
                for i in inputs {
                    i.fmt_indent(f, indent + 1)?;
                }
                Ok(())
            }
            LogicalPlan::Extend { input, attr, value } => {
                writeln!(f, "{}Extend {} := {}", pad, attr, value)?;
                input.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;

    fn sample() -> LogicalPlan {
        LogicalPlan::scan("employee")
            .filter(Predicate::gt("salary", 5000))
            .guard(attrs!["typing-speed"])
            .project(attrs!["empno", "typing-speed"])
    }

    #[test]
    fn builders_and_counters() {
        let p = sample();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.guard_count(), 1);
        assert_eq!(p.join_count(), 0);
        let j = LogicalPlan::scan("a").join(LogicalPlan::scan("b"));
        assert_eq!(j.join_count(), 1);
        assert_eq!(j.node_count(), 3);
        let u = LogicalPlan::UnionAll {
            inputs: vec![sample(), LogicalPlan::Empty],
        };
        assert_eq!(u.node_count(), 6);
        assert_eq!(u.guard_count(), 1);
    }

    #[test]
    fn display_is_an_explain_tree() {
        let p = sample();
        let s = p.to_string();
        assert!(s.contains("Project {empno, typing-speed}"));
        assert!(s.contains("Guard {typing-speed}"));
        assert!(s.contains("Filter salary > 5000"));
        assert!(s.contains("  Scan employee") || s.contains("Scan employee"));
        let q = LogicalPlan::qualified_scan(
            "detail",
            Predicate::eq("jobtype", flexrel_core::value::Value::tag("salesman")),
        );
        assert!(q.to_string().contains("qualified by"));
    }
}
