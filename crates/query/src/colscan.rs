//! Predicates compiled to vectorized column operations.
//!
//! A scan's qualification (plus any filter fused onto it) is row-oriented: a
//! [`Predicate`] evaluated tuple by tuple.  Over the column-major partitions
//! of [`flexrel_storage::ColumnHeap`] the same predicate can instead be
//! *compiled once per partition* and evaluated segment-at-a-time:
//!
//! 1. **Shape-level folding.**  Within a partition every tuple has the
//!    partition's shape, so the shape-dependent parts of the predicate are
//!    constants: a comparison on an attribute the shape lacks is `false`
//!    for every row, a type guard `IsPresent(X)` is `X ⊆ shape`.  The
//!    compiler folds these through `And`/`Or`/`Not`; whole partitions whose
//!    predicate folds to `false` are skipped without touching a segment —
//!    the same pruning the optimizer's [`ShapePredicate`] performs, now
//!    guaranteed for arbitrary residual predicates.
//! 2. **Vectorized comparison.**  What remains is a tree over column
//!    comparisons ([`flexrel_storage::ColCmp`]): each leaf evaluates one
//!    kernel over a 1024-slot segment into a [`SelVec`] selection bitmap,
//!    and the boolean structure combines bitmaps word-at-a-time.
//! 3. **Late materialization.**  Only the rows whose selection bit survives
//!    (masked by the segment's live bitmap) are materialized into [`Tuple`]s.
//!
//! The result is bit-for-bit the row semantics: `compile` mirrors
//! [`Predicate::eval`] exactly (including the "comparison on a missing
//! attribute is `false`" rule and kind-strict equality), which the
//! differential test suite checks against the row-store oracle.
//!
//! [`ShapePredicate`]: crate::logical::ShapePredicate

use std::sync::Arc;

use flexrel_algebra::predicate::{CmpOp, Predicate};
use flexrel_core::attr::Attr;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_storage::{ColCmp, ColKind, ColumnHeap, ColumnSegment, Partition, SelVec};

use crate::agg::{Acc, GroupedAggs};
use crate::logical::{AggExpr, AggFunc};

fn col_cmp(op: CmpOp) -> ColCmp {
    match op {
        CmpOp::Eq => ColCmp::Eq,
        CmpOp::Ne => ColCmp::Ne,
        CmpOp::Lt => ColCmp::Lt,
        CmpOp::Le => ColCmp::Le,
        CmpOp::Gt => ColCmp::Gt,
        CmpOp::Ge => ColCmp::Ge,
    }
}

/// A predicate tree over column comparisons — the non-constant residue of
/// compiling a [`Predicate`] against one partition's shape.
#[derive(Clone, Debug)]
pub enum Node {
    /// `column <cmp> constant` — one kernel call per segment.
    Cmp {
        /// Index of the attribute's column in the partition's canonical
        /// order.
        col: usize,
        /// The comparison operator.
        cmp: ColCmp,
        /// The constant right-hand side.
        value: Value,
    },
    /// Word-parallel intersection of the operand selections.
    And(Box<Node>, Box<Node>),
    /// Word-parallel union of the operand selections.
    Or(Box<Node>, Box<Node>),
    /// Word-parallel complement of the operand selection (garbage bits past
    /// the segment's rows are masked off by the final live-bitmap `AND`).
    Not(Box<Node>),
}

impl Node {
    fn select(&self, seg: &ColumnSegment) -> SelVec {
        match self {
            Node::Cmp { col, cmp, value } => seg.cmp_bitmap(*col, *cmp, value),
            Node::And(a, b) => {
                let mut sel = a.select(seg);
                sel.and(&b.select(seg));
                sel
            }
            Node::Or(a, b) => {
                let mut sel = a.select(seg);
                sel.or(&b.select(seg));
                sel
            }
            Node::Not(a) => {
                let mut sel = a.select(seg);
                sel.not();
                sel
            }
        }
    }
}

/// A predicate compiled against one partition's shape.
#[derive(Clone, Debug)]
pub enum Compiled {
    /// The predicate folded to `false` for this shape: skip the partition.
    Never,
    /// The predicate folded to `true` for this shape: every live row
    /// qualifies.
    All,
    /// A residual tree of column comparisons.
    Ops(Node),
}

impl Compiled {
    /// Whether the whole partition can be skipped.
    pub fn is_never(&self) -> bool {
        matches!(self, Compiled::Never)
    }

    /// The selection of qualifying live rows of one segment.
    pub fn select(&self, seg: &ColumnSegment) -> SelVec {
        let mut sel = match self {
            Compiled::Never => return SelVec::none(),
            Compiled::All => SelVec::all(),
            Compiled::Ops(n) => n.select(seg),
        };
        sel.and(&seg.live_sel());
        sel
    }
}

/// The intermediate compile result: either a shape-level constant or a
/// residual tree.
enum CNode {
    Const(bool),
    Dyn(Node),
}

fn compile_node(p: &Predicate, heap: &ColumnHeap) -> CNode {
    match p {
        Predicate::True => CNode::Const(true),
        Predicate::False => CNode::Const(false),
        Predicate::Cmp { attr, op, value } => match heap.col_index(attr.name()) {
            Some(col) => CNode::Dyn(Node::Cmp {
                col,
                cmp: col_cmp(*op),
                value: value.clone(),
            }),
            // Every tuple of the partition lacks the attribute, and a
            // comparison on a missing attribute is false.
            None => CNode::Const(false),
        },
        Predicate::IsPresent(attrs) => CNode::Const(attrs.is_subset(heap.shape())),
        Predicate::And(a, b) => match (compile_node(a, heap), compile_node(b, heap)) {
            (CNode::Const(false), _) | (_, CNode::Const(false)) => CNode::Const(false),
            (CNode::Const(true), x) | (x, CNode::Const(true)) => x,
            (CNode::Dyn(a), CNode::Dyn(b)) => CNode::Dyn(Node::And(Box::new(a), Box::new(b))),
        },
        Predicate::Or(a, b) => match (compile_node(a, heap), compile_node(b, heap)) {
            (CNode::Const(true), _) | (_, CNode::Const(true)) => CNode::Const(true),
            (CNode::Const(false), x) | (x, CNode::Const(false)) => x,
            (CNode::Dyn(a), CNode::Dyn(b)) => CNode::Dyn(Node::Or(Box::new(a), Box::new(b))),
        },
        Predicate::Not(a) => match compile_node(a, heap) {
            CNode::Const(b) => CNode::Const(!b),
            CNode::Dyn(n) => CNode::Dyn(Node::Not(Box::new(n))),
        },
    }
}

/// Compiles the conjunction of `preds` against one partition's shape.  An
/// empty slice compiles to [`Compiled::All`].
pub fn compile(preds: &[Predicate], heap: &ColumnHeap) -> Compiled {
    let mut acc = CNode::Const(true);
    for p in preds {
        acc = match (acc, compile_node(p, heap)) {
            (CNode::Const(false), _) | (_, CNode::Const(false)) => return Compiled::Never,
            (CNode::Const(true), x) | (x, CNode::Const(true)) => x,
            (CNode::Dyn(a), CNode::Dyn(b)) => CNode::Dyn(Node::And(Box::new(a), Box::new(b))),
        };
    }
    match acc {
        CNode::Const(true) => Compiled::All,
        CNode::Const(false) => Compiled::Never,
        CNode::Dyn(n) => Compiled::Ops(n),
    }
}

/// Runs a compiled predicate over every segment of a partition, appending
/// the qualifying tuples to `out` — the batch body shared by the parallel
/// scan workers and [`VectorScan`].
pub fn select_into(heap: &ColumnHeap, compiled: &Compiled, out: &mut Vec<Tuple>) {
    if compiled.is_never() {
        return;
    }
    for si in 0..heap.segment_count() {
        let seg = heap.segment(si).expect("segment index in range");
        let sel = compiled.select(seg);
        if !sel.is_empty() {
            heap.materialize_selected(si, &sel, out);
        }
    }
}

/// A streaming vectorized scan over a set of snapshotted partitions: the
/// predicate conjunction is compiled once per partition, evaluated into a
/// selection vector per 1024-slot segment, and only the selected rows are
/// materialized (one segment's worth of output is buffered at a time).
/// This is the serial scan path of the executor.
pub struct VectorScan {
    parts: Vec<Arc<Partition>>,
    preds: Vec<Predicate>,
    part: usize,
    seg: usize,
    compiled: Option<Compiled>,
    buf: std::vec::IntoIter<Tuple>,
}

impl VectorScan {
    /// A scan over `parts` filtered by the conjunction of `preds` (empty
    /// means unfiltered).
    pub fn new(parts: Vec<Arc<Partition>>, preds: Vec<Predicate>) -> Self {
        VectorScan {
            parts,
            preds,
            part: 0,
            seg: 0,
            compiled: None,
            buf: Vec::new().into_iter(),
        }
    }
}

impl Iterator for VectorScan {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(t);
            }
            let part = self.parts.get(self.part)?;
            let heap = part.columns();
            let compiled = self
                .compiled
                .get_or_insert_with(|| compile(&self.preds, heap));
            if compiled.is_never() || self.seg >= heap.segment_count() {
                self.part += 1;
                self.seg = 0;
                self.compiled = None;
                continue;
            }
            let si = self.seg;
            self.seg += 1;
            let seg = heap.segment(si).expect("segment index in range");
            let sel = compiled.select(seg);
            if sel.is_empty() {
                continue;
            }
            let mut out = Vec::with_capacity(sel.count());
            heap.materialize_selected(si, &sel, &mut out);
            self.buf = out.into_iter();
        }
    }
}

/// One aggregate's columnar execution plan against one segment: resolved
/// once per segment (column representations are per segment), then applied
/// to every row run of that segment.
enum ColAgg {
    /// `COUNT(*)`, and `COUNT(x)` with `x` in the shape: columns are dense
    /// (shape membership *is* presence), so the count is the run length.
    CountRun,
    /// The input attribute is outside this partition's shape — the
    /// aggregate sees nothing here (`COUNT(x)` contributes 0).
    Skip,
    /// `SUM` over a plain integer column: wrapping partial sums per run.
    SumInt(usize),
    /// `SUM` over a plain float column: element-wise adds in row order (the
    /// order the row-wise reference fold would use).
    SumFloat(usize),
    /// `MIN`/`MAX` over any column, and `SUM` over a dictionary column
    /// (mixed-kind segments can hold numerics behind codes): per-row
    /// [`Value`] fold.
    FoldValues(usize),
}

fn col_agg_plan(aggs: &[AggExpr], heap: &ColumnHeap, seg: &ColumnSegment) -> Vec<ColAgg> {
    aggs.iter()
        .map(|a| {
            let Some(input) = &a.input else {
                return ColAgg::CountRun;
            };
            let Some(col) = heap.col_index(input.name()) else {
                return ColAgg::Skip;
            };
            match (a.func, seg.col_kind(col)) {
                (AggFunc::Count, _) => ColAgg::CountRun,
                (AggFunc::Sum, ColKind::Int) => ColAgg::SumInt(col),
                (AggFunc::Sum, ColKind::Float) => ColAgg::SumFloat(col),
                _ => ColAgg::FoldValues(col),
            }
        })
        .collect()
}

/// Folds one run of selected rows (ascending row order) of a segment into a
/// group's accumulators.
fn fold_run(seg: &ColumnSegment, rows: &[u32], plan: &[ColAgg], accs: &mut [Acc]) {
    if rows.is_empty() {
        return;
    }
    for (op, acc) in plan.iter().zip(accs.iter_mut()) {
        match op {
            ColAgg::CountRun => acc.add_count(rows.len() as i64),
            ColAgg::Skip => {}
            ColAgg::SumInt(c) => {
                let xs = seg.int_slice(*c).expect("plan resolved an int column");
                let partial = rows
                    .iter()
                    .fold(0i64, |s, &r| s.wrapping_add(xs[r as usize]));
                acc.add_int_sum(partial);
            }
            ColAgg::SumFloat(c) => {
                let xs = seg.float_slice(*c).expect("plan resolved a float column");
                for &r in rows {
                    acc.add_value(&Value::Float(xs[r as usize]));
                }
            }
            ColAgg::FoldValues(c) => {
                for &r in rows {
                    acc.add_value(&seg.value_at(*c, r as usize));
                }
            }
        }
    }
}

/// Folds one segment's selected rows directly into grouped aggregation
/// state — the columnar aggregation kernel.  No input tuple is ever
/// materialized: `COUNT` is a popcount, integer `SUM` runs over the raw
/// column slice, and `GROUP BY` on a dictionary-encoded column buckets rows
/// by dictionary code, building one key tuple per *distinct group* rather
/// than per row.
///
/// `sel` must already be masked by the segment's live bitmap (as
/// [`Compiled::select`] guarantees).  Partitions whose shape lacks a
/// grouping attribute contribute no rows — grouping is a type guard — and
/// aggregates whose input attribute is outside the shape see no input from
/// this partition; both checks are shape-level constants here, never
/// per-row tests.  The fold visits rows in storage order, so the result is
/// bit-for-bit the row-wise [`GroupedAggs::add_tuple`] fold.
pub fn aggregate_selected(heap: &ColumnHeap, si: usize, sel: &SelVec, state: &mut GroupedAggs) {
    if sel.is_empty() || !state.group_by().is_subset(heap.shape()) {
        return;
    }
    let seg = heap.segment(si).expect("segment index in range");
    let plan = col_agg_plan(state.aggs(), heap, seg);
    let rows: Vec<u32> = sel.iter().map(|r| r as u32).collect();
    if state.group_by().is_empty() {
        fold_run(seg, &rows, &plan, state.group_accs(Tuple::empty()));
        return;
    }
    // Grouping columns in canonical attribute order (subset of the shape,
    // checked above).
    let group_cols: Vec<(Attr, usize)> = heap
        .attrs()
        .iter()
        .filter(|a| state.group_by().contains(a))
        .map(|a| (a.clone(), heap.col_index(a.name()).expect("attr in shape")))
        .collect();
    // Fast path: a single dictionary-encoded grouping column.  Bucket the
    // selected rows by code and touch each group once per segment.
    if let [(attr, gcol)] = &group_cols[..] {
        if let Some((codes, vals)) = seg.dict_parts(*gcol) {
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); vals.len()];
            for &r in &rows {
                buckets[codes[r as usize] as usize].push(r);
            }
            // Visit groups in first-row order so key ties under the total
            // order (e.g. Int 1 vs Float 1.0 in a mixed segment) resolve
            // exactly as the row-order fold would.
            let mut order: Vec<usize> = (0..buckets.len())
                .filter(|c| !buckets[*c].is_empty())
                .collect();
            order.sort_by_key(|c| buckets[*c][0]);
            for c in order {
                let key = Tuple::new().with(attr.clone(), vals[c].clone());
                fold_run(seg, &buckets[c], &plan, state.group_accs(key));
            }
            return;
        }
    }
    // General path (multi-attribute or non-dictionary grouping): build the
    // key per row from the grouping columns alone — still no full-row
    // materialization.
    for &r in &rows {
        let mut key = Tuple::new();
        for (a, c) in &group_cols {
            key.insert(a.clone(), seg.value_at(*c, r as usize));
        }
        fold_run(seg, &[r], &plan, state.group_accs(key));
    }
}

/// Runs a compiled predicate over every segment of a partition, folding the
/// qualifying rows into the aggregation state — the partition-level driver
/// of [`aggregate_selected`], used by the late-materialized `Aggregate`
/// operator and the aggregation benchmarks.
pub fn aggregate_partition(heap: &ColumnHeap, compiled: &Compiled, state: &mut GroupedAggs) {
    if compiled.is_never() || !state.group_by().is_subset(heap.shape()) {
        return;
    }
    for si in 0..heap.segment_count() {
        let seg = heap.segment(si).expect("segment index in range");
        let sel = compiled.select(seg);
        aggregate_selected(heap, si, &sel, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;
    use flexrel_storage::{Database, RelationDef};
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn parts_of(db: &Database) -> Vec<Arc<Partition>> {
        db.partition_snapshot("employee")
            .unwrap()
            .into_parts()
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    }

    fn db(n: usize) -> Database {
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    /// Every predicate shape agrees with the row-at-a-time oracle.
    #[test]
    fn compiled_predicates_match_row_eval() {
        let db = db(500);
        let parts = parts_of(&db);
        let rows: Vec<Tuple> = db
            .scan("employee")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let preds = [
            Predicate::True,
            Predicate::False,
            Predicate::gt("salary", 4000),
            Predicate::eq("jobtype", Value::tag("secretary")),
            Predicate::eq("salary", Value::Float(4000.0)),
            Predicate::present(attrs!["typing-speed"]),
            Predicate::present(attrs!["typing-speed"]).negate(),
            Predicate::gt("salary", 3000)
                .and(Predicate::eq("jobtype", Value::tag("software engineer"))),
            Predicate::eq("jobtype", Value::tag("secretary"))
                .or(Predicate::eq("jobtype", Value::tag("salesman"))),
            Predicate::gt("typing-speed", 0).negate(),
            Predicate::lt("empno", 100).and(Predicate::ge("empno", 50)),
            Predicate::ne("jobtype", Value::tag("secretary")),
            Predicate::le("salary", 2500).or(Predicate::present(attrs!["products"])),
        ];
        for p in &preds {
            let mut expect: Vec<Tuple> = rows.iter().filter(|t| p.eval(t)).cloned().collect();
            let mut got: Vec<Tuple> = VectorScan::new(parts.clone(), vec![p.clone()]).collect();
            expect.sort();
            got.sort();
            assert_eq!(expect, got, "predicate {:?}", p);
        }
    }

    #[test]
    fn folded_constants_skip_partitions() {
        let db = db(100);
        for (_, p) in db.partition_snapshot("employee").unwrap().into_parts() {
            let heap = p.columns();
            // A comparison on an attribute outside the shape folds away.
            let c = compile(&[Predicate::eq("no-such-attr", 1)], heap);
            assert!(c.is_never());
            // ... and folds through negation into all-rows.
            let c = compile(&[Predicate::eq("no-such-attr", 1).negate()], heap);
            assert!(matches!(c, Compiled::All));
            // IsPresent is a shape-level constant either way.
            let c = compile(&[Predicate::present(attrs!["empno"])], heap);
            assert!(matches!(c, Compiled::All));
            let mut out = Vec::new();
            select_into(heap, &c, &mut out);
            assert_eq!(out.len(), heap.len());
        }
    }

    #[test]
    fn empty_conjunction_selects_everything() {
        let db = db(60);
        let got: Vec<Tuple> = VectorScan::new(parts_of(&db), Vec::new()).collect();
        assert_eq!(got.len(), 60);
    }

    /// The columnar aggregation kernels agree with the row-wise reference
    /// fold, grouped and global, under every predicate shape.
    #[test]
    fn columnar_aggregation_matches_the_row_fold() {
        use crate::agg::GroupedAggs;
        use crate::logical::{AggExpr, AggFunc};
        use flexrel_core::attr::AttrSet;

        let db = db(700);
        let parts = parts_of(&db);
        let rows: Vec<Tuple> = db
            .scan("employee")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let aggs = vec![
            AggExpr::new(AggFunc::Count, None),
            AggExpr::new(AggFunc::Count, Some("typing-speed".into())),
            AggExpr::new(AggFunc::Sum, Some("salary".into())),
            AggExpr::new(AggFunc::Min, Some("salary".into())),
            AggExpr::new(AggFunc::Max, Some("empno".into())),
            AggExpr::new(AggFunc::Min, Some("jobtype".into())),
        ];
        let groupings = [
            AttrSet::empty(),
            attrs!["jobtype"],
            attrs!["jobtype", "salary"],
        ];
        let preds = [
            Vec::new(),
            vec![Predicate::gt("salary", 4000)],
            vec![Predicate::eq("jobtype", Value::tag("secretary"))],
            vec![Predicate::gt("salary", 99999999)], // selects nothing
        ];
        for group_by in &groupings {
            for preds in &preds {
                let mut naive = GroupedAggs::new(group_by.clone(), aggs.clone());
                for t in rows.iter().filter(|t| preds.iter().all(|p| p.eval(t))) {
                    naive.add_tuple(t);
                }
                let mut fast = GroupedAggs::new(group_by.clone(), aggs.clone());
                for p in &parts {
                    let heap = p.columns();
                    let compiled = compile(preds, heap);
                    aggregate_partition(heap, &compiled, &mut fast);
                }
                let mut expect = naive.finish();
                let mut got = fast.finish();
                expect.sort();
                got.sort();
                assert_eq!(expect, got, "group by {} under {:?}", group_by, preds);
            }
        }
    }
}
