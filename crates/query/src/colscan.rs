//! Predicates compiled to vectorized column operations.
//!
//! A scan's qualification (plus any filter fused onto it) is row-oriented: a
//! [`Predicate`] evaluated tuple by tuple.  Over the column-major partitions
//! of [`flexrel_storage::ColumnHeap`] the same predicate can instead be
//! *compiled once per partition* and evaluated segment-at-a-time:
//!
//! 1. **Shape-level folding.**  Within a partition every tuple has the
//!    partition's shape, so the shape-dependent parts of the predicate are
//!    constants: a comparison on an attribute the shape lacks is `false`
//!    for every row, a type guard `IsPresent(X)` is `X ⊆ shape`.  The
//!    compiler folds these through `And`/`Or`/`Not`; whole partitions whose
//!    predicate folds to `false` are skipped without touching a segment —
//!    the same pruning the optimizer's [`ShapePredicate`] performs, now
//!    guaranteed for arbitrary residual predicates.
//! 2. **Vectorized comparison.**  What remains is a tree over column
//!    comparisons ([`flexrel_storage::ColCmp`]): each leaf evaluates one
//!    kernel over a 1024-slot segment into a [`SelVec`] selection bitmap,
//!    and the boolean structure combines bitmaps word-at-a-time.
//! 3. **Late materialization.**  Only the rows whose selection bit survives
//!    (masked by the segment's live bitmap) are materialized into [`Tuple`]s.
//!
//! The result is bit-for-bit the row semantics: `compile` mirrors
//! [`Predicate::eval`] exactly (including the "comparison on a missing
//! attribute is `false`" rule and kind-strict equality), which the
//! differential test suite checks against the row-store oracle.
//!
//! [`ShapePredicate`]: crate::logical::ShapePredicate

use std::sync::Arc;

use flexrel_algebra::predicate::{CmpOp, Predicate};
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;
use flexrel_storage::{ColCmp, ColumnHeap, ColumnSegment, Partition, SelVec};

fn col_cmp(op: CmpOp) -> ColCmp {
    match op {
        CmpOp::Eq => ColCmp::Eq,
        CmpOp::Ne => ColCmp::Ne,
        CmpOp::Lt => ColCmp::Lt,
        CmpOp::Le => ColCmp::Le,
        CmpOp::Gt => ColCmp::Gt,
        CmpOp::Ge => ColCmp::Ge,
    }
}

/// A predicate tree over column comparisons — the non-constant residue of
/// compiling a [`Predicate`] against one partition's shape.
#[derive(Clone, Debug)]
pub enum Node {
    /// `column <cmp> constant` — one kernel call per segment.
    Cmp {
        /// Index of the attribute's column in the partition's canonical
        /// order.
        col: usize,
        /// The comparison operator.
        cmp: ColCmp,
        /// The constant right-hand side.
        value: Value,
    },
    /// Word-parallel intersection of the operand selections.
    And(Box<Node>, Box<Node>),
    /// Word-parallel union of the operand selections.
    Or(Box<Node>, Box<Node>),
    /// Word-parallel complement of the operand selection (garbage bits past
    /// the segment's rows are masked off by the final live-bitmap `AND`).
    Not(Box<Node>),
}

impl Node {
    fn select(&self, seg: &ColumnSegment) -> SelVec {
        match self {
            Node::Cmp { col, cmp, value } => seg.cmp_bitmap(*col, *cmp, value),
            Node::And(a, b) => {
                let mut sel = a.select(seg);
                sel.and(&b.select(seg));
                sel
            }
            Node::Or(a, b) => {
                let mut sel = a.select(seg);
                sel.or(&b.select(seg));
                sel
            }
            Node::Not(a) => {
                let mut sel = a.select(seg);
                sel.not();
                sel
            }
        }
    }
}

/// A predicate compiled against one partition's shape.
#[derive(Clone, Debug)]
pub enum Compiled {
    /// The predicate folded to `false` for this shape: skip the partition.
    Never,
    /// The predicate folded to `true` for this shape: every live row
    /// qualifies.
    All,
    /// A residual tree of column comparisons.
    Ops(Node),
}

impl Compiled {
    /// Whether the whole partition can be skipped.
    pub fn is_never(&self) -> bool {
        matches!(self, Compiled::Never)
    }

    /// The selection of qualifying live rows of one segment.
    pub fn select(&self, seg: &ColumnSegment) -> SelVec {
        let mut sel = match self {
            Compiled::Never => return SelVec::none(),
            Compiled::All => SelVec::all(),
            Compiled::Ops(n) => n.select(seg),
        };
        sel.and(&seg.live_sel());
        sel
    }
}

/// The intermediate compile result: either a shape-level constant or a
/// residual tree.
enum CNode {
    Const(bool),
    Dyn(Node),
}

fn compile_node(p: &Predicate, heap: &ColumnHeap) -> CNode {
    match p {
        Predicate::True => CNode::Const(true),
        Predicate::False => CNode::Const(false),
        Predicate::Cmp { attr, op, value } => match heap.col_index(attr.name()) {
            Some(col) => CNode::Dyn(Node::Cmp {
                col,
                cmp: col_cmp(*op),
                value: value.clone(),
            }),
            // Every tuple of the partition lacks the attribute, and a
            // comparison on a missing attribute is false.
            None => CNode::Const(false),
        },
        Predicate::IsPresent(attrs) => CNode::Const(attrs.is_subset(heap.shape())),
        Predicate::And(a, b) => match (compile_node(a, heap), compile_node(b, heap)) {
            (CNode::Const(false), _) | (_, CNode::Const(false)) => CNode::Const(false),
            (CNode::Const(true), x) | (x, CNode::Const(true)) => x,
            (CNode::Dyn(a), CNode::Dyn(b)) => CNode::Dyn(Node::And(Box::new(a), Box::new(b))),
        },
        Predicate::Or(a, b) => match (compile_node(a, heap), compile_node(b, heap)) {
            (CNode::Const(true), _) | (_, CNode::Const(true)) => CNode::Const(true),
            (CNode::Const(false), x) | (x, CNode::Const(false)) => x,
            (CNode::Dyn(a), CNode::Dyn(b)) => CNode::Dyn(Node::Or(Box::new(a), Box::new(b))),
        },
        Predicate::Not(a) => match compile_node(a, heap) {
            CNode::Const(b) => CNode::Const(!b),
            CNode::Dyn(n) => CNode::Dyn(Node::Not(Box::new(n))),
        },
    }
}

/// Compiles the conjunction of `preds` against one partition's shape.  An
/// empty slice compiles to [`Compiled::All`].
pub fn compile(preds: &[Predicate], heap: &ColumnHeap) -> Compiled {
    let mut acc = CNode::Const(true);
    for p in preds {
        acc = match (acc, compile_node(p, heap)) {
            (CNode::Const(false), _) | (_, CNode::Const(false)) => return Compiled::Never,
            (CNode::Const(true), x) | (x, CNode::Const(true)) => x,
            (CNode::Dyn(a), CNode::Dyn(b)) => CNode::Dyn(Node::And(Box::new(a), Box::new(b))),
        };
    }
    match acc {
        CNode::Const(true) => Compiled::All,
        CNode::Const(false) => Compiled::Never,
        CNode::Dyn(n) => Compiled::Ops(n),
    }
}

/// Runs a compiled predicate over every segment of a partition, appending
/// the qualifying tuples to `out` — the batch body shared by the parallel
/// scan workers and [`VectorScan`].
pub fn select_into(heap: &ColumnHeap, compiled: &Compiled, out: &mut Vec<Tuple>) {
    if compiled.is_never() {
        return;
    }
    for si in 0..heap.segment_count() {
        let seg = heap.segment(si).expect("segment index in range");
        let sel = compiled.select(seg);
        if !sel.is_empty() {
            heap.materialize_selected(si, &sel, out);
        }
    }
}

/// A streaming vectorized scan over a set of snapshotted partitions: the
/// predicate conjunction is compiled once per partition, evaluated into a
/// selection vector per 1024-slot segment, and only the selected rows are
/// materialized (one segment's worth of output is buffered at a time).
/// This is the serial scan path of the executor.
pub struct VectorScan {
    parts: Vec<Arc<Partition>>,
    preds: Vec<Predicate>,
    part: usize,
    seg: usize,
    compiled: Option<Compiled>,
    buf: std::vec::IntoIter<Tuple>,
}

impl VectorScan {
    /// A scan over `parts` filtered by the conjunction of `preds` (empty
    /// means unfiltered).
    pub fn new(parts: Vec<Arc<Partition>>, preds: Vec<Predicate>) -> Self {
        VectorScan {
            parts,
            preds,
            part: 0,
            seg: 0,
            compiled: None,
            buf: Vec::new().into_iter(),
        }
    }
}

impl Iterator for VectorScan {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(t);
            }
            let part = self.parts.get(self.part)?;
            let heap = part.columns();
            let compiled = self
                .compiled
                .get_or_insert_with(|| compile(&self.preds, heap));
            if compiled.is_never() || self.seg >= heap.segment_count() {
                self.part += 1;
                self.seg = 0;
                self.compiled = None;
                continue;
            }
            let si = self.seg;
            self.seg += 1;
            let seg = heap.segment(si).expect("segment index in range");
            let sel = compiled.select(seg);
            if sel.is_empty() {
                continue;
            }
            let mut out = Vec::with_capacity(sel.count());
            heap.materialize_selected(si, &sel, &mut out);
            self.buf = out.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;
    use flexrel_storage::{Database, RelationDef};
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn parts_of(db: &Database) -> Vec<Arc<Partition>> {
        db.partition_snapshot("employee")
            .unwrap()
            .into_parts()
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    }

    fn db(n: usize) -> Database {
        let db = Database::new();
        db.create_relation(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            db.insert("employee", t).unwrap();
        }
        db
    }

    /// Every predicate shape agrees with the row-at-a-time oracle.
    #[test]
    fn compiled_predicates_match_row_eval() {
        let db = db(500);
        let parts = parts_of(&db);
        let rows: Vec<Tuple> = db
            .scan("employee")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let preds = [
            Predicate::True,
            Predicate::False,
            Predicate::gt("salary", 4000),
            Predicate::eq("jobtype", Value::tag("secretary")),
            Predicate::eq("salary", Value::Float(4000.0)),
            Predicate::present(attrs!["typing-speed"]),
            Predicate::present(attrs!["typing-speed"]).negate(),
            Predicate::gt("salary", 3000)
                .and(Predicate::eq("jobtype", Value::tag("software engineer"))),
            Predicate::eq("jobtype", Value::tag("secretary"))
                .or(Predicate::eq("jobtype", Value::tag("salesman"))),
            Predicate::gt("typing-speed", 0).negate(),
            Predicate::lt("empno", 100).and(Predicate::ge("empno", 50)),
            Predicate::ne("jobtype", Value::tag("secretary")),
            Predicate::le("salary", 2500).or(Predicate::present(attrs!["products"])),
        ];
        for p in &preds {
            let mut expect: Vec<Tuple> = rows.iter().filter(|t| p.eval(t)).cloned().collect();
            let mut got: Vec<Tuple> = VectorScan::new(parts.clone(), vec![p.clone()]).collect();
            expect.sort();
            got.sort();
            assert_eq!(expect, got, "predicate {:?}", p);
        }
    }

    #[test]
    fn folded_constants_skip_partitions() {
        let db = db(100);
        for (_, p) in db.partition_snapshot("employee").unwrap().into_parts() {
            let heap = p.columns();
            // A comparison on an attribute outside the shape folds away.
            let c = compile(&[Predicate::eq("no-such-attr", 1)], heap);
            assert!(c.is_never());
            // ... and folds through negation into all-rows.
            let c = compile(&[Predicate::eq("no-such-attr", 1).negate()], heap);
            assert!(matches!(c, Compiled::All));
            // IsPresent is a shape-level constant either way.
            let c = compile(&[Predicate::present(attrs!["empno"])], heap);
            assert!(matches!(c, Compiled::All));
            let mut out = Vec::new();
            select_into(heap, &c, &mut out);
            assert_eq!(out.len(), heap.len());
        }
    }

    #[test]
    fn empty_conjunction_selects_everything() {
        let db = db(60);
        let got: Vec<Tuple> = VectorScan::new(parts_of(&db), Vec::new()).collect();
        assert_eq!(got.len(), 60);
    }
}
