//! The batched late-materialization pipeline.
//!
//! The row pipeline (`exec::exec_node`) materializes every
//! qualifying row into an owned [`Tuple`] at the scan edge and streams
//! tuples between operators.  This module replaces that dataflow with
//! [`Chunk`]s: a columnar chunk is one 1024-slot column segment of a
//! shape-homogeneous partition plus a [`SelVec`] selection bitmap — a
//! zero-copy view (`Arc<Partition>` + segment index + bitmap) that flows
//! through filters, guards and join probes without constructing a single
//! tuple.  Owned tuples are built only at the points that genuinely need
//! them:
//!
//! * the **result boundary** (`chunks_to_tuples`) — the final
//!   materialization, restricted to rows that survived every operator;
//! * **projection**, which materializes *narrow* tuples carrying only the
//!   projected columns (duplicate elimination needs owned keys anyway);
//! * the **build side of a hash join**, which is spilled into the compact
//!   binary row format ([`RowBlock`], reusing the WAL value codec) and
//!   probed by row index — probe-side rows are materialized only on a
//!   match;
//! * operators that change shape or leave the columnar world
//!   (`Extend`, `UnionAll` dedup, index-nested-loop probes).
//!
//! An `Aggregate` node never materializes input at all: its chunks fold
//! straight into [`GroupedAggs`] through the columnar kernels in
//! [`crate::colscan`].
//!
//! [`ExecStats`] counts every tuple built from column data, which is how
//! the test suite pins the pipeline down: a `COUNT(*)` must report zero
//! materializations, and a full scan exactly its result size.
//!
//! Operator semantics are identical to the row pipeline — the differential
//! suite in `tests/` executes every query through both pipelines and
//! compares tuple-for-tuple.  Serial chunk order is partition order, then
//! segment order, then slot order: exactly the row pipeline's scan order,
//! so order-sensitive state (dedup first-occurrence, float summation)
//! agrees bit-for-bit.  Under partition-parallel scans both pipelines
//! produce the same multiset with unspecified order; float sums may then
//! differ in the last ulp between runs, exactly as they do for the row
//! fold under reordering.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use flexrel_algebra::predicate::Predicate;
use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::error::Result;
use flexrel_core::tuple::{ShapeId, Tuple};
use flexrel_storage::{Partition, RowBlock, SelVec};

use crate::agg::GroupedAggs;
use crate::colscan;
use crate::exec::{
    exec_node, index_nested_loop_stream, inl_inner_side, join_strategy_for, scan_parallelism,
    snap_plan_attrs, ExecContext, ExecOptions, JoinStrategy, TupleStream,
};
use crate::logical::{AggExpr, LogicalPlan, ShapePredicate};

/// Counters the late pipeline maintains while executing; cheaply cloneable
/// (shared atomics), readable after the result stream is drained.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    materialized: AtomicU64,
    chunks: AtomicU64,
    /// Execution deadline copied from [`ExecOptions::deadline`]; checked
    /// (and [`StatsInner::timed_out`] recorded) at every chunk source.
    deadline: Option<std::time::Instant>,
    timed_out: AtomicBool,
}

impl ExecStats {
    /// Stats carrying an execution deadline: the chunk sources stop
    /// producing once it passes and flag the run as timed out.  `None`
    /// behaves exactly like [`ExecStats::default`].
    pub fn with_deadline(deadline: Option<std::time::Instant>) -> Self {
        ExecStats {
            inner: Arc::new(StatsInner {
                deadline,
                ..StatsInner::default()
            }),
        }
    }

    /// Whether the deadline tripped anywhere in the pipeline.  A timed-out
    /// stream ends early, so its drained rows are *truncated* — callers
    /// must discard them and surface a timeout error instead.
    pub fn timed_out(&self) -> bool {
        self.inner.timed_out.load(Ordering::Relaxed)
    }

    /// Checks the deadline, recording and reporting expiry.  Called once
    /// per chunk (≤1024 rows of work) at each source, so the `Instant`
    /// read is off the per-row fast path.
    fn deadline_expired(&self) -> bool {
        match self.inner.deadline {
            Some(d) if std::time::Instant::now() >= d => {
                self.inner.timed_out.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
    /// How many owned tuples were built from column segments anywhere in
    /// the pipeline (scan boundary, narrow projections, join sides).  An
    /// aggregate-only query reports 0 — its inputs never leave the
    /// columns; a bare scan reports exactly its result size.
    pub fn materialized(&self) -> u64 {
        self.inner.materialized.load(Ordering::Relaxed)
    }

    /// How many columnar chunks entered the pipeline at scan edges.
    pub fn chunks(&self) -> u64 {
        self.inner.chunks.load(Ordering::Relaxed)
    }

    fn note_materialized(&self, n: u64) {
        self.inner.materialized.fetch_add(n, Ordering::Relaxed);
    }

    fn note_chunk(&self) {
        self.inner.chunks.fetch_add(1, Ordering::Relaxed);
    }
}

/// A columnar chunk: the selected rows of one segment of one partition.
/// Cloning is cheap (an `Arc` bump plus a fixed-size bitmap); the column
/// data itself is shared with the storage snapshot.
#[derive(Clone, Debug)]
pub struct ColChunk {
    /// The (shape-homogeneous) partition the segment belongs to.
    pub part: Arc<Partition>,
    /// Segment index within the partition's column heap.
    pub seg: usize,
    /// Selected rows, already masked by the segment's live bitmap.
    pub sel: SelVec,
}

impl ColChunk {
    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.sel.count()
    }

    /// Whether no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Materializes the selected rows as owned tuples, in slot order.
    pub fn materialize_into(&self, out: &mut Vec<Tuple>) {
        self.part
            .columns()
            .materialize_selected(self.seg, &self.sel, out);
    }
}

/// One unit of dataflow between late-pipeline operators.
#[derive(Clone, Debug)]
pub enum Chunk {
    /// Rows still in columnar form: a selection over a shared segment.
    Cols(ColChunk),
    /// Rows that had to leave the columns (join output, projections,
    /// shape-changing operators).
    Rows(Vec<Tuple>),
}

impl Chunk {
    /// Number of rows the chunk carries.
    pub fn len(&self) -> usize {
        match self {
            Chunk::Cols(c) => c.len(),
            Chunk::Rows(v) => v.len(),
        }
    }

    /// Whether the chunk carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The chunk's rows as owned tuples, materializing (and counting into
    /// `stats`) if still columnar.
    pub fn into_tuples(self, stats: &ExecStats) -> Vec<Tuple> {
        match self {
            Chunk::Cols(c) => {
                let mut out = Vec::with_capacity(c.len());
                c.materialize_into(&mut out);
                stats.note_materialized(out.len() as u64);
                out
            }
            Chunk::Rows(v) => v,
        }
    }
}

/// A stream of chunks between operators.
pub type ChunkStream<'a> = Box<dyn Iterator<Item = Chunk> + 'a>;

/// The result boundary: drains a chunk stream into a tuple stream,
/// materializing columnar chunks (the only materialization a plan without
/// tuple-forcing operators ever performs).
pub(crate) fn chunks_to_tuples<'a>(chunks: ChunkStream<'a>, stats: ExecStats) -> TupleStream<'a> {
    // The boundary doubles as a deadline gate for chunk producers that are
    // not segment scans (row re-chunking, join outputs): one check per
    // chunk, never per tuple.
    let gate = stats.clone();
    Box::new(
        chunks
            .take_while(move |_| !gate.deadline_expired())
            .flat_map(move |c| c.into_tuples(&stats)),
    )
}

/// Re-chunks a tuple stream (used where a row-pipeline fragment feeds the
/// chunk world, e.g. index-nested-loop output).
fn rows_chunks<'a>(mut stream: TupleStream<'a>) -> ChunkStream<'a> {
    Box::new(std::iter::from_fn(move || {
        let batch: Vec<Tuple> = stream.by_ref().take(1024).collect();
        if batch.is_empty() {
            None
        } else {
            Some(Chunk::Rows(batch))
        }
    }))
}

/// A serial chunk scan over snapshotted partitions: the predicate
/// conjunction compiles once per partition, each segment yields one
/// [`ColChunk`] of qualifying rows.  Chunk order is partition, segment,
/// slot order — the row pipeline's scan order.
struct ChunkScan {
    parts: Vec<Arc<Partition>>,
    preds: Vec<Predicate>,
    part: usize,
    seg: usize,
    compiled: Option<colscan::Compiled>,
    stats: ExecStats,
}

impl Iterator for ChunkScan {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        loop {
            if self.stats.deadline_expired() {
                return None;
            }
            let part = self.parts.get(self.part)?;
            let heap = part.columns();
            let compiled = self
                .compiled
                .get_or_insert_with(|| colscan::compile(&self.preds, heap));
            if compiled.is_never() || self.seg >= heap.segment_count() {
                self.part += 1;
                self.seg = 0;
                self.compiled = None;
                continue;
            }
            let si = self.seg;
            self.seg += 1;
            let seg = heap.segment(si).expect("segment index in range");
            let sel = compiled.select(seg);
            if sel.is_empty() {
                continue;
            }
            self.stats.note_chunk();
            return Some(Chunk::Cols(ColChunk {
                part: Arc::clone(part),
                seg: si,
                sel,
            }));
        }
    }
}

/// Fans the partitions out over workers which push [`ColChunk`]s — not
/// materialized batches — into the merged stream; the chunk is `Send`
/// because the partition is behind an `Arc` and the bitmap is plain data.
fn parallel_scan_chunks(
    parts: Vec<(ShapeId, Arc<Partition>)>,
    preds: Vec<Predicate>,
    threads: usize,
    stats: ExecStats,
) -> ChunkStream<'static> {
    let mut buckets: Vec<Vec<Arc<Partition>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut loads = vec![0usize; threads];
    let mut parts = parts;
    parts.sort_by_key(|(_, p)| std::cmp::Reverse(p.len()));
    for (_, part) in parts {
        let i = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        loads[i] += part.len();
        buckets[i].push(part);
    }
    let (tx, rx) = mpsc::sync_channel::<Chunk>(threads * 4);
    for bucket in buckets.into_iter().filter(|b| !b.is_empty()) {
        let tx = tx.clone();
        let preds = preds.clone();
        let stats = stats.clone();
        std::thread::spawn(move || {
            for part in bucket {
                let heap = part.columns();
                let compiled = colscan::compile(&preds, heap);
                if compiled.is_never() {
                    continue;
                }
                for si in 0..heap.segment_count() {
                    if stats.deadline_expired() {
                        return;
                    }
                    let seg = heap.segment(si).expect("segment index in range");
                    let sel = compiled.select(seg);
                    if sel.is_empty() {
                        continue;
                    }
                    stats.note_chunk();
                    let chunk = Chunk::Cols(ColChunk {
                        part: Arc::clone(&part),
                        seg: si,
                        sel,
                    });
                    if tx.send(chunk).is_err() {
                        return; // consumer dropped the stream
                    }
                }
            }
        });
    }
    drop(tx);
    Box::new(rx.into_iter())
}

/// The chunk scan for one base scan (mirrors `exec::scan_stream`): shape
/// pruning per partition, qualification (plus any fused filter) compiled
/// per partition, one chunk per surviving segment.
fn scan_chunks<'a>(
    snap: crate::exec::RelSnap,
    qualification: &'a Option<Predicate>,
    shape: &'a Option<ShapePredicate>,
    opts: &ExecOptions,
    extra_filter: Option<&'a Predicate>,
    stats: ExecStats,
) -> ChunkStream<'a> {
    let parts = snap
        .parts
        .retain_shapes(|s| shape.as_ref().map(|p| p.admits(s)).unwrap_or(true));
    let preds: Vec<Predicate> = qualification.iter().chain(extra_filter).cloned().collect();
    let workers = scan_parallelism(parts.partition_count(), parts.len(), opts);
    if workers > 1 {
        return parallel_scan_chunks(parts.into_parts(), preds, workers, stats);
    }
    let parts = parts.into_parts().into_iter().map(|(_, p)| p).collect();
    Box::new(ChunkScan {
        parts,
        preds,
        part: 0,
        seg: 0,
        compiled: None,
        stats,
    })
}

/// A non-fused filter: compiled once per partition (chunks of one partition
/// arrive consecutively in serial order, so a one-entry cache suffices) and
/// intersected with the chunk's selection; row chunks fall back to
/// per-tuple evaluation.
fn filter_chunks<'a>(input: ChunkStream<'a>, predicate: &'a Predicate) -> ChunkStream<'a> {
    let mut cache: Option<(*const Partition, colscan::Compiled)> = None;
    Box::new(input.filter_map(move |chunk| match chunk {
        Chunk::Cols(c) => {
            let key = Arc::as_ptr(&c.part);
            if cache.as_ref().map(|(k, _)| *k != key).unwrap_or(true) {
                let compiled = colscan::compile(std::slice::from_ref(predicate), c.part.columns());
                cache = Some((key, compiled));
            }
            let compiled = &cache.as_ref().expect("cache just filled").1;
            match compiled {
                colscan::Compiled::Never => None,
                colscan::Compiled::All => Some(Chunk::Cols(c)),
                _ => {
                    let heap = c.part.columns();
                    let seg = heap.segment(c.seg).expect("segment index in range");
                    let mut sel = compiled.select(seg);
                    sel.and(&c.sel);
                    if sel.is_empty() {
                        None
                    } else {
                        Some(Chunk::Cols(ColChunk { sel, ..c }))
                    }
                }
            }
        }
        Chunk::Rows(mut v) => {
            v.retain(|t| predicate.eval(t));
            if v.is_empty() {
                None
            } else {
                Some(Chunk::Rows(v))
            }
        }
    }))
}

/// A type guard over chunks.  For a columnar chunk the verdict is a
/// shape-level constant — the whole chunk passes or drops without touching
/// a row, the paper's "presence is shape membership" made operational.
fn guard_chunks<'a>(input: ChunkStream<'a>, attrs: &'a AttrSet) -> ChunkStream<'a> {
    Box::new(input.filter_map(move |chunk| match chunk {
        Chunk::Cols(c) => attrs.is_subset(c.part.shape()).then_some(Chunk::Cols(c)),
        Chunk::Rows(mut v) => {
            v.retain(|t| t.defined_on(attrs));
            if v.is_empty() {
                None
            } else {
                Some(Chunk::Rows(v))
            }
        }
    }))
}

/// Duplicate-eliminating projection.  Columnar chunks materialize *narrow*
/// tuples — only the projected columns are ever touched; the dropped
/// columns of the partition are never read.  First occurrence wins, as in
/// the row pipeline.
fn project_chunks<'a>(
    input: ChunkStream<'a>,
    attrs: &'a AttrSet,
    stats: ExecStats,
) -> ChunkStream<'a> {
    let mut seen: BTreeSet<Tuple> = BTreeSet::new();
    Box::new(input.filter_map(move |chunk| {
        let mut out = Vec::new();
        match chunk {
            Chunk::Cols(c) => {
                let heap = c.part.columns();
                let proj_shape = heap.shape().intersection(attrs);
                let proj_attrs: Vec<Attr> = heap
                    .attrs()
                    .iter()
                    .filter(|a| attrs.contains(a))
                    .cloned()
                    .collect();
                let cols: Vec<usize> = proj_attrs
                    .iter()
                    .map(|a| heap.col_index(a.name()).expect("attr in shape"))
                    .collect();
                let seg = heap.segment(c.seg).expect("segment index in range");
                for row in c.sel.iter() {
                    let t = Tuple::from_shape_values(
                        proj_shape.clone(),
                        &proj_attrs,
                        cols.iter().map(|&ci| seg.value_at(ci, row)),
                    );
                    stats.note_materialized(1);
                    if seen.insert(t.clone()) {
                        out.push(t);
                    }
                }
            }
            Chunk::Rows(v) => {
                for t in v {
                    let p = t.project(attrs);
                    if seen.insert(p.clone()) {
                        out.push(p);
                    }
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Chunk::Rows(out))
        }
    }))
}

/// Hash join over chunks.  The build side is drained into a [`RowBlock`]
/// (the compact binary row format shared with the WAL codec) with hash
/// buckets holding row *indices*; the probe side stays columnar: per
/// probe row only the join-key columns are read to form the lookup key,
/// and the full row is materialized only when it actually has partners.
fn hash_join_chunks<'a>(
    probe: ChunkStream<'a>,
    build: ChunkStream<'a>,
    common: AttrSet,
    stats: ExecStats,
) -> ChunkStream<'a> {
    let mut block = RowBlock::new();
    let mut hashed: HashMap<Tuple, Vec<u32>> = HashMap::new();
    let mut scan_side: Vec<u32> = Vec::new();
    for chunk in build {
        for t in chunk.into_tuples(&stats) {
            if t.defined_on(&common) {
                let key = t.project(&common);
                let idx = block.push(&t);
                hashed.entry(key).or_default().push(idx);
            } else {
                let idx = block.push(&t);
                scan_side.push(idx);
            }
        }
    }
    // Per-partition probe-side key plan: the common attributes' column
    // indices in canonical order, or None when the shape lacks part of the
    // key (those rows take the pairwise path).
    type KeyPlan = Option<(Vec<Attr>, Vec<usize>)>;
    let mut key_plan: Option<(*const Partition, KeyPlan)> = None;
    Box::new(probe.filter_map(move |chunk| {
        let mut out = Vec::new();
        match chunk {
            Chunk::Cols(c) => {
                let heap = c.part.columns();
                let ptr = Arc::as_ptr(&c.part);
                if key_plan.as_ref().map(|(k, _)| *k != ptr).unwrap_or(true) {
                    let plan = common.is_subset(heap.shape()).then(|| {
                        let key_attrs: Vec<Attr> = heap
                            .attrs()
                            .iter()
                            .filter(|a| common.contains(a))
                            .cloned()
                            .collect();
                        let cols = key_attrs
                            .iter()
                            .map(|a| heap.col_index(a.name()).expect("attr in shape"))
                            .collect();
                        (key_attrs, cols)
                    });
                    key_plan = Some((ptr, plan));
                }
                let seg = heap.segment(c.seg).expect("segment index in range");
                match &key_plan.as_ref().expect("plan just filled").1 {
                    Some((key_attrs, cols)) => {
                        for row in c.sel.iter() {
                            let key = Tuple::from_shape_values(
                                common.clone(),
                                key_attrs,
                                cols.iter().map(|&ci| seg.value_at(ci, row)),
                            );
                            let partners = hashed.get(&key);
                            if partners.is_none() && scan_side.is_empty() {
                                continue; // never materialized
                            }
                            let l = heap.materialize(seg, row);
                            stats.note_materialized(1);
                            for &idx in partners.into_iter().flatten() {
                                out.push(l.merged_with(&block.get(idx)));
                            }
                            for &idx in &scan_side {
                                let r = block.get(idx);
                                if l.joinable_with(&r) {
                                    out.push(l.merged_with(&r));
                                }
                            }
                        }
                    }
                    None => {
                        // The probe shape lacks part of the key: pair
                        // against the whole build side.
                        let mut probe_rows = Vec::with_capacity(c.len());
                        c.materialize_into(&mut probe_rows);
                        stats.note_materialized(probe_rows.len() as u64);
                        for l in probe_rows {
                            for r in block.iter() {
                                if l.joinable_with(&r) {
                                    out.push(l.merged_with(&r));
                                }
                            }
                        }
                    }
                }
            }
            Chunk::Rows(v) => {
                for l in v {
                    if l.defined_on(&common) {
                        if let Some(partners) = hashed.get(&l.project(&common)) {
                            for &idx in partners {
                                out.push(l.merged_with(&block.get(idx)));
                            }
                        }
                        for &idx in &scan_side {
                            let r = block.get(idx);
                            if l.joinable_with(&r) {
                                out.push(l.merged_with(&r));
                            }
                        }
                    } else {
                        for r in block.iter() {
                            if l.joinable_with(&r) {
                                out.push(l.merged_with(&r));
                            }
                        }
                    }
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Chunk::Rows(out))
        }
    }))
}

/// Duplicate-eliminating union over chunk streams (tuple identity needs
/// owned rows, so inputs materialize here as in the row pipeline).
fn union_chunks<'a>(inputs: Vec<ChunkStream<'a>>, stats: ExecStats) -> ChunkStream<'a> {
    let mut seen: BTreeSet<Tuple> = BTreeSet::new();
    Box::new(inputs.into_iter().flatten().filter_map(move |chunk| {
        let mut out = Vec::new();
        for t in chunk.into_tuples(&stats) {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Chunk::Rows(out))
        }
    }))
}

/// The aggregation operator: columnar chunks fold through the kernels in
/// [`crate::colscan`] without materializing a tuple; row chunks (join
/// outputs etc.) fold through the reference row-wise path.  Blocking, like
/// every aggregation.
fn aggregate_chunks<'a>(
    input: ChunkStream<'a>,
    group_by: &AttrSet,
    aggs: &[AggExpr],
) -> ChunkStream<'a> {
    let mut state = GroupedAggs::new(group_by.clone(), aggs.to_vec());
    for chunk in input {
        match chunk {
            Chunk::Cols(c) => {
                colscan::aggregate_selected(c.part.columns(), c.seg, &c.sel, &mut state);
            }
            Chunk::Rows(v) => {
                for t in &v {
                    state.add_tuple(t);
                }
            }
        }
    }
    let rows = state.finish();
    if rows.is_empty() {
        Box::new(std::iter::empty())
    } else {
        Box::new(std::iter::once(Chunk::Rows(rows)))
    }
}

/// Builds the late-materialized chunk pipeline for a plan — the batch
/// counterpart of [`exec_node`], one arm per logical operator.  Index
/// lookups (point probes touching a handful of tuples) reuse the row
/// pipeline's probe logic and enter the chunk world as row chunks.
pub(crate) fn exec_chunks<'a>(
    plan: &'a LogicalPlan,
    ctx: &ExecContext,
    stats: &ExecStats,
) -> Result<ChunkStream<'a>> {
    Ok(match plan {
        LogicalPlan::Empty => Box::new(std::iter::empty()),
        LogicalPlan::Scan {
            relation,
            qualification,
            shape,
        } => scan_chunks(
            ctx.snap(relation).clone(),
            qualification,
            shape,
            &ctx.opts,
            None,
            stats.clone(),
        ),
        LogicalPlan::Filter { input, predicate } => {
            // Fuse the filter onto a base scan: the predicate joins the
            // qualification in the per-partition compile.
            if let LogicalPlan::Scan {
                relation,
                qualification,
                shape,
            } = &**input
            {
                scan_chunks(
                    ctx.snap(relation).clone(),
                    qualification,
                    shape,
                    &ctx.opts,
                    Some(predicate),
                    stats.clone(),
                )
            } else {
                filter_chunks(exec_chunks(input, ctx, stats)?, predicate)
            }
        }
        LogicalPlan::Project { input, attrs } => {
            project_chunks(exec_chunks(input, ctx, stats)?, attrs, stats.clone())
        }
        LogicalPlan::Guard { input, attrs } => guard_chunks(exec_chunks(input, ctx, stats)?, attrs),
        LogicalPlan::IndexLookup { .. } => {
            // A point probe resolves a handful of rids; the row pipeline's
            // probe logic is already optimal (and eager).
            let rows: Vec<Tuple> = exec_node(plan, ctx)?.collect();
            if rows.is_empty() {
                Box::new(std::iter::empty())
            } else {
                Box::new(std::iter::once(Chunk::Rows(rows)))
            }
        }
        LogicalPlan::Join { left, right } => {
            let common = snap_plan_attrs(left, ctx).intersection(&snap_plan_attrs(right, ctx));
            match join_strategy_for(left, right, &common, ctx) {
                JoinStrategy::IndexNestedLoopRight => {
                    let side = inl_inner_side(right).expect("the strategy implies a base scan");
                    let probe: TupleStream<'a> =
                        chunks_to_tuples(exec_chunks(left, ctx, stats)?, stats.clone());
                    rows_chunks(index_nested_loop_stream(
                        probe,
                        ctx.snap(side.relation).clone(),
                        side.qualification,
                        side.shapes.clone(),
                        common,
                    ))
                }
                JoinStrategy::IndexNestedLoopLeft => {
                    let side = inl_inner_side(left).expect("the strategy implies a base scan");
                    let probe: TupleStream<'a> =
                        chunks_to_tuples(exec_chunks(right, ctx, stats)?, stats.clone());
                    rows_chunks(index_nested_loop_stream(
                        probe,
                        ctx.snap(side.relation).clone(),
                        side.qualification,
                        side.shapes.clone(),
                        common,
                    ))
                }
                JoinStrategy::Hash => {
                    let probe = exec_chunks(left, ctx, stats)?;
                    let build = exec_chunks(right, ctx, stats)?;
                    hash_join_chunks(probe, build, common, stats.clone())
                }
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            let streams: Vec<ChunkStream<'a>> = inputs
                .iter()
                .map(|i| exec_chunks(i, ctx, stats))
                .collect::<Result<_>>()?;
            union_chunks(streams, stats.clone())
        }
        LogicalPlan::Extend { input, attr, value } => {
            let inner = exec_chunks(input, ctx, stats)?;
            let stats = stats.clone();
            Box::new(inner.map(move |chunk| {
                let mut rows = chunk.into_tuples(&stats);
                for t in rows.iter_mut() {
                    t.insert(attr.as_str(), value.clone());
                }
                Chunk::Rows(rows)
            }))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate_chunks(exec_chunks(input, ctx, stats)?, group_by, aggs),
    })
}
