//! Binding a parsed FRQL query against the catalog and building the initial
//! logical plan.

use flexrel_core::attr::AttrSet;
use flexrel_core::error::{CoreError, Result};
use flexrel_storage::Catalog;

use crate::logical::LogicalPlan;
use crate::parser::Query;

fn check_attrs(known: &AttrSet, used: &AttrSet, what: &str) -> Result<()> {
    if !used.is_subset(known) {
        return Err(CoreError::UnknownAttribute(format!(
            "{} in {}",
            used.difference(known),
            what
        )));
    }
    Ok(())
}

/// Builds the initial (unoptimized) logical plan for a query: scan (joined
/// naturally with each `JOIN` relation in source order), then filter, then
/// guard, then projection — or, for an aggregating query, a single
/// [`LogicalPlan::Aggregate`] node on top.  Predicates, guards and
/// projections are checked against the union of all named relations'
/// scheme attributes.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    let def = catalog.get(&query.relation)?;
    let mut known = def.scheme.attrs();
    for j in &query.joins {
        let jdef = catalog.get(j)?;
        if j == &query.relation || query.joins.iter().filter(|o| *o == j).count() > 1 {
            return Err(CoreError::Invalid(format!(
                "relation {} appears more than once in FROM/JOIN",
                j
            )));
        }
        known = known.union(&jdef.scheme.attrs());
    }

    if let Some(p) = &query.predicate {
        check_attrs(&known, &p.referenced_attrs(), "WHERE clause")?;
    }
    if let Some(g) = &query.guard {
        check_attrs(&known, g, "GUARD clause")?;
    }
    if let Some(proj) = &query.projection {
        check_attrs(&known, proj, "SELECT list")?;
    }
    if let Some(g) = &query.group_by {
        check_attrs(&known, g, "GROUP BY clause")?;
    }
    for agg in &query.aggregates {
        if let Some(a) = &agg.input {
            check_attrs(&known, &AttrSet::singleton(a.clone()), "aggregate")?;
        }
    }

    // Aggregation-specific validation: GROUP BY needs aggregates, and any
    // plain select-list attribute must be one of the grouping attributes
    // (the only per-group-constant columns).
    if query.aggregates.is_empty() {
        if query.group_by.is_some() {
            return Err(CoreError::Invalid(
                "GROUP BY without an aggregate in the select list".into(),
            ));
        }
    } else {
        let group = query.group_by.clone().unwrap_or_else(AttrSet::empty);
        if let Some(proj) = &query.projection {
            if !proj.is_subset(&group) {
                return Err(CoreError::Invalid(format!(
                    "select-list attributes {} are not in GROUP BY",
                    proj.difference(&group)
                )));
            }
        }
    }

    let mut plan = LogicalPlan::scan(query.relation.clone());
    for j in &query.joins {
        plan = plan.join(LogicalPlan::scan(j.clone()));
    }
    if let Some(p) = &query.predicate {
        plan = plan.filter(p.clone());
    }
    if let Some(g) = &query.guard {
        plan = plan.guard(g.clone());
    }
    if query.aggregates.is_empty() {
        if let Some(proj) = &query.projection {
            plan = plan.project(proj.clone());
        }
    } else {
        let group = query.group_by.clone().unwrap_or_else(AttrSet::empty);
        plan = plan.aggregate(group, query.aggregates.clone());
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use flexrel_storage::RelationDef;
    use flexrel_workload::employee_relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        c
    }

    #[test]
    fn plan_shape_follows_the_query() {
        let q = parse("SELECT empno FROM employee WHERE jobtype = 'secretary' GUARD typing-speed")
            .unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        let s = plan.to_string();
        assert!(s.contains("Project {empno}"));
        assert!(s.contains("Guard {typing-speed}"));
        assert!(s.contains("Filter jobtype = 'secretary'"));
        assert!(s.contains("Scan employee"));
        assert_eq!(plan.node_count(), 4);
    }

    #[test]
    fn select_star_has_no_projection_node() {
        let q = parse("SELECT * FROM employee").unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        assert_eq!(plan.node_count(), 1);
    }

    #[test]
    fn aggregate_queries_plan_to_an_aggregate_node() {
        let q = parse("SELECT COUNT(*), SUM(salary) FROM employee WHERE salary > 0").unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        let s = plan.to_string();
        assert!(s.contains("Aggregate count(*), sum(salary)"), "{}", s);
        assert!(s.contains("Filter"));

        let q = parse("SELECT jobtype, COUNT(*) FROM employee GROUP BY jobtype").unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        assert!(plan.to_string().contains("Aggregate group by {jobtype}"));
    }

    #[test]
    fn aggregate_validation_rejects_bad_queries() {
        let c = catalog();
        // GROUP BY without an aggregate.
        let q = parse("SELECT empno FROM employee GROUP BY empno").unwrap();
        assert!(plan_query(&q, &c).is_err());
        // Plain select-list attribute outside GROUP BY.
        let q = parse("SELECT empno, COUNT(*) FROM employee GROUP BY jobtype").unwrap();
        assert!(plan_query(&q, &c).is_err());
        // Unknown aggregate input / group attribute.
        let q = parse("SELECT SUM(bogus) FROM employee").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT COUNT(*) FROM employee GROUP BY bogus").unwrap();
        assert!(plan_query(&q, &c).is_err());
    }

    #[test]
    fn join_queries_plan_to_join_nodes_over_the_union_schema() {
        use flexrel_core::relation::FlexRelation;
        use flexrel_core::scheme::SchemeBuilder;
        let mut c = catalog();
        let mut kinds = FlexRelation::new(
            "jobs",
            SchemeBuilder::all_of(["jobtype", "grade"]).build().unwrap(),
        );
        kinds.set_domain("grade", flexrel_core::value::Domain::Int);
        c.register(RelationDef::from_relation(&kinds)).unwrap();

        // `grade` only exists on the joined relation: the predicate and
        // projection must bind against the union of both schemes.
        let q = parse("SELECT empno, grade FROM employee JOIN jobs WHERE grade > 2").unwrap();
        let plan = plan_query(&q, &c).unwrap();
        let s = plan.to_string();
        assert!(s.contains("Join"), "{}", s);
        assert!(s.contains("Scan employee"), "{}", s);
        assert!(s.contains("Scan jobs"), "{}", s);

        // Unknown join relation and duplicate relation names are rejected.
        let q = parse("SELECT * FROM employee JOIN nowhere").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT * FROM employee JOIN employee").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT * FROM employee JOIN jobs JOIN jobs").unwrap();
        assert!(plan_query(&q, &c).is_err());
    }

    #[test]
    fn unknown_relation_and_attributes_are_rejected() {
        let c = catalog();
        let q = parse("SELECT * FROM nowhere").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT bogus FROM employee").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT * FROM employee WHERE bogus = 1").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT * FROM employee GUARD bogus").unwrap();
        assert!(plan_query(&q, &c).is_err());
    }
}
