//! Binding a parsed FRQL query against the catalog and building the initial
//! logical plan.

use flexrel_core::attr::AttrSet;
use flexrel_core::error::{CoreError, Result};
use flexrel_storage::Catalog;

use crate::logical::LogicalPlan;
use crate::parser::Query;

fn check_attrs(known: &AttrSet, used: &AttrSet, what: &str) -> Result<()> {
    if !used.is_subset(known) {
        return Err(CoreError::UnknownAttribute(format!(
            "{} in {}",
            used.difference(known),
            what
        )));
    }
    Ok(())
}

/// Builds the initial (unoptimized) logical plan for a query: scan, then
/// filter, then guard, then projection.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    let def = catalog.get(&query.relation)?;
    let known = def.scheme.attrs();

    if let Some(p) = &query.predicate {
        check_attrs(&known, &p.referenced_attrs(), "WHERE clause")?;
    }
    if let Some(g) = &query.guard {
        check_attrs(&known, g, "GUARD clause")?;
    }
    if let Some(proj) = &query.projection {
        check_attrs(&known, proj, "SELECT list")?;
    }

    let mut plan = LogicalPlan::scan(query.relation.clone());
    if let Some(p) = &query.predicate {
        plan = plan.filter(p.clone());
    }
    if let Some(g) = &query.guard {
        plan = plan.guard(g.clone());
    }
    if let Some(proj) = &query.projection {
        plan = plan.project(proj.clone());
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use flexrel_storage::RelationDef;
    use flexrel_workload::employee_relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationDef::from_relation(&employee_relation()))
            .unwrap();
        c
    }

    #[test]
    fn plan_shape_follows_the_query() {
        let q = parse("SELECT empno FROM employee WHERE jobtype = 'secretary' GUARD typing-speed")
            .unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        let s = plan.to_string();
        assert!(s.contains("Project {empno}"));
        assert!(s.contains("Guard {typing-speed}"));
        assert!(s.contains("Filter jobtype = 'secretary'"));
        assert!(s.contains("Scan employee"));
        assert_eq!(plan.node_count(), 4);
    }

    #[test]
    fn select_star_has_no_projection_node() {
        let q = parse("SELECT * FROM employee").unwrap();
        let plan = plan_query(&q, &catalog()).unwrap();
        assert_eq!(plan.node_count(), 1);
    }

    #[test]
    fn unknown_relation_and_attributes_are_rejected() {
        let c = catalog();
        let q = parse("SELECT * FROM nowhere").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT bogus FROM employee").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT * FROM employee WHERE bogus = 1").unwrap();
        assert!(plan_query(&q, &c).is_err());
        let q = parse("SELECT * FROM employee GUARD bogus").unwrap();
        assert!(plan_query(&q, &c).is_err());
    }
}
