//! Semantic facts derived from a scheme and its dependencies, packaged for
//! consumption by a query optimizer.
//!
//! The paper's closures (`X⁺` under the axiom systems ℛ and ℰ) are *proven*
//! statements about every admissible instance of a flexible relation.  This
//! module turns the raw [`ClosureIndex`] into the queryable facts a planner
//! needs to justify semantic rewrites:
//!
//! * **key covers** — `X → scheme-attrs` derivable from the FDs
//!   ([`SemanticFacts::is_key`], [`SemanticFacts::determines`]): `X`
//!   functionally determines an attribute set, so two tuples agreeing on `X`
//!   agree wherever both are defined;
//! * **mandatory attributes** — present in *every* admitted tuple (the
//!   intersection of the scheme's DNF disjuncts,
//!   [`SemanticFacts::mandatory`]), which is what makes an FD on mandatory
//!   attributes behave exactly like a classical key;
//! * **guard subsumption** — a type guard `PRESENT(G)` implied by attributes
//!   already known present, via the existence closure under ℰ
//!   ([`SemanticFacts::guard_subsumed`]);
//! * **variant exclusion** — attributes provably *absent* once an EAD
//!   determinant is pinned to a constant (Def. 2.1 fixes the exact
//!   `Y`-overlap, [`SemanticFacts::absent_attrs`]).
//!
//! All facts are instance-independent: they follow from the declared scheme
//! and dependency set alone, so a rewrite justified by them is sound for
//! every database state.

use crate::attr::AttrSet;
use crate::axioms::{AxiomSystem, ClosureIndex};
use crate::dep::DependencySet;
use crate::scheme::FlexScheme;
use crate::tuple::Tuple;

/// Queryable semantic facts about one flexible relation: its scheme's
/// admitted shapes and the closure of its declared dependencies.
///
/// Build once per relation (the constructor precomputes the closure index
/// and the mandatory attribute set) and query many times during planning.
#[derive(Clone, Debug)]
pub struct SemanticFacts {
    /// All attributes the scheme can ever carry.
    attrs: AttrSet,
    /// Attributes present in every admitted tuple.
    mandatory: AttrSet,
    /// The closure index over the declared dependencies.
    index: ClosureIndex,
    /// The declared dependencies (kept for EAD variant queries).
    deps: DependencySet,
}

impl SemanticFacts {
    /// Derives the facts for a relation with the given scheme and declared
    /// dependencies.
    pub fn new(scheme: &FlexScheme, deps: &DependencySet) -> Self {
        let attrs = scheme.attrs();
        let mut disjuncts = scheme.dnf().into_iter();
        let mandatory = match disjuncts.next() {
            Some(first) => disjuncts.fold(first, |acc, d| acc.intersection(&d)),
            None => AttrSet::empty(),
        };
        SemanticFacts {
            attrs,
            mandatory,
            index: ClosureIndex::new(deps),
            deps: deps.clone(),
        }
    }

    /// All attributes the scheme can ever carry.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The attributes present in every admitted tuple: the intersection of
    /// the scheme's DNF disjuncts.  Every stored tuple — whatever partition
    /// shape it lives in — is defined on these.
    pub fn mandatory(&self) -> &AttrSet {
        &self.mandatory
    }

    /// The functional closure `X⁺` of `x` under the declared FDs
    /// (Beeri–Bernstein over the adapted FDs; the paper's value-determining
    /// reading of `X → Y`).
    pub fn func_closure(&self, x: &AttrSet) -> AttrSet {
        self.index.func_closure(x)
    }

    /// Whether `x` functionally determines all of `ys`: `ys ⊆ x⁺`.  Two
    /// stored tuples agreeing on `x` then agree on every attribute of `ys`
    /// on which both are defined.
    pub fn determines(&self, x: &AttrSet, ys: &AttrSet) -> bool {
        ys.is_subset(&self.index.func_closure(x))
    }

    /// Whether `x` is a key cover of the whole scheme: `x⁺ ⊇ attrs(scheme)`.
    pub fn is_key(&self, x: &AttrSet) -> bool {
        self.attrs.is_subset(&self.index.func_closure(x))
    }

    /// Whether a type guard `PRESENT(guard)` is subsumed by the attributes
    /// of the selection context: `guard ⊆ x⁺` under the attribute closure of
    /// ℰ, so the values of `x` *determine the existence* of every guard
    /// attribute.  Once a selection pins `x` to constants, the guard's
    /// outcome is fixed — [`crate::typecheck::analyse_guard`] then decides
    /// redundant vs. unsatisfiable from the pinned values.
    pub fn guard_subsumed(&self, x: &AttrSet, guard: &AttrSet) -> bool {
        guard.is_subset(&self.index.attr_closure(x, AxiomSystem::E))
    }

    /// The attributes provably *absent* from any admitted tuple that agrees
    /// with the pinned equality constraints: for each EAD whose determinant
    /// is fully pinned, Def. 2.1 fixes the exact `Y`-overlap `Yᵢ`, so the
    /// rest of `Y` cannot be present.  A comparison on such an attribute can
    /// never hold.
    pub fn absent_attrs(&self, pinned: &Tuple) -> AttrSet {
        let mut absent = AttrSet::empty();
        let pinned_attrs = pinned.attrs();
        for ead in self.deps.eads() {
            if ead.lhs().is_subset(&pinned_attrs) {
                let x_value = pinned.project(ead.lhs());
                let yi = ead
                    .variant_for(&x_value)
                    .map(|(_, v)| v.attrs.clone())
                    .unwrap_or_else(AttrSet::empty);
                absent.extend_with(&ead.rhs().difference(&yi));
            }
        }
        absent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::dep::{example2_jobtype_ead, Fd};
    use crate::scheme::{Component, FlexScheme, SchemeBuilder};
    use crate::value::Value;

    fn employee_like() -> (FlexScheme, DependencySet) {
        let variants = FlexScheme::new(
            0,
            2,
            vec![Component::from("typing-speed"), Component::from("products")],
        )
        .unwrap();
        let scheme = SchemeBuilder::all_of(["empno", "salary", "jobtype"])
            .nested(variants)
            .build()
            .unwrap();
        let mut deps = DependencySet::new();
        deps.add(example2_jobtype_ead());
        deps.add(Fd::new(attrs!["empno"], attrs!["salary", "jobtype"]));
        (scheme, deps)
    }

    #[test]
    fn mandatory_is_the_dnf_intersection() {
        let (scheme, deps) = employee_like();
        let facts = SemanticFacts::new(&scheme, &deps);
        assert_eq!(*facts.mandatory(), attrs!["empno", "salary", "jobtype"]);
    }

    #[test]
    fn key_cover_and_determination() {
        let (scheme, deps) = employee_like();
        let facts = SemanticFacts::new(&scheme, &deps);
        assert!(facts.determines(&attrs!["empno"], &attrs!["salary", "jobtype"]));
        assert!(!facts.determines(&attrs!["salary"], &attrs!["empno"]));
        // empno does not determine the optional variant attributes, so it is
        // not a key of the *whole* scheme …
        assert!(!facts.is_key(&attrs!["empno"]));
        // … but it is a key once the FD covers everything.
        let mut deps2 = DependencySet::new();
        deps2.add(Fd::new(attrs!["empno"], scheme.attrs()));
        let facts2 = SemanticFacts::new(&scheme, &deps2);
        assert!(facts2.is_key(&attrs!["empno"]));
    }

    #[test]
    fn guard_subsumption_uses_the_existence_closure() {
        let (scheme, deps) = employee_like();
        let facts = SemanticFacts::new(&scheme, &deps);
        // empno → jobtype (FD), and jobtype existence-determines the
        // variant attributes (the EAD's AD abbreviation): the guard's
        // outcome is a function of empno.
        assert!(facts.guard_subsumed(&attrs!["empno"], &attrs!["typing-speed"]));
        // salary determines nothing, so the guard is not subsumed.
        assert!(!facts.guard_subsumed(&attrs!["salary"], &attrs!["typing-speed"]));
        // Trivial subsumption: a guard over the context's own attributes.
        assert!(facts.guard_subsumed(&attrs!["empno", "salary"], &attrs!["salary"]));
    }

    #[test]
    fn pinned_ead_determinant_excludes_the_other_variants() {
        let (scheme, deps) = employee_like();
        let facts = SemanticFacts::new(&scheme, &deps);
        let pinned = Tuple::new().with("jobtype", Value::tag("secretary"));
        let absent = facts.absent_attrs(&pinned);
        assert!(absent.contains_name("products"), "{absent}");
        assert!(!absent.contains_name("typing-speed"), "{absent}");
        // An unpinned determinant excludes nothing.
        assert!(facts.absent_attrs(&Tuple::new()).is_empty());
    }
}
