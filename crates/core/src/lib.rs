//! # flexrel-core
//!
//! A from-scratch implementation of the model of **flexible relations** and
//! **attribute dependencies** from
//!
//! > C. Kalus, P. Dadam: *Record Subtyping in Flexible Relations by means of
//! > Attribute Dependencies*, ICDE 1995, pp. 383–390.
//!
//! The crate provides:
//!
//! * the data model: attributes, typed values/domains, heterogeneous tuples
//!   ([`attr`], [`value`], [`tuple`](mod@tuple));
//! * the generic flexible-scheme constructor `<at-least, at-most, {…}>` with
//!   DNF unfolding and admissibility checks ([`scheme`]);
//! * flexible relations with insert/update/delete and full type checking
//!   ([`relation`], [`typecheck`]);
//! * the dependency theory: explicit attribute dependencies (EADs), their
//!   abbreviated AD form and adapted FDs ([`dep`]);
//! * the axiom systems ℛ (ADs) and ℰ (FDs + ADs) with closures, implication
//!   tests, derivation traces, minimal covers and the completeness-proof
//!   witness construction ([`axioms`]);
//! * record subtyping: the classical rule as a baseline and the AD-induced,
//!   semantics-preserving subtype families of §3.2 ([`subtype`]);
//! * the mapping of ER predicate-defined specializations onto EADs ([`er`]).
//!
//! Algebraic operators, AD propagation (Theorem 4.3), storage, query
//! processing, decomposition and host-language embedding live in the sibling
//! crates `flexrel-algebra`, `flexrel-storage`, `flexrel-query`,
//! `flexrel-decompose` and `flexrel-embed`.
//!
//! ## Quick example
//!
//! ```
//! use flexrel_core::prelude::*;
//!
//! // Employee scheme: empno, salary, jobtype always present; the variant
//! // attributes are grouped in an optional nested scheme.
//! let variants = FlexScheme::new(0, 2, vec![
//!     Component::from("typing-speed"),
//!     Component::from("products"),
//! ]).unwrap();
//! let scheme = SchemeBuilder::all_of(["empno", "salary", "jobtype"])
//!     .nested(variants)
//!     .build()
//!     .unwrap();
//!
//! // The value of jobtype determines which variant attributes exist.
//! let ead = Ead::new(
//!     AttrSet::singleton("jobtype"),
//!     AttrSet::from_names(["typing-speed", "products"]),
//!     vec![
//!         EadVariant::new(vec![Tuple::new().with("jobtype", Value::tag("secretary"))],
//!                         AttrSet::singleton("typing-speed")),
//!         EadVariant::new(vec![Tuple::new().with("jobtype", Value::tag("salesman"))],
//!                         AttrSet::singleton("products")),
//!     ],
//! ).unwrap();
//!
//! let mut rel = FlexRelation::new("employee", scheme).with_dep(ead);
//! rel.insert(Tuple::new()
//!     .with("empno", 1).with("salary", 4000)
//!     .with("jobtype", Value::tag("secretary"))
//!     .with("typing-speed", 300)).unwrap();
//!
//! // A salesman with a typing-speed is rejected — value-based type checking
//! // that no conventional scheme can express.
//! let bad = Tuple::new()
//!     .with("empno", 2).with("salary", 5000)
//!     .with("jobtype", Value::tag("salesman"))
//!     .with("typing-speed", 250);
//! assert!(rel.insert(bad).is_err());
//! ```

pub mod attr;
pub mod axioms;
pub mod dep;
pub mod er;
pub mod error;
pub mod facts;
pub mod relation;
pub mod scheme;
pub mod subtype;
pub mod tuple;
pub mod typecheck;
pub mod value;

/// Convenient glob import of the most frequently used types.
pub mod prelude {
    pub use crate::attr::{Attr, AttrSet};
    pub use crate::axioms::{AdClosure, AxiomSystem, Derivation};
    pub use crate::dep::{Ad, Dependency, DependencySet, Ead, EadVariant, Fd};
    pub use crate::error::{CoreError, Result};
    pub use crate::facts::SemanticFacts;
    pub use crate::relation::{CheckLevel, FlexRelation};
    pub use crate::scheme::{Component, FlexScheme, SchemeBuilder};
    pub use crate::subtype::{RecordType, SubtypeFamily};
    pub use crate::tuple::Tuple;
    pub use crate::value::{Domain, Value};
}
