//! Record subtyping (§3.2).
//!
//! Two notions are implemented side by side:
//!
//! * the classical record subtyping rule (Cardelli/Wegner): a record type is
//!   a subtype of another if it has at least the supertype's fields and each
//!   shared field's type is a refinement ([`record`]);
//! * the AD-induced, *semantics-preserving* families of §3.2: an attribute
//!   dependency over a flexible scheme generates one supertype and one
//!   subtype per variant, and — unlike the classical rule — keeps the
//!   domain restriction of the determining attributes and the added variant
//!   attributes causally connected ([`family`]).
//!
//! The difference is exactly the paper's Example 3: dropping `jobtype` from
//! the employee type still yields a valid *record* supertype of the three
//! specialised types, but it severs the connection between determinant and
//! variant; the AD-based notion rejects (or at least flags) it.

pub mod family;
pub mod record;

pub use family::{SubtypeFamily, SupertypeJudgement};
pub use record::{is_record_subtype, RecordType};
