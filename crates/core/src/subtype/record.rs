//! The classical record subtyping rule (the baseline of §3.2).

use std::collections::BTreeMap;
use std::fmt;

use crate::attr::{Attr, AttrSet};
use crate::value::{Domain, Value};

/// A record type: a set of typed fields `< a1 : t1, …, am : tm >`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RecordType {
    name: String,
    fields: BTreeMap<Attr, Domain>,
}

impl RecordType {
    /// Creates an empty record type with a name.
    pub fn new(name: impl Into<String>) -> Self {
        RecordType {
            name: name.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Adds a field (builder style).
    pub fn with_field(mut self, attr: impl Into<Attr>, domain: Domain) -> Self {
        self.fields.insert(attr.into(), domain);
        self
    }

    /// Adds a field.
    pub fn add_field(&mut self, attr: impl Into<Attr>, domain: Domain) {
        self.fields.insert(attr.into(), domain);
    }

    /// The type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field names.
    pub fn attrs(&self) -> AttrSet {
        self.fields.keys().collect()
    }

    /// The domain of a field, if present.
    pub fn field(&self, attr: &Attr) -> Option<&Domain> {
        self.fields.get(attr)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Iterates over `(attr, domain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Attr, &Domain)> + '_ {
        self.fields.iter()
    }

    /// Restricts the domain of a field (used to build variant subtypes that
    /// pin the determining attributes to a value set).
    pub fn restrict_field<I>(mut self, attr: &Attr, values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        if let Some(d) = self.fields.get(attr) {
            let restricted = d.restrict_to(values);
            self.fields.insert(attr.clone(), restricted);
        }
        self
    }

    /// The projection of the type onto a set of attributes (classical record
    /// subtyping: any projection of a type is a supertype of it).
    pub fn project(&self, attrs: &AttrSet) -> RecordType {
        RecordType {
            name: format!("{}[{}]", self.name, attrs),
            fields: self
                .fields
                .iter()
                .filter(|(a, _)| attrs.contains(a))
                .map(|(a, d)| (a.clone(), d.clone()))
                .collect(),
        }
    }

    /// Whether a tuple structurally conforms to this record type: it is
    /// defined on all fields and every value lies within the field's domain.
    pub fn accepts(&self, t: &crate::tuple::Tuple) -> bool {
        self.fields
            .iter()
            .all(|(a, d)| t.get(a).map(|v| d.contains(v)).unwrap_or(false))
    }

    /// Renames the type.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = <", self.name)?;
        for (i, (a, d)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} : {}", a, d)?;
        }
        write!(f, ">")
    }
}

/// The classical record subtyping rule:
///
/// ```text
///                tᵢ ≤ uᵢ   (i = 1..n)
/// <a1:t1, …, an:tn, …, am:tm>  ≤  <a1:u1, …, an:un>
/// ```
///
/// i.e. `sub` has at least the fields of `sup` (width subtyping) and each
/// shared field's domain in `sub` is a restriction of the domain in `sup`
/// (depth subtyping).
pub fn is_record_subtype(sub: &RecordType, sup: &RecordType) -> bool {
    sup.iter().all(|(a, sup_dom)| {
        sub.field(a)
            .map(|sub_dom| sub_dom.is_restriction_of(sup_dom))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::tuple;

    fn employee_type() -> RecordType {
        RecordType::new("employee_type")
            .with_field("salary", Domain::Float)
            .with_field(
                "jobtype",
                Domain::enumeration(["secretary", "software engineer", "salesman"]),
            )
    }

    fn secretary_type() -> RecordType {
        RecordType::new("secretary_type")
            .with_field("salary", Domain::Float)
            .with_field("jobtype", Domain::enumeration(["secretary"]))
            .with_field("typing-speed", Domain::Int)
            .with_field("foreign-languages", Domain::Text)
    }

    #[test]
    fn width_subtyping() {
        let wide = RecordType::new("wide")
            .with_field("a", Domain::Int)
            .with_field("b", Domain::Int);
        let narrow = RecordType::new("narrow").with_field("a", Domain::Int);
        assert!(is_record_subtype(&wide, &narrow));
        assert!(!is_record_subtype(&narrow, &wide));
        assert!(is_record_subtype(&wide, &wide));
    }

    #[test]
    fn depth_subtyping_via_domain_restriction() {
        assert!(is_record_subtype(&secretary_type(), &employee_type()));
        // The other direction fails: the jobtype domain of employee_type is
        // not a restriction of {secretary}.
        assert!(!is_record_subtype(&employee_type(), &secretary_type()));
    }

    #[test]
    fn example3_accidental_supertype_is_accepted_by_the_record_rule() {
        // <…, salary: float> without jobtype IS a record supertype of
        // secretary_type — this is precisely the weakness §3.2 points out.
        let accidental = RecordType::new("salary_only").with_field("salary", Domain::Float);
        assert!(is_record_subtype(&secretary_type(), &accidental));
    }

    #[test]
    fn incompatible_field_breaks_subtyping() {
        let a = RecordType::new("a").with_field("x", Domain::Text);
        let b = RecordType::new("b").with_field("x", Domain::Int);
        assert!(!is_record_subtype(&a, &b));
    }

    #[test]
    fn projection_yields_a_supertype() {
        let t = secretary_type();
        let p = t.project(&attrs!["salary", "jobtype"]);
        assert!(is_record_subtype(&t, &p));
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn accepts_checks_fields_and_domains() {
        let t = secretary_type();
        let good = tuple! {
            "salary" => 4000.0,
            "jobtype" => Value::tag("secretary"),
            "typing-speed" => 300,
            "foreign-languages" => "french"
        };
        assert!(t.accepts(&good));
        let wrong_domain = tuple! {
            "salary" => 4000.0,
            "jobtype" => Value::tag("salesman"),
            "typing-speed" => 300,
            "foreign-languages" => "french"
        };
        assert!(!t.accepts(&wrong_domain));
        let missing_field = tuple! {"salary" => 4000.0};
        assert!(!t.accepts(&missing_field));
    }

    #[test]
    fn restrict_field_narrows_domain() {
        let t = employee_type().restrict_field(&Attr::new("jobtype"), [Value::tag("salesman")]);
        let d = t.field(&Attr::new("jobtype")).unwrap();
        assert!(d.contains(&Value::tag("salesman")));
        assert!(!d.contains(&Value::tag("secretary")));
    }

    #[test]
    fn display_shows_fields() {
        let s = employee_type().to_string();
        assert!(s.contains("employee_type = <"));
        assert!(s.contains("salary : float"));
    }

    #[test]
    fn every_type_is_subtype_of_empty_record() {
        let empty = RecordType::new("top");
        assert!(is_record_subtype(&employee_type(), &empty));
        assert!(is_record_subtype(&empty, &empty));
    }
}
