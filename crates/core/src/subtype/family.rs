//! AD-induced subtype families (§3.2).
//!
//! Given a flexible scheme `FS` with attributes `W` and an explicit attribute
//! dependency `<X --exp.attr--> Y, {V1→Y1, …, Vn→Yn}>`:
//!
//! * the **supertype** contains the attributes `W − Y` with the domain of the
//!   determining attributes unrestricted, and
//! * for every variant `i` there is a **subtype** over `(W − Y) ∪ Yi` whose
//!   determining attributes are restricted to the value set `Vi`.
//!
//! This reproduces the classical record subtyping relation — every subtype is
//! a record subtype of the supertype — but it is *stronger*: the domain
//! restriction on the determinant and the addition of the variant attributes
//! are causally connected.  A candidate supertype that drops the determining
//! attributes (the paper's `<…, salary : float>` in Example 3) is still a
//! valid supertype under the record rule but is rejected as
//! *connection-destroying* here.

use std::fmt;

use crate::attr::Attr;
use crate::dep::Ead;
use crate::error::{CoreError, Result};
use crate::scheme::FlexScheme;
use crate::subtype::record::{is_record_subtype, RecordType};
use crate::value::Domain;

/// The verdict on a candidate supertype of a family (see
/// [`SubtypeFamily::judge_supertype`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupertypeJudgement {
    /// The candidate is a supertype under the record rule *and* it keeps the
    /// determining attributes, so the causal connection between determinant
    /// and variants is preserved.
    SemanticSupertype,
    /// The candidate is a supertype under the record rule but drops at least
    /// one determining attribute — the "purely accidental" reading the paper
    /// warns about.
    AccidentalSupertype,
    /// The candidate is not a supertype of all subtypes even under the
    /// record rule.
    NotASupertype,
}

/// A family of record types induced by one EAD over one flexible scheme.
#[derive(Clone, Debug, PartialEq)]
pub struct SubtypeFamily {
    ead: Ead,
    supertype: RecordType,
    subtypes: Vec<RecordType>,
}

impl SubtypeFamily {
    /// Derives the family from a scheme, an EAD over that scheme and the
    /// attribute domains.  `domains` supplies the unrestricted domain for
    /// every attribute of the scheme (missing attributes default to
    /// [`Domain::Any`]).
    pub fn derive(
        scheme: &FlexScheme,
        ead: &Ead,
        domains: &[(&str, Domain)],
        name: &str,
    ) -> Result<Self> {
        let w = scheme.attrs();
        if !ead.lhs().is_subset(&w) || !ead.rhs().is_subset(&w) {
            return Err(CoreError::InvalidDependency(format!(
                "the EAD mentions attributes outside the scheme {}",
                scheme
            )));
        }
        let domain_of = |a: &Attr| -> Domain {
            domains
                .iter()
                .find(|(n, _)| *n == a.name())
                .map(|(_, d)| d.clone())
                .unwrap_or(Domain::Any)
        };

        // Supertype: W − Y, unrestricted domains.
        let super_attrs = w.difference(ead.rhs());
        let mut supertype = RecordType::new(format!("{}_type", name));
        for a in super_attrs.iter() {
            supertype.add_field(a.clone(), domain_of(&a));
        }

        // One subtype per variant: (W − Y) ∪ Yi with X restricted to Vi.
        let mut subtypes = Vec::with_capacity(ead.variants().len());
        for (i, variant) in ead.variants().iter().enumerate() {
            let attrs = super_attrs.union(&variant.attrs);
            let mut ty = RecordType::new(format!("{}_variant_{}", name, i));
            for a in attrs.iter() {
                ty.add_field(a.clone(), domain_of(&a));
            }
            // Restrict each determining attribute to the values occurring for
            // it inside Vi.
            for x_attr in ead.lhs().iter() {
                let values: Vec<_> = variant
                    .values
                    .iter()
                    .filter_map(|t| t.get(&x_attr).cloned())
                    .collect();
                ty = ty.restrict_field(&x_attr, values);
            }
            subtypes.push(ty);
        }
        Ok(SubtypeFamily {
            ead: ead.clone(),
            supertype,
            subtypes,
        })
    }

    /// The EAD the family was derived from.
    pub fn ead(&self) -> &Ead {
        &self.ead
    }

    /// The derived supertype (`W − Y`, unrestricted determinant domain).
    pub fn supertype(&self) -> &RecordType {
        &self.supertype
    }

    /// The derived subtypes, one per variant of the EAD.
    pub fn subtypes(&self) -> &[RecordType] {
        &self.subtypes
    }

    /// Whether every derived subtype is a record subtype of the derived
    /// supertype (it always is — this is the "ADs incorporate record
    /// subtyping" direction of §3.2).
    pub fn record_rule_holds(&self) -> bool {
        self.subtypes
            .iter()
            .all(|s| is_record_subtype(s, &self.supertype))
    }

    /// Judges an arbitrary candidate supertype of the whole family:
    ///
    /// * [`SupertypeJudgement::SemanticSupertype`] — record supertype of all
    ///   subtypes *and* the determining attributes `X` are retained;
    /// * [`SupertypeJudgement::AccidentalSupertype`] — record supertype of
    ///   all subtypes but some determining attribute has been dropped, so the
    ///   causal connection of the simultaneous type changes is destroyed
    ///   (Example 3);
    /// * [`SupertypeJudgement::NotASupertype`] otherwise.
    pub fn judge_supertype(&self, candidate: &RecordType) -> SupertypeJudgement {
        let record_ok = self
            .subtypes
            .iter()
            .all(|s| is_record_subtype(s, candidate));
        if !record_ok {
            return SupertypeJudgement::NotASupertype;
        }
        if self.ead.lhs().is_subset(&candidate.attrs()) {
            SupertypeJudgement::SemanticSupertype
        } else {
            SupertypeJudgement::AccidentalSupertype
        }
    }

    /// Enumerates all projections of the derived supertype and classifies
    /// each, returning `(semantic, accidental, not_a_supertype)` counts.
    /// This quantifies how much stricter the AD-based notion is than the
    /// record rule (experiment E3); only intended for supertypes with at most
    /// 16 attributes.
    pub fn classify_all_projections(&self) -> (usize, usize, usize) {
        let mut semantic = 0;
        let mut accidental = 0;
        let mut not_super = 0;
        for attrs in self.supertype.attrs().power_set() {
            let candidate = self.supertype.project(&attrs);
            match self.judge_supertype(&candidate) {
                SupertypeJudgement::SemanticSupertype => semantic += 1,
                SupertypeJudgement::AccidentalSupertype => accidental += 1,
                SupertypeJudgement::NotASupertype => not_super += 1,
            }
        }
        (semantic, accidental, not_super)
    }
}

impl fmt::Display for SubtypeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.supertype)?;
        for s in &self.subtypes {
            writeln!(f, "  {}", s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::dep::example2_jobtype_ead;
    use crate::scheme::{Component, SchemeBuilder};
    use crate::value::Value;

    fn employee_scheme() -> FlexScheme {
        let variants = FlexScheme::new(
            0,
            5,
            vec![
                Component::from("typing-speed"),
                Component::from("foreign-languages"),
                Component::from("products"),
                Component::from("programming-languages"),
                Component::from("sales-commission"),
            ],
        )
        .unwrap();
        SchemeBuilder::all_of(["salary", "jobtype"])
            .nested(variants)
            .build()
            .unwrap()
    }

    fn employee_domains() -> Vec<(&'static str, Domain)> {
        vec![
            ("salary", Domain::Float),
            (
                "jobtype",
                Domain::enumeration(["secretary", "software engineer", "salesman"]),
            ),
            ("typing-speed", Domain::Int),
            ("foreign-languages", Domain::Text),
            ("products", Domain::Text),
            ("programming-languages", Domain::Text),
            ("sales-commission", Domain::Int),
        ]
    }

    fn family() -> SubtypeFamily {
        SubtypeFamily::derive(
            &employee_scheme(),
            &example2_jobtype_ead(),
            &employee_domains(),
            "employee",
        )
        .unwrap()
    }

    #[test]
    fn example3_types_are_reproduced() {
        let fam = family();
        // Supertype: salary + jobtype with the full jobtype enumeration.
        assert_eq!(fam.supertype().attrs(), attrs!["salary", "jobtype"]);
        let jd = fam.supertype().field(&Attr::new("jobtype")).unwrap();
        assert!(jd.contains(&Value::tag("secretary")));
        assert!(jd.contains(&Value::tag("salesman")));

        // Three subtypes with restricted jobtype domains and variant attrs.
        assert_eq!(fam.subtypes().len(), 3);
        let secretary = &fam.subtypes()[0];
        assert_eq!(
            secretary.attrs(),
            attrs!["salary", "jobtype", "typing-speed", "foreign-languages"]
        );
        let sd = secretary.field(&Attr::new("jobtype")).unwrap();
        assert!(sd.contains(&Value::tag("secretary")));
        assert!(!sd.contains(&Value::tag("salesman")));

        let salesman = &fam.subtypes()[2];
        assert_eq!(
            salesman.attrs(),
            attrs!["salary", "jobtype", "products", "sales-commission"]
        );
    }

    #[test]
    fn ads_incorporate_record_subtyping() {
        // Every AD-derived subtype is a record subtype of the derived
        // supertype — the inclusion rule is expressible with an AD.
        assert!(family().record_rule_holds());
    }

    #[test]
    fn example3_accidental_supertype_is_detected() {
        let fam = family();
        // <…, salary : float> without jobtype: record-supertype of all three
        // subtypes, but the connection to the determinant is destroyed.
        let salary_only = RecordType::new("salary_only").with_field("salary", Domain::Float);
        assert_eq!(
            fam.judge_supertype(&salary_only),
            SupertypeJudgement::AccidentalSupertype
        );
        // The full employee type is a semantic supertype.
        assert_eq!(
            fam.judge_supertype(fam.supertype()),
            SupertypeJudgement::SemanticSupertype
        );
        // A type with an unrelated mandatory field is no supertype at all.
        let unrelated = RecordType::new("x")
            .with_field("salary", Domain::Float)
            .with_field("badge-number", Domain::Int);
        assert_eq!(
            fam.judge_supertype(&unrelated),
            SupertypeJudgement::NotASupertype
        );
    }

    #[test]
    fn classification_counts_projections() {
        let fam = family();
        let (semantic, accidental, not_super) = fam.classify_all_projections();
        // Projections of {salary, jobtype}: {}, {salary}, {jobtype},
        // {salary, jobtype}.  All are record supertypes; those containing
        // jobtype are semantic.
        assert_eq!(semantic + accidental + not_super, 4);
        assert_eq!(semantic, 2);
        assert_eq!(accidental, 2);
        assert_eq!(not_super, 0);
    }

    #[test]
    fn derive_rejects_foreign_ead() {
        let scheme = SchemeBuilder::all_of(["a"]).build().unwrap();
        let err = SubtypeFamily::derive(&scheme, &example2_jobtype_ead(), &[], "x");
        assert!(err.is_err());
    }

    #[test]
    fn display_lists_every_type() {
        let s = family().to_string();
        assert!(s.contains("employee_type"));
        assert!(s.contains("employee_variant_0"));
        assert!(s.contains("employee_variant_2"));
    }

    #[test]
    fn subtype_domains_restrict_each_determining_attribute() {
        // Multi-attribute determinant: sex + marital-status determine
        // maiden-name.
        let scheme = SchemeBuilder::all_of(["sex", "marital-status"])
            .optional("maiden-name")
            .build()
            .unwrap();
        let mk = |sex: &str, ms: &str| {
            crate::tuple::Tuple::new()
                .with("sex", Value::tag(sex))
                .with("marital-status", Value::tag(ms))
        };
        let ead = Ead::new(
            attrs!["sex", "marital-status"],
            attrs!["maiden-name"],
            vec![crate::dep::EadVariant::new(
                vec![mk("female", "married"), mk("female", "widowed")],
                attrs!["maiden-name"],
            )],
        )
        .unwrap();
        let fam = SubtypeFamily::derive(
            &scheme,
            &ead,
            &[
                ("sex", Domain::enumeration(["female", "male"])),
                (
                    "marital-status",
                    Domain::enumeration(["single", "married", "widowed"]),
                ),
                ("maiden-name", Domain::Text),
            ],
            "person",
        )
        .unwrap();
        let sub = &fam.subtypes()[0];
        let sexdom = sub.field(&Attr::new("sex")).unwrap();
        assert!(sexdom.contains(&Value::tag("female")));
        assert!(!sexdom.contains(&Value::tag("male")));
        let msdom = sub.field(&Attr::new("marital-status")).unwrap();
        assert!(msdom.contains(&Value::tag("married")));
        assert!(msdom.contains(&Value::tag("widowed")));
        assert!(!msdom.contains(&Value::tag("single")));
        assert!(fam.record_rule_holds());
    }
}
