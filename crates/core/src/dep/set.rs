//! Sets of mixed dependencies (the `AF` of the completeness proof).

use std::collections::HashSet;
use std::fmt;

use crate::attr::AttrSet;
use crate::dep::{Ad, Dependency, Ead, Fd};
use crate::error::Result;
use crate::tuple::Tuple;

/// An ordered collection of [`Dependency`] values (FDs and ADs), as attached
/// to a flexible relation scheme or handed to the axiom systems.
///
/// Iteration order is insertion order (first insertion wins on duplicates);
/// a hash index alongside the ordered storage makes [`DependencySet::add`]
/// and [`DependencySet::contains`] O(1) instead of an O(n) scan, which is
/// what keeps axiom saturation and propagation from going quadratic in |Σ|.
#[derive(Clone, Debug, Default)]
pub struct DependencySet {
    deps: Vec<Dependency>,
    index: HashSet<Dependency>,
}

// Equality is over the ordered contents; the index is derived state.
impl PartialEq for DependencySet {
    fn eq(&self, other: &Self) -> bool {
        self.deps == other.deps
    }
}

impl Eq for DependencySet {}

impl DependencySet {
    /// The empty dependency set.
    pub fn new() -> Self {
        DependencySet::default()
    }

    /// Builds a set from an iterator of dependencies.
    ///
    /// Unlike [`DependencySet::add`], this preserves the given sequence
    /// verbatim, duplicates included (matching the original constructor).
    pub fn from_deps<I, D>(deps: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: Into<Dependency>,
    {
        let deps: Vec<Dependency> = deps.into_iter().map(Into::into).collect();
        let index = deps.iter().cloned().collect();
        DependencySet { deps, index }
    }

    /// Adds a dependency (duplicates are ignored).
    pub fn add(&mut self, dep: impl Into<Dependency>) {
        let dep = dep.into();
        if self.index.insert(dep.clone()) {
            self.deps.push(dep);
        }
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Whether the given dependency is syntactically contained in the set.
    pub fn contains(&self, dep: &Dependency) -> bool {
        self.index.contains(dep)
    }

    /// Iterates over all dependencies.
    pub fn iter(&self) -> impl Iterator<Item = &Dependency> + '_ {
        self.deps.iter()
    }

    /// Iterates over the attribute dependencies in abbreviated form; explicit
    /// ADs are abbreviated on the fly (this is the view the axiom systems
    /// reason over).
    pub fn ads(&self) -> impl Iterator<Item = Ad> + '_ {
        self.deps.iter().filter_map(|d| d.as_ad())
    }

    /// Iterates over the explicit attribute dependencies only.
    pub fn eads(&self) -> impl Iterator<Item = &Ead> + '_ {
        self.deps.iter().filter_map(|d| match d {
            Dependency::Ead(e) => Some(e),
            _ => None,
        })
    }

    /// Iterates over the functional dependencies only.
    pub fn fds(&self) -> impl Iterator<Item = &Fd> + '_ {
        self.deps.iter().filter_map(|d| match d {
            Dependency::Fd(fd) => Some(fd),
            _ => None,
        })
    }

    /// All attributes mentioned on either side of any dependency.
    pub fn attrs(&self) -> AttrSet {
        let mut out = AttrSet::empty();
        for d in &self.deps {
            out.extend_with(d.lhs());
            out.extend_with(d.rhs());
        }
        out
    }

    /// Whether every dependency holds on the given instance.
    pub fn satisfied_by(&self, tuples: &[Tuple]) -> bool {
        self.deps.iter().all(|d| d.satisfied_by(tuples))
    }

    /// Returns the first dependency violated by the instance, if any.
    pub fn first_violation(&self, tuples: &[Tuple]) -> Option<&Dependency> {
        self.deps.iter().find(|d| !d.satisfied_by(tuples))
    }

    /// Checks inserting `new` into `existing` against every dependency.
    /// Explicit ADs constrain the new tuple on its own (Def. 2.1);
    /// abbreviated ADs and FDs constrain it relative to the existing tuples.
    pub fn check_insert(&self, existing: &[Tuple], new: &Tuple) -> Result<()> {
        for d in &self.deps {
            match d {
                Dependency::Ad(ad) => ad.check_insert(existing, new)?,
                Dependency::Ead(ead) => ead.check_tuple(new)?,
                Dependency::Fd(fd) => fd.check_insert(existing, new)?,
            }
        }
        Ok(())
    }

    /// Removes and returns the dependency at `index`.
    pub fn remove(&mut self, index: usize) -> Dependency {
        let removed = self.deps.remove(index);
        // `from_deps` may have stored duplicates; only drop the hash entry
        // when the last occurrence goes.
        if !self.deps.contains(&removed) {
            self.index.remove(&removed);
        }
        removed
    }

    /// A new set containing only the attribute dependencies (abbreviated and
    /// explicit).
    pub fn only_ads(&self) -> DependencySet {
        DependencySet::from_deps(self.deps.iter().filter(|d| d.is_ad()).cloned())
    }

    /// A new set containing only the functional dependencies.
    pub fn only_fds(&self) -> DependencySet {
        DependencySet::from_deps(self.deps.iter().filter(|d| d.is_fd()).cloned())
    }

    /// Union of two dependency sets (duplicates removed).
    pub fn union(&self, other: &DependencySet) -> DependencySet {
        let mut out = self.clone();
        for d in &other.deps {
            out.add(d.clone());
        }
        out
    }
}

impl fmt::Display for DependencySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.deps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", d)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Dependency> for DependencySet {
    fn from_iter<T: IntoIterator<Item = Dependency>>(iter: T) -> Self {
        let mut s = DependencySet::new();
        for d in iter {
            s.add(d);
        }
        s
    }
}

impl<'a> IntoIterator for &'a DependencySet {
    type Item = &'a Dependency;
    type IntoIter = std::slice::Iter<'a, Dependency>;
    fn into_iter(self) -> Self::IntoIter {
        self.deps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::{attrs, tuple};

    fn sample() -> DependencySet {
        let mut s = DependencySet::new();
        s.add(Ad::new(attrs!["jobtype"], attrs!["products"]));
        s.add(Fd::new(attrs!["empno"], attrs!["salary"]));
        s
    }

    #[test]
    fn add_deduplicates() {
        let mut s = sample();
        assert_eq!(s.len(), 2);
        s.add(Ad::new(attrs!["jobtype"], attrs!["products"]));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_insertion_order_stable() {
        // The hash dedup index must not disturb the observable order: the set
        // iterates in first-insertion order, duplicates are dropped, and
        // removal keeps the relative order of the survivors.
        let mut s = DependencySet::new();
        let deps: Vec<Dependency> = vec![
            Ad::new(attrs!["z"], attrs!["y"]).into(),
            Fd::new(attrs!["a"], attrs!["b"]).into(),
            Ad::new(attrs!["m"], attrs!["n"]).into(),
            Fd::new(attrs!["z"], attrs!["a"]).into(),
        ];
        for d in &deps {
            s.add(d.clone());
        }
        // Re-adding earlier members must neither duplicate nor reorder.
        s.add(deps[2].clone());
        s.add(deps[0].clone());
        let got: Vec<&Dependency> = s.iter().collect();
        assert_eq!(got, deps.iter().collect::<Vec<_>>());
        assert!(deps.iter().all(|d| s.contains(d)));
        // Removal preserves the order of the remaining members.
        let removed = s.remove(1);
        assert_eq!(removed, deps[1]);
        assert!(!s.contains(&deps[1]));
        let got: Vec<&Dependency> = s.iter().collect();
        assert_eq!(got, vec![&deps[0], &deps[2], &deps[3]]);
        // And adding the removed member again appends at the end.
        s.add(deps[1].clone());
        let got: Vec<&Dependency> = s.iter().collect();
        assert_eq!(got, vec![&deps[0], &deps[2], &deps[3], &deps[1]]);
    }

    #[test]
    fn partitioning_by_kind() {
        let s = sample();
        assert_eq!(s.ads().count(), 1);
        assert_eq!(s.fds().count(), 1);
        assert_eq!(s.only_ads().len(), 1);
        assert_eq!(s.only_fds().len(), 1);
    }

    #[test]
    fn attrs_collects_both_sides() {
        let s = sample();
        assert_eq!(s.attrs(), attrs!["jobtype", "products", "empno", "salary"]);
    }

    #[test]
    fn satisfaction_and_violation() {
        let s = sample();
        let good = vec![
            tuple! {"empno" => 1, "salary" => 100, "jobtype" => Value::tag("salesman"), "products" => "crm"},
            tuple! {"empno" => 2, "salary" => 120, "jobtype" => Value::tag("salesman"), "products" => "erp"},
        ];
        assert!(s.satisfied_by(&good));
        assert!(s.first_violation(&good).is_none());

        let bad = vec![
            tuple! {"empno" => 1, "salary" => 100},
            tuple! {"empno" => 1, "salary" => 999},
        ];
        assert!(!s.satisfied_by(&bad));
        assert!(s.first_violation(&bad).unwrap().is_fd());
    }

    #[test]
    fn check_insert_delegates_to_members() {
        let s = sample();
        let existing = vec![tuple! {"empno" => 1, "salary" => 100}];
        assert!(s
            .check_insert(&existing, &tuple! {"empno" => 1, "salary" => 100})
            .is_ok());
        assert!(s
            .check_insert(&existing, &tuple! {"empno" => 1, "salary" => 2})
            .is_err());
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = sample();
        let mut b = DependencySet::new();
        b.add(Fd::new(attrs!["empno"], attrs!["salary"]));
        b.add(Ad::new(attrs!["x"], attrs!["y"]));
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn display_lists_members() {
        let s = sample();
        let txt = s.to_string();
        assert!(txt.contains("--attr-->"));
        assert!(txt.contains("--func-->"));
    }
}
