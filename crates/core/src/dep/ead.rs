//! Explicit attribute dependencies (Def. 2.1).

use std::fmt;

use crate::attr::AttrSet;
use crate::dep::Ad;
use crate::error::{CoreError, Result};
use crate::tuple::Tuple;

/// One variant of an explicit attribute dependency: whenever `t[X] ∈ values`
/// the tuple must carry exactly `attrs` out of the determined set `Y`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EadVariant {
    /// The value set `Vi ⊆ Tup(X)`: every member is a tuple defined exactly
    /// on the determining attributes `X`.
    pub values: Vec<Tuple>,
    /// The attribute set `Yi ⊆ Y` this variant prescribes.
    pub attrs: AttrSet,
}

impl EadVariant {
    /// Creates a variant.
    pub fn new(values: Vec<Tuple>, attrs: impl Into<AttrSet>) -> Self {
        EadVariant {
            values,
            attrs: attrs.into(),
        }
    }

    /// Whether `x_value` (a tuple over `X`) belongs to this variant's value
    /// set `Vi`.
    pub fn matches(&self, x_value: &Tuple) -> bool {
        self.values.iter().any(|v| v == x_value)
    }

    /// Whether `t[X]` belongs to this variant's value set `Vi`, for a tuple
    /// `t` defined on all of `X` — equivalent to
    /// `self.matches(&t.project(x))` but without materializing the
    /// projection (the hot path of instance-wide EAD checking).
    pub fn matches_restriction(&self, t: &Tuple) -> bool {
        self.values
            .iter()
            .any(|v| v.iter().all(|(a, val)| t.get(a) == Some(val)))
    }
}

/// An explicit attribute dependency (EAD, Def. 2.1):
///
/// ```text
/// < X --exp.attr--> Y, { V1 --exp.attr--> Y1, …, Vn --exp.attr--> Yn } >
/// ```
///
/// A flexible relation satisfies the EAD iff for every tuple `t`:
///
/// * if there is an `i` with `t[X] ∈ Vi` then `attr(t) ∩ Y = Yi`, and
/// * if there is no such `i` then `attr(t) ∩ Y = ∅`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ead {
    lhs: AttrSet,
    rhs: AttrSet,
    variants: Vec<EadVariant>,
}

impl Ead {
    /// Creates an explicit attribute dependency and validates it:
    ///
    /// * every value tuple in every `Vi` must be defined on exactly `X`,
    /// * every `Yi ⊆ Y`,
    /// * the value sets are pairwise disjoint (`i ≠ j ⟹ Vi ∩ Vj = ∅`).
    pub fn new(
        lhs: impl Into<AttrSet>,
        rhs: impl Into<AttrSet>,
        variants: Vec<EadVariant>,
    ) -> Result<Self> {
        let lhs = lhs.into();
        let rhs = rhs.into();
        if lhs.is_empty() {
            return Err(CoreError::InvalidDependency(
                "the determining attribute set X of an EAD must not be empty".into(),
            ));
        }
        for (i, v) in variants.iter().enumerate() {
            if !v.attrs.is_subset(&rhs) {
                return Err(CoreError::InvalidDependency(format!(
                    "variant {} prescribes attributes {} outside the determined set {}",
                    i, v.attrs, rhs
                )));
            }
            for val in &v.values {
                if val.attrs() != lhs {
                    return Err(CoreError::InvalidDependency(format!(
                        "value {} of variant {} is not a tuple over X = {}",
                        val, i, lhs
                    )));
                }
            }
        }
        for i in 0..variants.len() {
            for j in (i + 1)..variants.len() {
                for val in &variants[i].values {
                    if variants[j].matches(val) {
                        return Err(CoreError::InvalidDependency(format!(
                            "value sets of variants {} and {} overlap on {}",
                            i, j, val
                        )));
                    }
                }
            }
        }
        Ok(Ead { lhs, rhs, variants })
    }

    /// The determining attribute set `X`.
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// The determined attribute set `Y`.
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// The explicit variants `Vi --exp.attr--> Yi`.
    pub fn variants(&self) -> &[EadVariant] {
        &self.variants
    }

    /// Abbreviates the explicit dependency to the [`Ad`] form of Def. 4.1:
    /// given `< X --exp.attr--> Y, … >`, whenever two tuples agree on `X`
    /// they possess the same subset of `Y`.
    pub fn to_ad(&self) -> Ad {
        Ad::new(self.lhs.clone(), self.rhs.clone())
    }

    /// Looks up the variant matched by `x_value` (a tuple over `X`), if any.
    pub fn variant_for(&self, x_value: &Tuple) -> Option<(usize, &EadVariant)> {
        self.variants
            .iter()
            .enumerate()
            .find(|(_, v)| v.matches(x_value))
    }

    /// Looks up the variant matched by `t[X]` for a tuple defined on all of
    /// `X`, without materializing the projection.
    pub fn variant_for_restriction(&self, t: &Tuple) -> Option<(usize, &EadVariant)> {
        self.variants
            .iter()
            .enumerate()
            .find(|(_, v)| v.matches_restriction(t))
    }

    /// The subset of `Y` a tuple with determining value `x_value` must carry:
    /// `Yi` if some variant matches, `∅` otherwise.
    pub fn required_attrs(&self, x_value: &Tuple) -> AttrSet {
        self.variant_for(x_value)
            .map(|(_, v)| v.attrs.clone())
            .unwrap_or_else(AttrSet::empty)
    }

    /// Checks a single tuple against the EAD (the per-tuple condition of
    /// Def. 2.1).  Tuples not defined on all of `X` are only constrained to
    /// carry no attribute of `Y` if the dependency's premise can still be
    /// evaluated; following the definition literally, a tuple whose `t[X]`
    /// is not a full tuple over `X` matches no `Vi` and must therefore carry
    /// no attribute of `Y`.
    pub fn check_tuple(&self, t: &Tuple) -> Result<()> {
        let actual = t.shape().intersection(&self.rhs);
        let matched = if t.defined_on(&self.lhs) {
            self.variant_for_restriction(t).map(|(_, v)| &v.attrs)
        } else {
            None
        };
        let ok = match matched {
            Some(required) => actual == *required,
            None => actual.is_empty(),
        };
        if ok {
            Ok(())
        } else {
            let required = matched.cloned().unwrap_or_else(AttrSet::empty);
            Err(CoreError::AdViolation {
                dependency: self.to_string(),
                detail: format!(
                    "tuple {} carries {} of the determined attributes but {} is required for {}",
                    t,
                    actual,
                    required,
                    t.project(&self.lhs)
                ),
            })
        }
    }

    /// Whether the EAD holds on an entire instance.
    pub fn satisfied_by(&self, tuples: &[Tuple]) -> bool {
        tuples.iter().all(|t| self.check_tuple(t).is_ok())
    }

    /// Whether the EAD's variants are pairwise disjoint in their *determined*
    /// attribute sets (`Yi ∩ Yj = ∅` for `i ≠ j`).  This corresponds to the
    /// ER notion of **disjoint** subclasses (§3.1).
    pub fn has_disjoint_variants(&self) -> bool {
        for i in 0..self.variants.len() {
            for j in (i + 1)..self.variants.len() {
                if !self.variants[i].attrs.is_disjoint(&self.variants[j].attrs) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the specialization is **total** with respect to the given
    /// enumeration of `Tup(X)`: every possible determining value is covered
    /// by some variant (`∪ Vi = Tup(X)`, §3.1).  Since `Tup(X)` is infinite
    /// in general, the caller supplies the finite universe of determining
    /// values to check against (e.g. the cross product of the attributes'
    /// enumerated domains).
    pub fn is_total_over<'a, I>(&self, universe: I) -> bool
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        universe.into_iter().all(|v| self.variant_for(v).is_some())
    }
}

impl fmt::Display for Ead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} --exp.attr--> {}, {{", self.lhs, self.rhs)?;
        for (i, v) in self.variants.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[")?;
            for (k, val) in v.values.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", val)?;
            }
            write!(f, "] --exp.attr--> {}", v.attrs)?;
        }
        write!(f, "}}>")
    }
}

/// The paper's Example 2: the jobtype EAD.
///
/// ```text
/// < {jobtype} --exp.attr--> { typing-speed, foreign-languages, products,
///                             programming-languages, sales-commission },
///   { <jobtype:'secretary'>          --exp.attr--> {typing-speed, foreign-languages},
///     <jobtype:'software engineer'>  --exp.attr--> {products, programming-languages},
///     <jobtype:'salesman'>           --exp.attr--> {products, sales-commission} } >
/// ```
pub fn example2_jobtype_ead() -> Ead {
    use crate::value::Value;
    let x = AttrSet::singleton("jobtype");
    let y = AttrSet::from_names([
        "typing-speed",
        "foreign-languages",
        "products",
        "programming-languages",
        "sales-commission",
    ]);
    let mk = |tag: &str| Tuple::new().with("jobtype", Value::tag(tag));
    Ead::new(
        x,
        y,
        vec![
            EadVariant::new(
                vec![mk("secretary")],
                AttrSet::from_names(["typing-speed", "foreign-languages"]),
            ),
            EadVariant::new(
                vec![mk("software engineer")],
                AttrSet::from_names(["products", "programming-languages"]),
            ),
            EadVariant::new(
                vec![mk("salesman")],
                AttrSet::from_names(["products", "sales-commission"]),
            ),
        ],
    )
    .expect("the jobtype EAD of Example 2 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::{attrs, tuple};

    #[test]
    fn example2_round_trip() {
        let ead = example2_jobtype_ead();
        assert_eq!(ead.lhs(), &attrs!["jobtype"]);
        assert_eq!(ead.variants().len(), 3);
        assert_eq!(
            ead.to_ad(),
            Ad::new(
                attrs!["jobtype"],
                attrs![
                    "typing-speed",
                    "foreign-languages",
                    "products",
                    "programming-languages",
                    "sales-commission"
                ]
            )
        );
    }

    #[test]
    fn rejects_the_papers_invalid_salesman_tuple() {
        // §3.1: "there is no scheme which would reject the tuple
        // <.., jobtype:'salesman', typing-speed: high, foreign-languages: ..>"
        // — but the EAD does.
        let ead = example2_jobtype_ead();
        let bad = tuple! {
            "jobtype" => Value::tag("salesman"),
            "typing-speed" => 330,
            "foreign-languages" => "french, russian"
        };
        assert!(ead.check_tuple(&bad).is_err());

        let good = tuple! {
            "jobtype" => Value::tag("salesman"),
            "products" => "crm",
            "sales-commission" => 7
        };
        assert!(ead.check_tuple(&good).is_ok());
    }

    #[test]
    fn unmatched_determining_value_requires_no_y_attrs() {
        let ead = example2_jobtype_ead();
        // 'manager' matches no variant: the tuple must carry no Y attribute.
        let plain = tuple! {"jobtype" => Value::tag("manager"), "salary" => 9000};
        assert!(ead.check_tuple(&plain).is_ok());
        let bad = tuple! {"jobtype" => Value::tag("manager"), "products" => "all"};
        assert!(ead.check_tuple(&bad).is_err());
    }

    #[test]
    fn tuple_without_x_must_not_carry_y() {
        let ead = example2_jobtype_ead();
        let no_jobtype_ok = tuple! {"salary" => 100};
        assert!(ead.check_tuple(&no_jobtype_ok).is_ok());
        let no_jobtype_bad = tuple! {"salary" => 100, "products" => "crm"};
        assert!(ead.check_tuple(&no_jobtype_bad).is_err());
    }

    #[test]
    fn validation_rejects_overlapping_value_sets() {
        let mk = |tag: &str| Tuple::new().with("jobtype", Value::tag(tag));
        let err = Ead::new(
            attrs!["jobtype"],
            attrs!["a", "b"],
            vec![
                EadVariant::new(vec![mk("x")], attrs!["a"]),
                EadVariant::new(vec![mk("x")], attrs!["b"]),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn validation_rejects_value_not_over_x() {
        let err = Ead::new(
            attrs!["jobtype"],
            attrs!["a"],
            vec![EadVariant::new(vec![tuple! {"salary" => 1}], attrs!["a"])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn validation_rejects_variant_attrs_outside_y() {
        let mk = |tag: &str| Tuple::new().with("jobtype", Value::tag(tag));
        let err = Ead::new(
            attrs!["jobtype"],
            attrs!["a"],
            vec![EadVariant::new(vec![mk("x")], attrs!["z"])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn validation_rejects_empty_lhs() {
        assert!(Ead::new(AttrSet::empty(), attrs!["a"], vec![]).is_err());
    }

    #[test]
    fn disjoint_and_total_classification() {
        let ead = example2_jobtype_ead();
        // products occurs in both the engineer and the salesman variant, so
        // the specialization is *overlapping*, not disjoint.
        assert!(!ead.has_disjoint_variants());

        let universe: Vec<Tuple> = ["secretary", "software engineer", "salesman"]
            .iter()
            .map(|t| Tuple::new().with("jobtype", Value::tag(*t)))
            .collect();
        assert!(ead.is_total_over(universe.iter()));

        let bigger: Vec<Tuple> = ["secretary", "manager"]
            .iter()
            .map(|t| Tuple::new().with("jobtype", Value::tag(*t)))
            .collect();
        assert!(!ead.is_total_over(bigger.iter()));
    }

    #[test]
    fn required_attrs_lookup() {
        let ead = example2_jobtype_ead();
        let sec = Tuple::new().with("jobtype", Value::tag("secretary"));
        assert_eq!(
            ead.required_attrs(&sec),
            attrs!["typing-speed", "foreign-languages"]
        );
        let other = Tuple::new().with("jobtype", Value::tag("clerk"));
        assert_eq!(ead.required_attrs(&other), AttrSet::empty());
        assert_eq!(ead.variant_for(&sec).map(|(i, _)| i), Some(0));
    }

    #[test]
    fn instance_level_satisfaction() {
        let ead = example2_jobtype_ead();
        let ok = vec![
            tuple! {"jobtype" => Value::tag("secretary"), "typing-speed" => 300, "foreign-languages" => "fr"},
            tuple! {"jobtype" => Value::tag("salesman"), "products" => "crm", "sales-commission" => 10},
        ];
        assert!(ead.satisfied_by(&ok));
        let mut bad = ok.clone();
        bad.push(tuple! {"jobtype" => Value::tag("secretary"), "products" => "crm"});
        assert!(!ead.satisfied_by(&bad));
    }

    #[test]
    fn display_mentions_variants() {
        let s = example2_jobtype_ead().to_string();
        assert!(s.contains("exp.attr"));
        assert!(s.contains("'secretary'"));
        assert!(s.contains("typing-speed"));
    }

    #[test]
    fn multi_attribute_determinant() {
        // sex and marital-status determine the existence of maiden-name (§1).
        let mk = |sex: &str, ms: &str| {
            Tuple::new()
                .with("sex", Value::tag(sex))
                .with("marital-status", Value::tag(ms))
        };
        let ead = Ead::new(
            attrs!["sex", "marital-status"],
            attrs!["maiden-name"],
            vec![EadVariant::new(
                vec![mk("female", "married"), mk("female", "widowed")],
                attrs!["maiden-name"],
            )],
        )
        .unwrap();
        let married = tuple! {
            "sex" => Value::tag("female"),
            "marital-status" => Value::tag("married"),
            "maiden-name" => "Miller"
        };
        assert!(ead.check_tuple(&married).is_ok());
        let single_with_maiden_name = tuple! {
            "sex" => Value::tag("female"),
            "marital-status" => Value::tag("single"),
            "maiden-name" => "Miller"
        };
        assert!(ead.check_tuple(&single_with_maiden_name).is_err());
    }
}
