//! Functional dependencies adapted to flexible relations (Def. 4.2).

use std::fmt;

use crate::attr::AttrSet;
use crate::error::{CoreError, Result};
use crate::tuple::Tuple;

/// A functional dependency `X --func--> Y` adapted to structural variants.
///
/// A flexible relation satisfies `X --func--> Y` iff for all tuples `t1, t2`
/// of its instance:
///
/// ```text
/// X ⊆ attr(t1) ∧ X ⊆ attr(t2) ∧ t1[X] = t2[X]
///     ⟹  Y ⊆ attr(t1) ∧ Y ⊆ attr(t2) ∧ t1[Y] = t2[Y]
/// ```
///
/// The only adaptation over the classical definition is the type guard
/// `X ⊆ attr(t)` preceding every value access (Def. 4.2); soundness and
/// completeness of the classical Armstrong-style rules are unaffected.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd {
    lhs: AttrSet,
    rhs: AttrSet,
}

impl Fd {
    /// Creates the dependency `lhs --func--> rhs`.
    pub fn new(lhs: impl Into<AttrSet>, rhs: impl Into<AttrSet>) -> Self {
        Fd {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// The determining attribute set `X`.
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// The determined attribute set `Y`.
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// Whether the dependency is trivial under reflexivity (F1): `Y ⊆ X`.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// Checks the quantified body of Def. 4.2 for a single pair of tuples.
    pub fn pair_satisfied(&self, t1: &Tuple, t2: &Tuple) -> bool {
        if !(t1.defined_on(&self.lhs) && t2.defined_on(&self.lhs)) {
            return true;
        }
        if !t1.agrees_on(t2, &self.lhs) {
            return true;
        }
        t1.defined_on(&self.rhs) && t2.defined_on(&self.rhs) && t1.agrees_on(t2, &self.rhs)
    }

    /// Whether the dependency holds on an instance.  Grouping by `X`-value
    /// makes the check near-linear instead of quadratic.
    pub fn satisfied_by(&self, tuples: &[Tuple]) -> bool {
        self.find_violation(tuples).is_none()
    }

    /// Finds a violating pair of tuple indices, if any.
    ///
    /// Note the subtle consequence of Def. 4.2: a *single* tuple that is
    /// defined on `X` but not on all of `Y` already violates the dependency
    /// as soon as a second tuple agrees with it on `X` (including a duplicate
    /// of itself); but a lone tuple cannot violate it, since the definition
    /// quantifies over pairs.  We follow the definition literally, comparing
    /// all pairs within an `X`-group.
    pub fn find_violation(&self, tuples: &[Tuple]) -> Option<(usize, usize)> {
        use std::collections::HashMap;
        // The group key borrows the X-values in a fixed attribute order
        // instead of materializing a projected tuple per input tuple; a
        // single-attribute determinant (the common case) keys on the bare
        // value without even a key vector.
        let lhs_attrs: Vec<crate::attr::Attr> = self.lhs.iter_unordered().collect();
        let check_groups = |groups: &[Vec<usize>]| -> Option<(usize, usize)> {
            for indices in groups {
                if indices.len() < 2 {
                    continue;
                }
                let first = indices[0];
                for &i in &indices[1..] {
                    if !self.pair_satisfied(&tuples[first], &tuples[i]) {
                        return Some((first, i));
                    }
                }
                // All later tuples agree with the first on Y (and are
                // defined on it), hence they pairwise agree as well;
                // checking against the first representative suffices.
            }
            None
        };
        if let [single] = lhs_attrs.as_slice() {
            let mut groups: HashMap<&crate::value::Value, Vec<usize>> =
                HashMap::with_capacity(tuples.len());
            for (i, t) in tuples.iter().enumerate() {
                if let Some(v) = t.get(single) {
                    groups.entry(v).or_default().push(i);
                }
            }
            let groups: Vec<Vec<usize>> = groups.into_values().collect();
            check_groups(&groups)
        } else {
            let mut groups: HashMap<Vec<&crate::value::Value>, Vec<usize>> =
                HashMap::with_capacity(tuples.len());
            for (i, t) in tuples.iter().enumerate() {
                if t.defined_on(&self.lhs) {
                    let key: Vec<&crate::value::Value> = lhs_attrs
                        .iter()
                        .map(|a| t.get(a).expect("defined on lhs"))
                        .collect();
                    groups.entry(key).or_default().push(i);
                }
            }
            let groups: Vec<Vec<usize>> = groups.into_values().collect();
            check_groups(&groups)
        }
    }

    /// Checks a new tuple against an existing instance.
    pub fn check_insert(&self, existing: &[Tuple], new: &Tuple) -> Result<()> {
        self.check_insert_among(existing, new)
    }

    /// [`Fd::check_insert`] over any iterator of existing tuples — used by
    /// the storage layer to check against borrowed index peers without
    /// cloning them first.
    pub fn check_insert_among<'a, I>(&self, existing: I, new: &Tuple) -> Result<()>
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        if !new.defined_on(&self.lhs) {
            return Ok(());
        }
        for t in existing {
            if t.defined_on(&self.lhs)
                && t.agrees_on(new, &self.lhs)
                && !self.pair_satisfied(t, new)
            {
                return Err(CoreError::FdViolation {
                    dependency: self.to_string(),
                    detail: format!(
                        "new tuple {} conflicts with existing tuple {} on {}",
                        new, t, self.rhs
                    ),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --func--> {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::{attrs, tuple};

    fn fd() -> Fd {
        Fd::new(attrs!["empno"], attrs!["salary"])
    }

    #[test]
    fn satisfied_when_values_agree() {
        let t1 = tuple! {"empno" => 1, "salary" => 100};
        let t2 = tuple! {"empno" => 1, "salary" => 100, "bonus" => 5};
        assert!(fd().satisfied_by(&[t1, t2]));
    }

    #[test]
    fn violated_when_values_differ() {
        let t1 = tuple! {"empno" => 1, "salary" => 100};
        let t2 = tuple! {"empno" => 1, "salary" => 200};
        let tuples = vec![t1.clone(), t2.clone()];
        assert!(!fd().satisfied_by(&tuples));
        assert_eq!(fd().find_violation(&tuples), Some((0, 1)));
        assert!(fd().check_insert(&[t1], &t2).is_err());
    }

    #[test]
    fn violated_when_rhs_missing_in_agreeing_pair() {
        // Def. 4.2 requires Y ⊆ attr(t) for both tuples of an agreeing pair.
        let t1 = tuple! {"empno" => 1, "salary" => 100};
        let t2 = tuple! {"empno" => 1};
        assert!(!fd().satisfied_by(&[t1, t2]));
    }

    #[test]
    fn lone_tuple_without_rhs_is_fine() {
        let t = tuple! {"empno" => 1};
        assert!(fd().satisfied_by(&[t]));
    }

    #[test]
    fn guard_prevents_vacuous_violations() {
        // Tuples not defined on X never participate.
        let t1 = tuple! {"name" => "a", "salary" => 1};
        let t2 = tuple! {"name" => "a", "salary" => 2};
        assert!(fd().satisfied_by(&[t1, t2]));
    }

    #[test]
    fn multi_attribute_fd() {
        let fd = Fd::new(attrs!["sex", "marital-status"], attrs!["maiden-name"]);
        let t1 = tuple! {
            "sex" => Value::tag("female"),
            "marital-status" => Value::tag("married"),
            "maiden-name" => "Miller"
        };
        let t2 = tuple! {
            "sex" => Value::tag("female"),
            "marital-status" => Value::tag("married"),
            "maiden-name" => "Smith"
        };
        assert!(fd.pair_satisfied(&t1, &t1.clone()));
        assert!(!fd.pair_satisfied(&t1, &t2));
    }

    #[test]
    fn trivial_fd() {
        assert!(Fd::new(attrs!["A", "B"], attrs!["B"]).is_trivial());
        assert!(!Fd::new(attrs!["A"], attrs!["B"]).is_trivial());
    }

    #[test]
    fn display_format() {
        assert_eq!(fd().to_string(), "{empno} --func--> {salary}");
    }

    #[test]
    fn check_insert_accepts_new_group() {
        let t1 = tuple! {"empno" => 1, "salary" => 100};
        let t2 = tuple! {"empno" => 2, "salary" => 999};
        assert!(fd().check_insert(&[t1], &t2).is_ok());
    }
}
