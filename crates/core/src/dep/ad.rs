//! Abbreviated attribute dependencies (Def. 4.1).

use std::fmt;

use crate::attr::AttrSet;
use crate::error::{CoreError, Result};
use crate::tuple::Tuple;

/// An attribute dependency `X --attr--> Y`.
///
/// A flexible relation satisfies `X --attr--> Y` iff for all tuples `t1, t2`
/// of its instance:
///
/// ```text
/// X ⊆ attr(t1) ∧ X ⊆ attr(t2) ∧ t1[X] = t2[X]
///     ⟹  attr(t1) ∩ Y = attr(t2) ∩ Y
/// ```
///
/// i.e. whenever two tuples agree on `X` they possess the *same subset* of
/// `Y` as attributes.  Nothing is said about the values of the determined
/// attributes — which is precisely why transitivity is **not** valid for ADs
/// (§4.1).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ad {
    lhs: AttrSet,
    rhs: AttrSet,
}

impl Ad {
    /// Creates the dependency `lhs --attr--> rhs`.
    pub fn new(lhs: impl Into<AttrSet>, rhs: impl Into<AttrSet>) -> Self {
        Ad {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// The determining attribute set `X`.
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// The determined attribute set `Y`.
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// Whether the dependency is *trivial* under the reflexivity rule (A3):
    /// `Y ⊆ X`.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// Checks the quantified body of Def. 4.1 for a single pair of tuples.
    /// The check is symmetric in `t1`/`t2`.
    pub fn pair_satisfied(&self, t1: &Tuple, t2: &Tuple) -> bool {
        if !(t1.defined_on(&self.lhs) && t2.defined_on(&self.lhs)) {
            return true; // the premise fails, the implication holds
        }
        if !t1.agrees_on(t2, &self.lhs) {
            return true;
        }
        t1.attrs().intersection(&self.rhs) == t2.attrs().intersection(&self.rhs)
    }

    /// Whether the dependency holds on an instance (all pairs of tuples).
    ///
    /// The straightforward O(n²) pairwise definition is replaced by grouping
    /// the tuples by their `X`-value and requiring one `Y`-shape per group,
    /// which is O(n log n).
    pub fn satisfied_by(&self, tuples: &[Tuple]) -> bool {
        self.find_violation(tuples).is_none()
    }

    /// Finds a violating pair of tuple indices, if any.
    pub fn find_violation(&self, tuples: &[Tuple]) -> Option<(usize, usize)> {
        use std::collections::HashMap;
        // Group by t[X] for tuples defined on X; remember the first index and
        // the Y-shape of that group.  The group key borrows the X-values in a
        // fixed attribute order instead of materializing a projected tuple;
        // a single-attribute determinant (the common case) keys on the bare
        // value without even a key vector.
        let lhs_attrs: Vec<crate::attr::Attr> = self.lhs.iter_unordered().collect();
        if let [single] = lhs_attrs.as_slice() {
            let mut groups: HashMap<&crate::value::Value, (usize, AttrSet)> =
                HashMap::with_capacity(tuples.len());
            for (i, t) in tuples.iter().enumerate() {
                let Some(v) = t.get(single) else { continue };
                let shape = t.shape().intersection(&self.rhs);
                match groups.get(v) {
                    None => {
                        groups.insert(v, (i, shape));
                    }
                    Some((j, expected)) => {
                        if *expected != shape {
                            return Some((*j, i));
                        }
                    }
                }
            }
            return None;
        }
        let mut groups: HashMap<Vec<&crate::value::Value>, (usize, AttrSet)> =
            HashMap::with_capacity(tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            if !t.defined_on(&self.lhs) {
                continue;
            }
            let key: Vec<&crate::value::Value> = lhs_attrs
                .iter()
                .map(|a| t.get(a).expect("defined on lhs"))
                .collect();
            let shape = t.shape().intersection(&self.rhs);
            match groups.get(&key) {
                None => {
                    groups.insert(key, (i, shape));
                }
                Some((j, expected)) => {
                    if *expected != shape {
                        return Some((*j, i));
                    }
                }
            }
        }
        None
    }

    /// Checks a new tuple against the tuples already in an instance,
    /// returning a descriptive error if inserting it would violate the
    /// dependency.
    pub fn check_insert(&self, existing: &[Tuple], new: &Tuple) -> Result<()> {
        self.check_insert_among(existing, new)
    }

    /// [`Ad::check_insert`] over any iterator of existing tuples — used by
    /// the storage layer to check against borrowed index peers without
    /// cloning them first.
    pub fn check_insert_among<'a, I>(&self, existing: I, new: &Tuple) -> Result<()>
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        if !new.defined_on(&self.lhs) {
            return Ok(());
        }
        let new_shape = new.attrs().intersection(&self.rhs);
        for t in existing {
            if t.defined_on(&self.lhs) && t.agrees_on(new, &self.lhs) {
                let shape = t.attrs().intersection(&self.rhs);
                if shape != new_shape {
                    return Err(CoreError::AdViolation {
                        dependency: self.to_string(),
                        detail: format!(
                            "existing tuple with {} has Y-shape {} but the new tuple has {}",
                            t.project(&self.lhs),
                            shape,
                            new_shape
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Ad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --attr--> {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::{attrs, tuple};

    fn secretary() -> Tuple {
        tuple! {
            "jobtype" => Value::tag("secretary"),
            "salary" => 4000,
            "typing-speed" => 300,
            "foreign-languages" => "french"
        }
    }

    fn engineer() -> Tuple {
        tuple! {
            "jobtype" => Value::tag("software engineer"),
            "salary" => 6000,
            "products" => "db-kernel",
            "programming-languages" => "modula-2"
        }
    }

    fn jobtype_ad() -> Ad {
        Ad::new(
            attrs!["jobtype"],
            attrs![
                "typing-speed",
                "foreign-languages",
                "products",
                "programming-languages",
                "sales-commission"
            ],
        )
    }

    #[test]
    fn satisfied_on_consistent_instance() {
        let ad = jobtype_ad();
        let tuples = vec![secretary(), engineer(), secretary()];
        assert!(ad.satisfied_by(&tuples));
    }

    #[test]
    fn violated_when_same_x_but_different_shape() {
        let ad = jobtype_ad();
        let bad = tuple! {
            "jobtype" => Value::tag("secretary"),
            "salary" => 4100,
            "products" => "crm" // a secretary with products: different Y-shape
        };
        let tuples = vec![secretary(), bad.clone()];
        assert!(!ad.satisfied_by(&tuples));
        assert_eq!(ad.find_violation(&tuples), Some((0, 1)));
        assert!(!ad.pair_satisfied(&secretary(), &bad));
        assert!(ad.check_insert(&[secretary()], &bad).is_err());
    }

    #[test]
    fn tuples_without_x_never_violate() {
        let ad = jobtype_ad();
        let no_jobtype = tuple! {"salary" => 1, "typing-speed" => 100};
        assert!(ad.satisfied_by(&[no_jobtype.clone(), secretary()]));
        assert!(ad.pair_satisfied(&no_jobtype, &secretary()));
    }

    #[test]
    fn different_x_values_never_violate() {
        let ad = jobtype_ad();
        assert!(ad.pair_satisfied(&secretary(), &engineer()));
    }

    #[test]
    fn trivial_ads() {
        assert!(Ad::new(attrs!["A", "B"], attrs!["A"]).is_trivial());
        assert!(Ad::new(attrs!["A"], AttrSet::empty()).is_trivial());
        assert!(!Ad::new(attrs!["A"], attrs!["B"]).is_trivial());
    }

    #[test]
    fn display_format() {
        let ad = Ad::new(attrs!["jobtype"], attrs!["products"]);
        assert_eq!(ad.to_string(), "{jobtype} --attr--> {products}");
    }

    #[test]
    fn check_insert_accepts_consistent_tuple() {
        let ad = jobtype_ad();
        let another_secretary = tuple! {
            "jobtype" => Value::tag("secretary"),
            "salary" => 4500,
            "typing-speed" => 280,
            "foreign-languages" => "russian"
        };
        assert!(ad
            .check_insert(&[secretary(), engineer()], &another_secretary)
            .is_ok());
    }

    #[test]
    fn empty_rhs_is_always_satisfied() {
        let ad = Ad::new(attrs!["jobtype"], AttrSet::empty());
        assert!(ad.satisfied_by(&[secretary(), engineer()]));
    }
}
