//! Dependencies: attribute dependencies (ADs), explicit attribute
//! dependencies (EADs) and functional dependencies (FDs) adapted to flexible
//! relations.
//!
//! * [`Ead`] is the explicit form of Def. 2.1: the values in `X` determine,
//!   variant by variant, which subset of `Y` is present.
//! * [`Ad`] is the abbreviated form of Def. 4.1 used by the axiom systems:
//!   tuples agreeing on `X` possess the same subset of `Y`.
//! * [`Fd`] is the classical functional dependency adapted to structural
//!   variants by guarding value access with `X ⊆ attr(t)` (Def. 4.2).

mod ad;
mod ead;
mod fd;
mod set;

pub use ad::Ad;
pub use ead::{example2_jobtype_ead, Ead, EadVariant};
pub use fd::Fd;
pub use set::DependencySet;

use std::fmt;

use crate::tuple::Tuple;

/// Either kind of dependency, as stored in schemes, catalogs and the combined
/// axiom system ℰ.
///
/// Explicit ADs are kept as their own variant rather than being abbreviated
/// immediately: the abbreviated form (Def. 4.1) constrains *pairs* of tuples,
/// whereas the explicit form (Def. 2.1) already constrains a single tuple —
/// exactly what insert-time type checking needs.  The axiom systems see the
/// explicit dependency through its abbreviation (`Ead::to_ad`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dependency {
    /// An attribute dependency `X --attr--> Y` (abbreviated form).
    Ad(Ad),
    /// An explicit attribute dependency with its variants.
    Ead(Ead),
    /// A functional dependency `X --func--> Y`.
    Fd(Fd),
}

impl Dependency {
    /// The left-hand (determining) side.
    pub fn lhs(&self) -> &crate::attr::AttrSet {
        match self {
            Dependency::Ad(d) => d.lhs(),
            Dependency::Ead(d) => d.lhs(),
            Dependency::Fd(d) => d.lhs(),
        }
    }

    /// The right-hand (determined) side.
    pub fn rhs(&self) -> &crate::attr::AttrSet {
        match self {
            Dependency::Ad(d) => d.rhs(),
            Dependency::Ead(d) => d.rhs(),
            Dependency::Fd(d) => d.rhs(),
        }
    }

    /// Whether this is an attribute dependency (abbreviated or explicit).
    pub fn is_ad(&self) -> bool {
        matches!(self, Dependency::Ad(_) | Dependency::Ead(_))
    }

    /// Whether this is an explicit attribute dependency.
    pub fn is_ead(&self) -> bool {
        matches!(self, Dependency::Ead(_))
    }

    /// Whether this is a functional dependency.
    pub fn is_fd(&self) -> bool {
        matches!(self, Dependency::Fd(_))
    }

    /// The abbreviated AD view of this dependency, if it is an attribute
    /// dependency of either form.
    pub fn as_ad(&self) -> Option<Ad> {
        match self {
            Dependency::Ad(d) => Some(d.clone()),
            Dependency::Ead(d) => Some(d.to_ad()),
            Dependency::Fd(_) => None,
        }
    }

    /// Whether the pair of tuples satisfies this dependency (the universally
    /// quantified body of Def. 4.1 / 4.2 for one `(t1, t2)`; for an explicit
    /// AD both tuples are checked individually per Def. 2.1).
    pub fn pair_satisfied(&self, t1: &Tuple, t2: &Tuple) -> bool {
        match self {
            Dependency::Ad(d) => d.pair_satisfied(t1, t2),
            Dependency::Ead(d) => d.check_tuple(t1).is_ok() && d.check_tuple(t2).is_ok(),
            Dependency::Fd(d) => d.pair_satisfied(t1, t2),
        }
    }

    /// Whether the dependency holds on the given instance.
    pub fn satisfied_by(&self, tuples: &[Tuple]) -> bool {
        match self {
            Dependency::Ad(d) => d.satisfied_by(tuples),
            Dependency::Ead(d) => d.satisfied_by(tuples),
            Dependency::Fd(d) => d.satisfied_by(tuples),
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dependency::Ad(d) => write!(f, "{}", d),
            Dependency::Ead(d) => write!(f, "{}", d),
            Dependency::Fd(d) => write!(f, "{}", d),
        }
    }
}

impl From<Ad> for Dependency {
    fn from(d: Ad) -> Self {
        Dependency::Ad(d)
    }
}

impl From<Fd> for Dependency {
    fn from(d: Fd) -> Self {
        Dependency::Fd(d)
    }
}

impl From<Ead> for Dependency {
    fn from(d: Ead) -> Self {
        Dependency::Ead(d)
    }
}
