//! Values and domains.
//!
//! Tuples map attributes to values of given (atomic) domains.  The value
//! space is a closed enum; domains constrain which values an attribute may
//! take and are used both for type checking at insert time and for deriving
//! the supertype/subtype domains of section 3.2 (where a subtype restricts
//! the domain of the determining attributes to the variant's value set `Vi`).
//!
//! `Value::Null` exists only so that the *baseline* translations the paper
//! argues against (flat, null-padded relations, §3.1.1) can be represented
//! and compared; flexible relations themselves never store nulls.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::{CoreError, Result};

/// An atomic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.  Ordered via total ordering (NaN sorts last) so values
    /// can live in ordered sets.
    Float(f64),
    /// UTF-8 string.  Stored behind a shared pointer so that cloning a
    /// tuple (the bread and butter of selections, joins and peer checks)
    /// bumps a refcount instead of copying the bytes.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// A tag from an enumerated domain (e.g. `jobtype : 'secretary'`).
    /// Distinguished from `Str` so that enumeration domains can be closed.
    Tag(Arc<str>),
    /// SQL-style null.  Only used by the null-padded baseline representation;
    /// never legal inside a flexible relation.
    Null,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into().into())
    }

    /// Convenience constructor for enumeration tags.
    pub fn tag(s: impl Into<String>) -> Self {
        Value::Tag(s.into().into())
    }

    /// Whether this value is the SQL-style null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The kind of this value, for error messages and domain checks.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
            Value::Tag(_) => ValueKind::Tag,
            Value::Null => ValueKind::Null,
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view of the value, if it is textual (`Str` or `Tag`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Tag(s) => Some(s),
            _ => None,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order over all values.  Within a kind the natural order is used
    /// (floats via `total_cmp`); across kinds the order is by kind rank.
    /// Numeric comparisons across `Int`/`Float` compare numerically so that
    /// predicates like `salary > 5000` behave as expected regardless of the
    /// stored representation.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Tag(a), Tag(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind_rank().hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Tag(s) => s.hash(state),
            Value::Null => {}
        }
    }
}

impl Value {
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // same rank as Int: numerically comparable
            Value::Str(_) => 3,
            Value::Tag(_) => 4,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{}", i),
            Value::Float(x) => write!(f, "{}", x),
            Value::Str(s) => write!(f, "\"{}\"", s),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Tag(s) => write!(f, "'{}'", s),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

/// The kind (runtime type) of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueKind {
    Int,
    Float,
    Str,
    Bool,
    Tag,
    Null,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "string",
            ValueKind::Bool => "bool",
            ValueKind::Tag => "tag",
            ValueKind::Null => "null",
        };
        write!(f, "{}", s)
    }
}

/// An attribute domain: the set of values an attribute may take.
///
/// Domains play two roles in the paper: they type-check atomic values, and
/// they are *restricted* when an AD induces subtypes (the subtype for variant
/// `i` restricts the determining attributes' domain to `Vi`, §3.2).
#[derive(Clone, Debug, PartialEq)]
pub enum Domain {
    /// Any integer.
    Int,
    /// Integers within an inclusive range.
    IntRange(i64, i64),
    /// Any float.
    Float,
    /// Any string.
    Text,
    /// Booleans.
    Bool,
    /// A closed enumeration of tags, e.g. `{ 'secretary', 'software engineer',
    /// 'salesman' }`.
    Enum(BTreeSet<String>),
    /// An explicit finite set of values (used for restricted subtype domains).
    Finite(BTreeSet<Value>),
    /// Unconstrained: any non-null value is accepted.
    Any,
}

impl Domain {
    /// Builds an enumeration domain from tag names.
    pub fn enumeration<I, S>(tags: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Domain::Enum(tags.into_iter().map(Into::into).collect())
    }

    /// Builds a finite domain from explicit values.
    pub fn finite<I>(values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        Domain::Finite(values.into_iter().collect())
    }

    /// Whether `v` belongs to this domain.  Nulls never belong to any domain
    /// (flexible relations model missing information by *absence*, not null).
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => false,
            (Domain::Any, _) => true,
            (Domain::Int, Value::Int(_)) => true,
            (Domain::IntRange(lo, hi), Value::Int(i)) => i >= lo && i <= hi,
            (Domain::Float, Value::Float(_)) | (Domain::Float, Value::Int(_)) => true,
            (Domain::Text, Value::Str(_)) => true,
            (Domain::Bool, Value::Bool(_)) => true,
            (Domain::Enum(tags), Value::Tag(t)) => tags.contains(&**t),
            (Domain::Enum(tags), Value::Str(t)) => tags.contains(&**t),
            (Domain::Finite(vals), v) => vals.contains(v),
            _ => false,
        }
    }

    /// Checks membership and produces a descriptive error on failure.
    pub fn check(&self, attr_name: &str, v: &Value) -> Result<()> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(CoreError::DomainViolation {
                attr: attr_name.to_string(),
                value: v.to_string(),
                domain: format!("{:?}", self),
            })
        }
    }

    /// Restricts this domain to the given set of values (used when deriving
    /// the subtype for a variant, §3.2).  The result is the finite domain of
    /// those members of `values` that already belong to `self`.
    pub fn restrict_to<I>(&self, values: I) -> Domain
    where
        I: IntoIterator<Item = Value>,
    {
        Domain::Finite(values.into_iter().filter(|v| self.contains(v)).collect())
    }

    /// Whether this domain is a (weak) restriction of `other`: every value of
    /// `self` that we can enumerate lies in `other`.  For non-enumerable
    /// domains this falls back to structural comparison.
    pub fn is_restriction_of(&self, other: &Domain) -> bool {
        match (self, other) {
            (_, Domain::Any) => true,
            (Domain::Finite(vals), o) => vals.iter().all(|v| o.contains(v)),
            (Domain::Enum(a), Domain::Enum(b)) => a.is_subset(b),
            (Domain::IntRange(lo, hi), Domain::IntRange(lo2, hi2)) => lo >= lo2 && hi <= hi2,
            (Domain::IntRange(_, _), Domain::Int) => true,
            (Domain::Int, Domain::Float) => true,
            (a, b) => a == b,
        }
    }

    /// The number of values in the domain, if it is finite and enumerable.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Enum(tags) => Some(tags.len()),
            Domain::Finite(vals) => Some(vals.len()),
            Domain::Bool => Some(2),
            Domain::IntRange(lo, hi) => usize::try_from(hi - lo + 1).ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Int => write!(f, "int"),
            Domain::IntRange(lo, hi) => write!(f, "int[{}..{}]", lo, hi),
            Domain::Float => write!(f, "float"),
            Domain::Text => write!(f, "text"),
            Domain::Bool => write!(f, "bool"),
            Domain::Enum(tags) => {
                write!(f, "{{")?;
                for (i, t) in tags.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{}'", t)?;
                }
                write!(f, "}}")
            }
            Domain::Finite(vals) => {
                write!(f, "{{")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "}}")
            }
            Domain::Any => write!(f, "any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ordering_numeric_across_kinds() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Int(2) > Value::Float(1.5));
        assert_eq!(Value::Int(3).cmp(&Value::Float(3.0)), Ordering::Equal);
    }

    #[test]
    fn value_ordering_strings_and_tags() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::tag("salesman") < Value::tag("secretary"));
        // Strings and tags are different kinds, ordered by kind rank.
        assert!(Value::str("z") < Value::tag("a"));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::tag("secretary").to_string(), "'secretary'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::tag("t").as_str(), Some("t"));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn domain_int_range() {
        let d = Domain::IntRange(0, 10);
        assert!(d.contains(&Value::Int(0)));
        assert!(d.contains(&Value::Int(10)));
        assert!(!d.contains(&Value::Int(11)));
        assert!(!d.contains(&Value::Float(5.0)));
        assert_eq!(d.cardinality(), Some(11));
    }

    #[test]
    fn domain_enum_jobtype() {
        let d = Domain::enumeration(["secretary", "software engineer", "salesman"]);
        assert!(d.contains(&Value::tag("secretary")));
        assert!(d.contains(&Value::str("salesman")));
        assert!(!d.contains(&Value::tag("ceo")));
        assert_eq!(d.cardinality(), Some(3));
    }

    #[test]
    fn domain_null_never_belongs() {
        for d in [
            Domain::Any,
            Domain::Int,
            Domain::Text,
            Domain::enumeration(["x"]),
        ] {
            assert!(!d.contains(&Value::Null), "null must not belong to {:?}", d);
        }
    }

    #[test]
    fn domain_check_produces_error() {
        let d = Domain::Int;
        assert!(d.check("salary", &Value::Int(3)).is_ok());
        let err = d.check("salary", &Value::str("oops")).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("salary"),
            "message should name the attribute: {msg}"
        );
    }

    #[test]
    fn domain_restriction() {
        let job = Domain::enumeration(["secretary", "software engineer", "salesman"]);
        let sub = job.restrict_to([Value::tag("secretary")]);
        assert!(sub.contains(&Value::tag("secretary")));
        assert!(!sub.contains(&Value::tag("salesman")));
        assert!(sub.is_restriction_of(&job));
        assert!(!job.is_restriction_of(&sub));
        assert!(job.is_restriction_of(&Domain::Any));
    }

    #[test]
    fn domain_float_accepts_ints() {
        assert!(Domain::Float.contains(&Value::Int(3)));
        assert!(Domain::Float.contains(&Value::Float(3.5)));
    }

    #[test]
    fn domain_restriction_int_ranges() {
        assert!(Domain::IntRange(2, 5).is_restriction_of(&Domain::IntRange(0, 10)));
        assert!(!Domain::IntRange(2, 15).is_restriction_of(&Domain::IntRange(0, 10)));
        assert!(Domain::IntRange(2, 5).is_restriction_of(&Domain::Int));
    }

    #[test]
    fn value_hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Int(1));
        set.insert(Value::Float(1.0));
        set.insert(Value::tag("a"));
        assert_eq!(set.len(), 3);
    }
}
