//! Attributes and attribute sets.
//!
//! The paper works over a universe of attributes `𝔘`; single attributes are
//! written `A, B, …` and attribute sets `V, …, Z`.  Attribute sets are treated
//! as ordinary mathematical sets: `XY` denotes the union of `X` and `Y`, and a
//! single attribute is silently promoted to the singleton set when a set is
//! expected.  This module provides both notions: [`Attr`], a cheaply clonable
//! interned attribute name, and [`AttrSet`], an ordered attribute set with the
//! usual set algebra.

use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A single attribute name.
///
/// Attributes are interned as `Arc<str>` so cloning is a reference-count bump
/// and equality is cheap.  Ordering is lexicographic on the name, which gives
/// attribute sets, schemes and dependency sets a canonical order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Creates an attribute from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attr(Arc::from(name.as_ref()))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Promotes this attribute to a singleton [`AttrSet`] (the paper's
    /// convention of "treat attributes as singleton attribute sets when sets
    /// of attributes are expected").
    pub fn to_set(&self) -> AttrSet {
        AttrSet::singleton(self.clone())
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}

impl From<&Attr> for Attr {
    fn from(a: &Attr) -> Self {
        a.clone()
    }
}

impl Borrow<str> for Attr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Attr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// An ordered set of attributes.
///
/// `AttrSet` is the workhorse of the dependency theory: left- and right-hand
/// sides of ADs and FDs, scheme DNF entries, tuple shapes (`attr(t)`) and
/// closures are all attribute sets.  It is a thin wrapper around a
/// `BTreeSet<Attr>` providing the set algebra used throughout the paper.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet(BTreeSet<Attr>);

impl AttrSet {
    /// The empty attribute set `∅`.
    pub fn empty() -> Self {
        AttrSet(BTreeSet::new())
    }

    /// A singleton attribute set `{A}`.
    pub fn singleton(a: impl Into<Attr>) -> Self {
        let mut s = BTreeSet::new();
        s.insert(a.into());
        AttrSet(s)
    }

    /// Builds an attribute set from anything yielding attribute names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        AttrSet(names.into_iter().map(|n| Attr::new(n.as_ref())).collect())
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `a` is a member of the set.
    pub fn contains(&self, a: &Attr) -> bool {
        self.0.contains(a)
    }

    /// Whether an attribute with the given name is a member of the set.
    pub fn contains_name(&self, name: &str) -> bool {
        self.0.contains(name)
    }

    /// Inserts an attribute; returns `true` if it was not present before.
    pub fn insert(&mut self, a: impl Into<Attr>) -> bool {
        self.0.insert(a.into())
    }

    /// Removes an attribute; returns `true` if it was present.
    pub fn remove(&mut self, a: &Attr) -> bool {
        self.0.remove(a)
    }

    /// Set union `X ∪ Y` (the paper's juxtaposition `XY`).
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        AttrSet(self.0.union(&other.0).cloned().collect())
    }

    /// Set intersection `X ∩ Y`.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        AttrSet(self.0.intersection(&other.0).cloned().collect())
    }

    /// Set difference `X − Y`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet(self.0.difference(&other.0).cloned().collect())
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(&self, other: &AttrSet) -> bool {
        self.0.is_superset(&other.0)
    }

    /// Whether the two sets have no attribute in common.
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.0.is_disjoint(&other.0)
    }

    /// Iterates over the attributes in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Attr> + '_ {
        self.0.iter()
    }

    /// Returns the attributes as a vector (lexicographic order).
    pub fn to_vec(&self) -> Vec<Attr> {
        self.0.iter().cloned().collect()
    }

    /// Extends the set with the attributes of `other` in place.
    pub fn extend_with(&mut self, other: &AttrSet) {
        for a in other.iter() {
            self.0.insert(a.clone());
        }
    }

    /// All subsets of this set (the power set).  Only intended for small sets
    /// (e.g. enumerating candidate dependency sides in tests and the witness
    /// construction); panics if the set has more than 20 attributes.
    pub fn power_set(&self) -> Vec<AttrSet> {
        assert!(
            self.len() <= 20,
            "power_set is only supported for sets of at most 20 attributes"
        );
        let attrs = self.to_vec();
        let n = attrs.len();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u32..(1u32 << n) {
            let mut s = AttrSet::empty();
            for (i, a) in attrs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(a.clone());
                }
            }
            out.push(s);
        }
        out
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Attr> for AttrSet {
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        AttrSet(iter.into_iter().collect())
    }
}

impl<'a> FromIterator<&'a Attr> for AttrSet {
    fn from_iter<T: IntoIterator<Item = &'a Attr>>(iter: T) -> Self {
        AttrSet(iter.into_iter().cloned().collect())
    }
}

impl IntoIterator for AttrSet {
    type Item = Attr;
    type IntoIter = std::collections::btree_set::IntoIter<Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = &'a Attr;
    type IntoIter = std::collections::btree_set::Iter<'a, Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl From<Attr> for AttrSet {
    fn from(a: Attr) -> Self {
        AttrSet::singleton(a)
    }
}

impl From<&str> for AttrSet {
    fn from(a: &str) -> Self {
        AttrSet::singleton(Attr::new(a))
    }
}

impl From<Vec<&str>> for AttrSet {
    fn from(names: Vec<&str>) -> Self {
        AttrSet::from_names(names)
    }
}

impl<const N: usize> From<[&str; N]> for AttrSet {
    fn from(names: [&str; N]) -> Self {
        AttrSet::from_names(names)
    }
}

/// Convenience macro for constructing an [`AttrSet`] from literal names:
/// `attrs!["salary", "jobtype"]`.
#[macro_export]
macro_rules! attrs {
    () => { $crate::attr::AttrSet::empty() };
    ($($name:expr),+ $(,)?) => {
        $crate::attr::AttrSet::from_names([$($name),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_equality_and_ordering() {
        let a = Attr::new("A");
        let b = Attr::new("B");
        let a2 = Attr::new("A");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.name(), "A");
    }

    #[test]
    fn attr_display() {
        assert_eq!(format!("{}", Attr::new("salary")), "salary");
        assert_eq!(format!("{:?}", Attr::new("salary")), "salary");
    }

    #[test]
    fn attrset_union_is_juxtaposition() {
        let x = attrs!["A", "B"];
        let y = attrs!["B", "C"];
        assert_eq!(x.union(&y), attrs!["A", "B", "C"]);
    }

    #[test]
    fn attrset_intersection_and_difference() {
        let x = attrs!["A", "B", "C"];
        let y = attrs!["B", "C", "D"];
        assert_eq!(x.intersection(&y), attrs!["B", "C"]);
        assert_eq!(x.difference(&y), attrs!["A"]);
        assert_eq!(y.difference(&x), attrs!["D"]);
    }

    #[test]
    fn attrset_subset_relations() {
        let x = attrs!["A", "B"];
        let y = attrs!["A", "B", "C"];
        assert!(x.is_subset(&y));
        assert!(y.is_superset(&x));
        assert!(!y.is_subset(&x));
        assert!(AttrSet::empty().is_subset(&x));
        assert!(x.is_subset(&x));
    }

    #[test]
    fn attrset_disjointness() {
        assert!(attrs!["A"].is_disjoint(&attrs!["B"]));
        assert!(!attrs!["A", "B"].is_disjoint(&attrs!["B", "C"]));
        assert!(AttrSet::empty().is_disjoint(&attrs!["A"]));
    }

    #[test]
    fn attrset_display_is_sorted() {
        let x = attrs!["C", "A", "B"];
        assert_eq!(format!("{}", x), "{A, B, C}");
    }

    #[test]
    fn attrset_insert_remove() {
        let mut x = AttrSet::empty();
        assert!(x.insert("A"));
        assert!(!x.insert("A"));
        assert!(x.contains(&Attr::new("A")));
        assert!(x.remove(&Attr::new("A")));
        assert!(!x.remove(&Attr::new("A")));
        assert!(x.is_empty());
    }

    #[test]
    fn attrset_singleton_promotion() {
        let a = Attr::new("A");
        assert_eq!(a.to_set(), attrs!["A"]);
        let s: AttrSet = a.into();
        assert_eq!(s, attrs!["A"]);
    }

    #[test]
    fn power_set_enumerates_all_subsets() {
        let x = attrs!["A", "B", "C"];
        let ps = x.power_set();
        assert_eq!(ps.len(), 8);
        assert!(ps.contains(&AttrSet::empty()));
        assert!(ps.contains(&attrs!["A", "B", "C"]));
        assert!(ps.contains(&attrs!["A", "C"]));
        // Every element is a subset.
        assert!(ps.iter().all(|s| s.is_subset(&x)));
    }

    #[test]
    fn contains_name_borrow() {
        let x = attrs!["salary", "jobtype"];
        assert!(x.contains_name("salary"));
        assert!(!x.contains_name("products"));
    }

    #[test]
    fn from_iterators() {
        let v = vec![Attr::new("A"), Attr::new("B")];
        let s: AttrSet = v.iter().collect();
        assert_eq!(s.len(), 2);
        let s2: AttrSet = v.into_iter().collect();
        assert_eq!(s, s2);
        let names: Vec<String> = s.iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn extend_with_unions_in_place() {
        let mut x = attrs!["A"];
        x.extend_with(&attrs!["B", "C"]);
        assert_eq!(x, attrs!["A", "B", "C"]);
    }
}
