//! Attributes and attribute sets.
//!
//! The paper works over a universe of attributes `𝔘`; single attributes are
//! written `A, B, …` and attribute sets `V, …, Z`.  Attribute sets are treated
//! as ordinary mathematical sets: `XY` denotes the union of `X` and `Y`, and a
//! single attribute is silently promoted to the singleton set when a set is
//! expected.  This module provides both notions: [`Attr`], a cheaply clonable
//! interned attribute name, and [`AttrSet`], an attribute set with the usual
//! set algebra.
//!
//! # Representation
//!
//! Attribute names are interned once, process-wide, in the [`AttrUniverse`]:
//! every distinct name is assigned a dense `u32` id in first-come order.  An
//! [`Attr`] carries both its id (for O(1) equality and set membership) and a
//! shared pointer to its name (for lock-free display and ordering).
//!
//! An [`AttrSet`] is a bitset over those ids.  Sets whose members all have
//! ids below 64 — the overwhelmingly common case — live in a single inline
//! `u64`; larger universes spill to a boxed slice of words.  Union,
//! intersection, difference, subset, superset and disjointness tests are all
//! word-parallel bit operations, never string comparisons.
//!
//! # Canonical order
//!
//! Interning ids are assigned in first-come order and are therefore *not*
//! stable across runs.  All observable orderings consequently go through the
//! attribute *names*: [`AttrSet::iter`], [`AttrSet::to_vec`], the `Display`
//! rendering and the `Ord` instances of both [`Attr`] and [`AttrSet`] use
//! lexicographic name order.  This is the canonical order the rest of the
//! system relies on (schemes, dependency sets and tuples render
//! deterministically regardless of interning order), and it is guaranteed to
//! match what the previous `BTreeSet`-based representation produced.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// The process-wide attribute interner: a bijection between attribute names
/// and dense `u32` ids.
///
/// Ids are handed out in first-come order, so they are dense (the first `n`
/// distinct names get ids `0..n`) but not lexicographically meaningful; see
/// the module docs for how canonical ordering is preserved on top of that.
pub struct AttrUniverse {
    inner: RwLock<UniverseInner>,
}

#[derive(Default)]
struct UniverseInner {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl AttrUniverse {
    fn new() -> Self {
        AttrUniverse {
            inner: RwLock::new(UniverseInner::default()),
        }
    }

    /// The global universe every [`Attr`] is interned in.
    pub fn global() -> &'static AttrUniverse {
        static GLOBAL: OnceLock<AttrUniverse> = OnceLock::new();
        GLOBAL.get_or_init(AttrUniverse::new)
    }

    /// Interns `name`, returning its id and the shared name storage.
    pub fn intern(&self, name: &str) -> (u32, Arc<str>) {
        {
            let inner = self.inner.read().unwrap();
            if let Some(&id) = inner.ids.get(name) {
                return (id, inner.names[id as usize].clone());
            }
        }
        let mut inner = self.inner.write().unwrap();
        // Re-check under the write lock: another thread may have interned the
        // name between our read and write acquisitions.
        if let Some(&id) = inner.ids.get(name) {
            return (id, inner.names[id as usize].clone());
        }
        let id = u32::try_from(inner.names.len()).expect("attribute universe exhausted u32 ids");
        let arc: Arc<str> = Arc::from(name);
        inner.names.push(arc.clone());
        inner.ids.insert(arc.clone(), id);
        (id, arc)
    }

    /// Looks up the id of an already-interned name, without interning it.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.inner.read().unwrap().ids.get(name).copied()
    }

    /// The name interned under `id`.
    ///
    /// # Panics
    /// Panics if `id` was never handed out by this universe.
    pub fn resolve(&self, id: u32) -> Arc<str> {
        self.inner.read().unwrap().names[id as usize].clone()
    }

    /// Resolves many ids under a single lock acquisition.
    pub fn resolve_all(&self, ids: impl IntoIterator<Item = u32>) -> Vec<Attr> {
        let inner = self.inner.read().unwrap();
        ids.into_iter()
            .map(|id| Attr {
                id,
                name: inner.names[id as usize].clone(),
            })
            .collect()
    }

    /// Number of distinct attribute names interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A single attribute name.
///
/// Attributes are interned in the global [`AttrUniverse`]: equality is a
/// `u32` comparison, cloning is a reference-count bump, and the name is
/// available without touching the interner.  Ordering is lexicographic on the
/// name, which gives attribute sets, schemes and dependency sets a canonical
/// order independent of interning order.
#[derive(Clone)]
pub struct Attr {
    id: u32,
    name: Arc<str>,
}

impl Attr {
    /// Creates (interning if necessary) an attribute from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        let (id, name) = AttrUniverse::global().intern(name.as_ref());
        Attr { id, name }
    }

    /// Reconstructs an attribute from its interned id.
    ///
    /// # Panics
    /// Panics if `id` was never handed out by the global universe.
    pub fn from_id(id: u32) -> Self {
        Attr {
            id,
            name: AttrUniverse::global().resolve(id),
        }
    }

    /// The attribute's dense interned id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Promotes this attribute to a singleton [`AttrSet`] (the paper's
    /// convention of "treat attributes as singleton attribute sets when sets
    /// of attributes are expected").
    pub fn to_set(&self) -> AttrSet {
        AttrSet::singleton(self.clone())
    }
}

impl PartialEq for Attr {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Attr {}

// Ordering is by name so canonical order survives arbitrary interning order;
// this is consistent with id equality because the interner is a bijection.
impl PartialOrd for Attr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Attr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.name.cmp(&other.name)
        }
    }
}

// Hashes the *name* (not the id) so that `Borrow<str>` keeps the required
// `hash(attr) == hash(attr.name())` consistency for map lookups by name.
impl Hash for Attr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state)
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}

impl From<&Attr> for Attr {
    fn from(a: &Attr) -> Self {
        a.clone()
    }
}

impl Borrow<str> for Attr {
    fn borrow(&self) -> &str {
        &self.name
    }
}

impl AsRef<str> for Attr {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

const BITS: usize = 64;

/// The bit storage of an [`AttrSet`]: one inline word while every member id
/// fits below 64, a boxed slice of words otherwise.
#[derive(Clone)]
enum Bits {
    Inline(u64),
    Spilled(Box<[u64]>),
}

/// An attribute set.
///
/// `AttrSet` is the workhorse of the dependency theory: left- and right-hand
/// sides of ADs and FDs, scheme DNF entries, tuple shapes (`attr(t)`) and
/// closures are all attribute sets.  It is a bitset over interned attribute
/// ids (see the module docs), so the set algebra used throughout the paper —
/// union, intersection, difference, subset — runs as word-parallel bit
/// operations.  Iteration and display are in lexicographic name order.
#[derive(Clone)]
pub struct AttrSet {
    bits: Bits,
}

impl Default for AttrSet {
    fn default() -> Self {
        AttrSet::empty()
    }
}

impl AttrSet {
    /// The empty attribute set `∅`.
    pub fn empty() -> Self {
        AttrSet {
            bits: Bits::Inline(0),
        }
    }

    /// A singleton attribute set `{A}`.
    pub fn singleton(a: impl Into<Attr>) -> Self {
        let mut s = AttrSet::empty();
        s.insert(a.into());
        s
    }

    /// Builds an attribute set from anything yielding attribute names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut s = AttrSet::empty();
        for n in names {
            s.insert(Attr::new(n.as_ref()));
        }
        s
    }

    /// The raw words of the bitset (used internally by the set algebra).
    fn words(&self) -> &[u64] {
        match &self.bits {
            Bits::Inline(w) => std::slice::from_ref(w),
            Bits::Spilled(ws) => ws,
        }
    }

    /// Sets the bit for `id`, growing to the spilled representation if needed.
    /// Returns `true` if the bit was not set before.
    fn set_bit(&mut self, id: u32) -> bool {
        let (word, bit) = (id as usize / BITS, id as usize % BITS);
        let mask = 1u64 << bit;
        match &mut self.bits {
            Bits::Inline(w) if word == 0 => {
                let fresh = *w & mask == 0;
                *w |= mask;
                fresh
            }
            Bits::Inline(w) => {
                let mut ws = vec![0u64; word + 1];
                ws[0] = *w;
                ws[word] |= mask;
                self.bits = Bits::Spilled(ws.into_boxed_slice());
                true
            }
            Bits::Spilled(ws) => {
                if word >= ws.len() {
                    let mut grown = vec![0u64; word + 1];
                    grown[..ws.len()].copy_from_slice(ws);
                    grown[word] |= mask;
                    self.bits = Bits::Spilled(grown.into_boxed_slice());
                    true
                } else {
                    let fresh = ws[word] & mask == 0;
                    ws[word] |= mask;
                    fresh
                }
            }
        }
    }

    /// Clears the bit for `id`; returns `true` if it was set.
    fn clear_bit(&mut self, id: u32) -> bool {
        let (word, bit) = (id as usize / BITS, id as usize % BITS);
        let mask = 1u64 << bit;
        match &mut self.bits {
            Bits::Inline(w) => {
                if word == 0 && *w & mask != 0 {
                    *w &= !mask;
                    true
                } else {
                    false
                }
            }
            Bits::Spilled(ws) => {
                if word < ws.len() && ws[word] & mask != 0 {
                    ws[word] &= !mask;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn has_bit(&self, id: u32) -> bool {
        let (word, bit) = (id as usize / BITS, id as usize % BITS);
        self.words()
            .get(word)
            .is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Whether `a` is a member of the set.
    pub fn contains(&self, a: &Attr) -> bool {
        self.has_bit(a.id)
    }

    /// Whether the attribute with the given interned id is a member.
    pub fn contains_id(&self, id: u32) -> bool {
        self.has_bit(id)
    }

    /// Whether an attribute with the given name is a member of the set.
    pub fn contains_name(&self, name: &str) -> bool {
        // A name that was never interned cannot be in any set.
        AttrUniverse::global()
            .lookup(name)
            .is_some_and(|id| self.has_bit(id))
    }

    /// Inserts an attribute; returns `true` if it was not present before.
    pub fn insert(&mut self, a: impl Into<Attr>) -> bool {
        self.set_bit(a.into().id)
    }

    /// Inserts the attribute with the given interned id; returns `true` if it
    /// was not present before.
    pub fn insert_id(&mut self, id: u32) -> bool {
        self.set_bit(id)
    }

    /// Removes an attribute; returns `true` if it was present.
    pub fn remove(&mut self, a: &Attr) -> bool {
        self.clear_bit(a.id)
    }

    fn zip_words<F: Fn(u64, u64) -> u64>(&self, other: &AttrSet, f: F) -> AttrSet {
        let (a, b) = (self.words(), other.words());
        let n = a.len().max(b.len());
        if n <= 1 {
            return AttrSet {
                bits: Bits::Inline(f(
                    a.first().copied().unwrap_or(0),
                    b.first().copied().unwrap_or(0),
                )),
            };
        }
        let mut out = vec![0u64; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(
                a.get(i).copied().unwrap_or(0),
                b.get(i).copied().unwrap_or(0),
            );
        }
        AttrSet {
            bits: Bits::Spilled(out.into_boxed_slice()),
        }
    }

    /// Set union `X ∪ Y` (the paper's juxtaposition `XY`).
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        self.zip_words(other, |a, b| a | b)
    }

    /// Set intersection `X ∩ Y`.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        self.zip_words(other, |a, b| a & b)
    }

    /// Set difference `X − Y`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        self.zip_words(other, |a, b| a & !b)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        let (a, b) = (self.words(), other.words());
        a.iter()
            .enumerate()
            .all(|(i, &w)| w & !b.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(&self, other: &AttrSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the two sets have no attribute in common.
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        let (a, b) = (self.words(), other.words());
        a.iter()
            .enumerate()
            .all(|(i, &w)| w & b.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates over the member ids in ascending *id* order (no name
    /// resolution; the hot path for the closure algorithms).
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * BITS) as u32;
            std::iter::successors(if w == 0 { None } else { Some(w) }, |&rest| {
                let next = rest & (rest - 1);
                if next == 0 {
                    None
                } else {
                    Some(next)
                }
            })
            .map(move |rest| base + rest.trailing_zeros())
        })
    }

    /// Iterates over the attributes in lexicographic name order (the
    /// canonical order; see the module docs).
    pub fn iter(&self) -> std::vec::IntoIter<Attr> {
        self.to_vec().into_iter()
    }

    /// Iterates over the attributes in unspecified (id) order, skipping the
    /// canonical sort.  Use this in hot paths where the visit order is
    /// unobservable (e.g. all/any-style scans); use [`AttrSet::iter`]
    /// anywhere order can leak into output.
    pub fn iter_unordered(&self) -> std::vec::IntoIter<Attr> {
        AttrUniverse::global().resolve_all(self.ids()).into_iter()
    }

    /// Returns the attributes as a vector in lexicographic name order.
    pub fn to_vec(&self) -> Vec<Attr> {
        let mut attrs = AttrUniverse::global().resolve_all(self.ids());
        attrs.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        attrs
    }

    /// Extends the set with the attributes of `other` in place.
    pub fn extend_with(&mut self, other: &AttrSet) {
        if other.is_subset(self) {
            return;
        }
        *self = self.union(other);
    }

    /// All subsets of this set (the power set).  Only intended for small sets
    /// (e.g. enumerating candidate dependency sides in tests and the witness
    /// construction); panics if the set has more than 20 attributes.
    pub fn power_set(&self) -> Vec<AttrSet> {
        assert!(
            self.len() <= 20,
            "power_set is only supported for sets of at most 20 attributes"
        );
        let attrs = self.to_vec();
        let n = attrs.len();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u32..(1u32 << n) {
            let mut s = AttrSet::empty();
            for (i, a) in attrs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(a.clone());
                }
            }
            out.push(s);
        }
        out
    }
}

// Equality must not distinguish inline from spilled storage or depend on
// trailing zero words, so it compares words with implicit zero padding.
impl PartialEq for AttrSet {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let n = a.len().max(b.len());
        (0..n).all(|i| a.get(i).copied().unwrap_or(0) == b.get(i).copied().unwrap_or(0))
    }
}

impl Eq for AttrSet {}

// Hashing skips trailing zero words for the same reason equality pads them.
impl Hash for AttrSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let ws = self.words();
        let significant = ws.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        ws[..significant].hash(state)
    }
}

// Ordering is lexicographic over the canonical (name-ordered) attribute
// sequence, matching what the previous `BTreeSet<Attr>` representation
// produced and keeping ordered collections of attribute sets deterministic
// across runs despite unstable interning ids.
impl PartialOrd for AttrSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self == other {
            return std::cmp::Ordering::Equal;
        }
        // Resolve both sides under a single interner lock and compare the
        // sorted name sequences as borrowed strings — no `Attr` construction
        // or `Arc` clones per comparison.
        let inner = AttrUniverse::global().inner.read().unwrap();
        let mut a: Vec<&str> = self.ids().map(|id| &*inner.names[id as usize]).collect();
        let mut b: Vec<&str> = other.ids().map(|id| &*inner.names[id as usize]).collect();
        a.sort_unstable();
        b.sort_unstable();
        a.cmp(&b)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Attr> for AttrSet {
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        let mut s = AttrSet::empty();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl<'a> FromIterator<&'a Attr> for AttrSet {
    fn from_iter<T: IntoIterator<Item = &'a Attr>>(iter: T) -> Self {
        let mut s = AttrSet::empty();
        for a in iter {
            s.insert(a.clone());
        }
        s
    }
}

impl IntoIterator for AttrSet {
    type Item = Attr;
    type IntoIter = std::vec::IntoIter<Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for &AttrSet {
    type Item = Attr;
    type IntoIter = std::vec::IntoIter<Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<Attr> for AttrSet {
    fn from(a: Attr) -> Self {
        AttrSet::singleton(a)
    }
}

impl From<&str> for AttrSet {
    fn from(a: &str) -> Self {
        AttrSet::singleton(Attr::new(a))
    }
}

impl From<Vec<&str>> for AttrSet {
    fn from(names: Vec<&str>) -> Self {
        AttrSet::from_names(names)
    }
}

impl<const N: usize> From<[&str; N]> for AttrSet {
    fn from(names: [&str; N]) -> Self {
        AttrSet::from_names(names)
    }
}

/// Convenience macro for constructing an [`AttrSet`] from literal names:
/// `attrs!["salary", "jobtype"]`.
#[macro_export]
macro_rules! attrs {
    () => { $crate::attr::AttrSet::empty() };
    ($($name:expr),+ $(,)?) => {
        $crate::attr::AttrSet::from_names([$($name),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_equality_and_ordering() {
        let a = Attr::new("A");
        let b = Attr::new("B");
        let a2 = Attr::new("A");
        assert_eq!(a, a2);
        assert_eq!(a.id(), a2.id(), "interning is stable");
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.name(), "A");
    }

    #[test]
    fn attr_display() {
        assert_eq!(format!("{}", Attr::new("salary")), "salary");
        assert_eq!(format!("{:?}", Attr::new("salary")), "salary");
    }

    #[test]
    fn attr_from_id_round_trips() {
        let a = Attr::new("round-trip-attr");
        assert_eq!(Attr::from_id(a.id()), a);
    }

    #[test]
    fn attrset_union_is_juxtaposition() {
        let x = attrs!["A", "B"];
        let y = attrs!["B", "C"];
        assert_eq!(x.union(&y), attrs!["A", "B", "C"]);
    }

    #[test]
    fn attrset_intersection_and_difference() {
        let x = attrs!["A", "B", "C"];
        let y = attrs!["B", "C", "D"];
        assert_eq!(x.intersection(&y), attrs!["B", "C"]);
        assert_eq!(x.difference(&y), attrs!["A"]);
        assert_eq!(y.difference(&x), attrs!["D"]);
    }

    #[test]
    fn attrset_subset_relations() {
        let x = attrs!["A", "B"];
        let y = attrs!["A", "B", "C"];
        assert!(x.is_subset(&y));
        assert!(y.is_superset(&x));
        assert!(!y.is_subset(&x));
        assert!(AttrSet::empty().is_subset(&x));
        assert!(x.is_subset(&x));
    }

    #[test]
    fn attrset_disjointness() {
        assert!(attrs!["A"].is_disjoint(&attrs!["B"]));
        assert!(!attrs!["A", "B"].is_disjoint(&attrs!["B", "C"]));
        assert!(AttrSet::empty().is_disjoint(&attrs!["A"]));
    }

    #[test]
    fn attrset_display_is_sorted() {
        let x = attrs!["C", "A", "B"];
        assert_eq!(format!("{}", x), "{A, B, C}");
    }

    #[test]
    fn attrset_insert_remove() {
        let mut x = AttrSet::empty();
        assert!(x.insert("A"));
        assert!(!x.insert("A"));
        assert!(x.contains(&Attr::new("A")));
        assert!(x.remove(&Attr::new("A")));
        assert!(!x.remove(&Attr::new("A")));
        assert!(x.is_empty());
    }

    #[test]
    fn attrset_singleton_promotion() {
        let a = Attr::new("A");
        assert_eq!(a.to_set(), attrs!["A"]);
        let s: AttrSet = a.into();
        assert_eq!(s, attrs!["A"]);
    }

    #[test]
    fn power_set_enumerates_all_subsets() {
        let x = attrs!["A", "B", "C"];
        let ps = x.power_set();
        assert_eq!(ps.len(), 8);
        assert!(ps.contains(&AttrSet::empty()));
        assert!(ps.contains(&attrs!["A", "B", "C"]));
        assert!(ps.contains(&attrs!["A", "C"]));
        // Every element is a subset.
        assert!(ps.iter().all(|s| s.is_subset(&x)));
    }

    #[test]
    fn contains_name_borrow() {
        let x = attrs!["salary", "jobtype"];
        assert!(x.contains_name("salary"));
        assert!(!x.contains_name("products"));
        assert!(!x.contains_name("never-interned-name-xyzzy"));
    }

    #[test]
    fn from_iterators() {
        let v = vec![Attr::new("A"), Attr::new("B")];
        let s: AttrSet = v.iter().collect();
        assert_eq!(s.len(), 2);
        let s2: AttrSet = v.into_iter().collect();
        assert_eq!(s, s2);
        let names: Vec<String> = s.iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn extend_with_unions_in_place() {
        let mut x = attrs!["A"];
        x.extend_with(&attrs!["B", "C"]);
        assert_eq!(x, attrs!["A", "B", "C"]);
    }

    #[test]
    fn spilled_sets_behave_like_inline_sets() {
        // Force ids ≥ 64 to exercise the spilled representation.  The global
        // universe is shared across tests, so generate enough fresh names to
        // guarantee at least some land beyond the first word.
        let names: Vec<String> = (0..96).map(|i| format!("spill-test-{:03}", i)).collect();
        let all = AttrSet::from_names(&names);
        assert_eq!(all.len(), 96);
        let half = AttrSet::from_names(&names[..48]);
        assert!(half.is_subset(&all));
        assert!(!all.is_subset(&half));
        assert_eq!(all.difference(&half).len(), 48);
        assert_eq!(all.intersection(&half), half);
        assert_eq!(half.union(&all), all);
        // Mixed inline/spilled equality and hashing: removing the spilled
        // members must make the set equal to its inline-only restriction.
        let mut shrunk = all.clone();
        for n in &names {
            if !half.contains_name(n) {
                assert!(shrunk.remove(&Attr::new(n)));
            }
        }
        assert_eq!(shrunk, half);
        use std::collections::hash_map::DefaultHasher;
        let h = |s: &AttrSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&shrunk), h(&half), "hash ignores trailing zero words");
    }

    #[test]
    fn ids_iterates_every_member() {
        let x = attrs!["A", "B", "C"];
        let ids: Vec<u32> = x.ids().collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending id order");
        for id in ids {
            assert!(x.contains_id(id));
            assert!(x.contains(&Attr::from_id(id)));
        }
    }

    #[test]
    fn canonical_order_is_name_order_not_id_order() {
        // Intern in reverse lexicographic order: ids are now anti-sorted
        // relative to names, yet iteration must stay lexicographic.
        let z = Attr::new("zzz-order-test");
        let m = Attr::new("mmm-order-test");
        let a = Attr::new("aaa-order-test");
        assert!(z.id() < m.id() && m.id() < a.id());
        let s: AttrSet = [z, m, a].into_iter().collect();
        let names: Vec<&'static str> = vec!["aaa-order-test", "mmm-order-test", "zzz-order-test"];
        assert_eq!(
            s.iter().map(|x| x.name().to_string()).collect::<Vec<_>>(),
            names
        );
        assert_eq!(
            format!("{}", s),
            "{aaa-order-test, mmm-order-test, zzz-order-test}"
        );
    }
}
