//! Type checking and type guards (§3.1, §3.1.2, Example 4).
//!
//! Flexible schemes already catch *existence-based* violations; value-based
//! violations (the salesman carrying a typing-speed) are caught by the
//! attribute dependencies.  Retrieval-side type checking uses **type
//! guards**: predicates of the form "attributes `G` are present in the
//! tuple".  ADs make two optimizations possible:
//!
//! * a guard can be recognized as **redundant** when the rest of the query
//!   (e.g. an equality selection on the determining attributes) already
//!   guarantees the guarded attributes are present — Example 4;
//! * dually, a guard can be recognized as **unsatisfiable**, allowing the
//!   whole branch to be pruned.

use std::fmt;

use crate::attr::AttrSet;
use crate::axioms::{derive, AxiomSystem, Derivation};
use crate::dep::{Ad, Dependency, DependencySet, Ead};
use crate::error::{CoreError, Result};
use crate::relation::FlexRelation;
use crate::scheme::FlexScheme;
use crate::tuple::Tuple;

/// A type guard: the check that all attributes of `required` are present in
/// a tuple (`required ⊆ attr(t)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeGuard {
    /// The attributes whose presence is asserted.
    pub required: AttrSet,
}

impl TypeGuard {
    /// Creates a guard for the given attributes.
    pub fn new(required: impl Into<AttrSet>) -> Self {
        TypeGuard {
            required: required.into(),
        }
    }

    /// Evaluates the guard against a tuple.
    pub fn check(&self, t: &Tuple) -> bool {
        t.defined_on(&self.required)
    }
}

impl fmt::Display for TypeGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guard[{} present]", self.required)
    }
}

/// The outcome of analysing a type guard against the constraints known to
/// hold in a query context.
#[derive(Clone, Debug, PartialEq)]
pub enum GuardAnalysis {
    /// The guarded attributes are always present; the guard is redundant and
    /// may be removed.  Carries the derivation justifying the conclusion at
    /// the AD level (Example 4's two-step derivation).
    Redundant(Box<Derivation>),
    /// The guarded attributes can never all be present under the known
    /// constraints; the guarded branch may be pruned entirely.
    Unsatisfiable,
    /// Nothing can be concluded; the guard must stay.
    Necessary,
}

impl GuardAnalysis {
    /// Whether the analysis allows dropping the guard.
    pub fn is_redundant(&self) -> bool {
        matches!(self, GuardAnalysis::Redundant(_))
    }
}

/// The statically known facts a selection formula provides about the tuples
/// that survive it: which attributes it *references* (and therefore requires
/// to be present for the predicate to evaluate to true) and which attributes
/// it pins to constants by equality.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SelectionContext {
    /// Attributes the selection references; a tuple passing the selection is
    /// necessarily defined on them (e.g. both `salary` and `jobtype` in
    /// `salary > 5000 AND jobtype = 'secretary'`).
    pub referenced: AttrSet,
    /// Attribute-to-constant equalities implied by the selection (e.g.
    /// `jobtype = 'secretary'`).
    pub equalities: Tuple,
}

impl SelectionContext {
    /// An empty context (no selection applied).
    pub fn none() -> Self {
        SelectionContext::default()
    }

    /// Builder: record that an attribute is referenced by the selection.
    pub fn with_referenced(mut self, attrs: impl Into<AttrSet>) -> Self {
        self.referenced.extend_with(&attrs.into());
        self
    }

    /// Builder: record an equality `attr = value`.
    pub fn with_equality(
        mut self,
        attr: impl Into<crate::attr::Attr>,
        value: impl Into<crate::value::Value>,
    ) -> Self {
        let attr = attr.into();
        self.referenced.insert(attr.clone());
        self.equalities.insert(attr, value);
        self
    }

    /// All attributes known to be present in qualifying tuples.
    pub fn known_present(&self) -> AttrSet {
        self.referenced.union(&self.equalities.attrs())
    }
}

/// Analyses whether a type guard is redundant or unsatisfiable given a
/// selection context and the relation's dependencies.
///
/// Two complementary arguments are combined:
///
/// 1. **AD-level** (Example 4): if `K --attr--> G` is derivable, where `K`
///    are the attributes referenced by the selection, then within the
///    selection result the presence of `G` is fully determined by the
///    `K`-values; combined with the explicit variant information (2) this
///    makes the guard removable.  The derivation is returned as
///    justification.
/// 2. **Variant-level**: the selection's equalities select a set of possible
///    variants of each EAD; if every possible variant prescribes all guarded
///    attributes, the guard always holds; if no possible variant prescribes
///    some guarded attribute (and the attribute belongs to the EAD's
///    determined set), the guard can never hold.
pub fn analyse_guard(
    deps: &DependencySet,
    ctx: &SelectionContext,
    guard: &TypeGuard,
    system: AxiomSystem,
) -> GuardAnalysis {
    // Attributes already known present make that part of the guard trivially
    // redundant.
    let remaining = guard.required.difference(&ctx.known_present());
    if remaining.is_empty() {
        // Guard follows from the selection referencing those attributes; the
        // derivation is the trivial reflexive one.
        let target = Dependency::Ad(Ad::new(ctx.known_present(), guard.required.clone()));
        if let Some(d) = derive(deps, &target, system) {
            return GuardAnalysis::Redundant(Box::new(d));
        }
    }

    // Variant-level reasoning per explicit AD.
    for ead in deps.eads() {
        match variant_outcome(ead, ctx, &remaining) {
            VariantOutcome::AlwaysPresent => {
                // Justify at the AD level: the referenced attributes (which
                // include the EAD determinant pinned by the equalities)
                // existentially determine the guarded attributes.
                let lhs = ctx.known_present().union(ead.lhs());
                let target = Dependency::Ad(Ad::new(lhs, guard.required.clone()));
                if let Some(d) = derive(deps, &target, system) {
                    return GuardAnalysis::Redundant(Box::new(d));
                }
            }
            VariantOutcome::NeverPresent => return GuardAnalysis::Unsatisfiable,
            VariantOutcome::Unknown => {}
        }
    }
    GuardAnalysis::Necessary
}

enum VariantOutcome {
    AlwaysPresent,
    NeverPresent,
    Unknown,
}

/// Decides, for one EAD, whether the selection context forces the guarded
/// attributes (restricted to the EAD's determined set) to be present, absent
/// or neither.
fn variant_outcome(ead: &Ead, ctx: &SelectionContext, guard: &AttrSet) -> VariantOutcome {
    let guarded_in_y = guard.intersection(ead.rhs());
    if guarded_in_y.is_empty() {
        return VariantOutcome::Unknown;
    }
    // The candidate variants: those whose value sets are consistent with the
    // selection's equalities on the determining attributes.  If the
    // equalities do not pin all of X we must also consider "no variant".
    let pinned = ctx.equalities.project(ead.lhs());
    let pinned_attrs = pinned.attrs();
    let fully_pinned = pinned_attrs == *ead.lhs();
    let mut possible_required: Vec<AttrSet> = Vec::new();
    for variant in ead.variants() {
        let consistent = variant.values.iter().any(|v| {
            pinned_attrs
                .iter_unordered()
                .all(|a| v.get(&a) == pinned.get(&a))
        });
        if consistent {
            possible_required.push(variant.attrs.clone());
        }
    }
    if !fully_pinned || possible_required.is_empty() {
        // "No matching variant" (⟹ no Y attribute present) stays possible
        // when X is not fully pinned or no variant matches the pinned values.
        possible_required.push(AttrSet::empty());
    }
    if possible_required
        .iter()
        .all(|req| guarded_in_y.is_subset(req))
        && guard.is_subset(&guarded_in_y.union(&ctx.known_present()))
    {
        VariantOutcome::AlwaysPresent
    } else if possible_required
        .iter()
        .all(|req| !guarded_in_y.is_empty() && guarded_in_y.intersection(req).is_empty())
    {
        VariantOutcome::NeverPresent
    } else {
        VariantOutcome::Unknown
    }
}

/// A bundled type checker for a flexible relation: scheme, domains and
/// dependencies.  It offers the insert-time checks of
/// [`FlexRelation`] on loose tuples, which is
/// what the storage and query layers need when tuples flow through operators
/// rather than living in a base relation.
#[derive(Clone, Debug)]
pub struct TypeChecker {
    scheme: FlexScheme,
    deps: DependencySet,
}

impl TypeChecker {
    /// Creates a checker from a scheme and dependencies.
    pub fn new(scheme: FlexScheme, deps: DependencySet) -> Self {
        TypeChecker { scheme, deps }
    }

    /// Creates a checker from an existing relation definition.
    pub fn for_relation(rel: &FlexRelation) -> Self {
        TypeChecker {
            scheme: rel.scheme().clone(),
            deps: rel.deps().clone(),
        }
    }

    /// The scheme being checked against.
    pub fn scheme(&self) -> &FlexScheme {
        &self.scheme
    }

    /// The dependencies being checked against.
    pub fn deps(&self) -> &DependencySet {
        &self.deps
    }

    /// Checks a single tuple against the scheme (existence-based constraint)
    /// only.
    pub fn check_shape(&self, t: &Tuple) -> Result<()> {
        if self.scheme.admits(&t.attrs()) {
            Ok(())
        } else {
            Err(CoreError::SchemeViolation {
                tuple_attrs: t.attrs().to_string(),
                scheme: self.scheme.to_string(),
            })
        }
    }

    /// Checks a single tuple against the scheme and every *per-tuple*
    /// dependency (explicit ADs); abbreviated ADs and FDs are inherently
    /// pairwise and are checked by [`TypeChecker::check_instance`].
    pub fn check_tuple(&self, t: &Tuple) -> Result<()> {
        self.check_shape(t)?;
        for ead in self.deps.eads() {
            ead.check_tuple(t)?;
        }
        Ok(())
    }

    /// Checks a whole instance against scheme and all dependencies.
    pub fn check_instance(&self, tuples: &[Tuple]) -> Result<()> {
        for t in tuples {
            self.check_shape(t)?;
        }
        if let Some(v) = self.deps.first_violation(tuples) {
            return Err(CoreError::Invalid(format!(
                "instance violates dependency {}",
                v
            )));
        }
        Ok(())
    }

    /// Analyses a type guard under a selection context (see
    /// [`analyse_guard`]).
    pub fn analyse_guard(
        &self,
        ctx: &SelectionContext,
        guard: &TypeGuard,
        system: AxiomSystem,
    ) -> GuardAnalysis {
        analyse_guard(&self.deps, ctx, guard, system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::example2_jobtype_ead;
    use crate::scheme::{Component, SchemeBuilder};
    use crate::value::Value;
    use crate::{attrs, tuple};

    fn employee_deps() -> DependencySet {
        DependencySet::from_deps(vec![Dependency::Ead(example2_jobtype_ead())])
    }

    fn employee_scheme() -> FlexScheme {
        let variants = FlexScheme::new(
            0,
            5,
            vec![
                Component::from("typing-speed"),
                Component::from("foreign-languages"),
                Component::from("products"),
                Component::from("programming-languages"),
                Component::from("sales-commission"),
            ],
        )
        .unwrap();
        SchemeBuilder::all_of(["empno", "name", "salary", "jobtype"])
            .nested(variants)
            .build()
            .unwrap()
    }

    #[test]
    fn example4_guard_is_redundant() {
        // σ[salary > 5000 AND jobtype = 'secretary'] followed by a guard for
        // typing-speed: redundant.
        let ctx = SelectionContext::none()
            .with_referenced(attrs!["salary"])
            .with_equality("jobtype", Value::tag("secretary"));
        let guard = TypeGuard::new(attrs!["typing-speed"]);
        let analysis = analyse_guard(&employee_deps(), &ctx, &guard, AxiomSystem::R);
        match analysis {
            GuardAnalysis::Redundant(derivation) => {
                derivation.verify(&employee_deps()).unwrap();
                // The justification is the Example 4 dependency
                // {jobtype, salary} --attr--> {typing-speed}.
                assert_eq!(
                    derivation.target(),
                    &Dependency::Ad(Ad::new(attrs!["jobtype", "salary"], attrs!["typing-speed"]))
                );
            }
            other => panic!("expected Redundant, got {:?}", other),
        }
    }

    #[test]
    fn guard_for_wrong_variant_is_unsatisfiable() {
        // Selecting secretaries and then guarding for sales-commission can
        // never succeed.
        let ctx = SelectionContext::none().with_equality("jobtype", Value::tag("secretary"));
        let guard = TypeGuard::new(attrs!["sales-commission"]);
        assert_eq!(
            analyse_guard(&employee_deps(), &ctx, &guard, AxiomSystem::R),
            GuardAnalysis::Unsatisfiable
        );
    }

    #[test]
    fn guard_without_selection_is_necessary() {
        let ctx = SelectionContext::none();
        let guard = TypeGuard::new(attrs!["typing-speed"]);
        assert_eq!(
            analyse_guard(&employee_deps(), &ctx, &guard, AxiomSystem::R),
            GuardAnalysis::Necessary
        );
    }

    #[test]
    fn guard_on_attribute_outside_y_is_necessary() {
        let ctx = SelectionContext::none().with_equality("jobtype", Value::tag("secretary"));
        let guard = TypeGuard::new(attrs!["badge-number"]);
        assert_eq!(
            analyse_guard(&employee_deps(), &ctx, &guard, AxiomSystem::R),
            GuardAnalysis::Necessary
        );
    }

    #[test]
    fn guard_over_referenced_attributes_is_redundant() {
        // The selection already references salary, so guarding for salary is
        // redundant by reflexivity.
        let ctx = SelectionContext::none().with_referenced(attrs!["salary"]);
        let guard = TypeGuard::new(attrs!["salary"]);
        assert!(analyse_guard(&employee_deps(), &ctx, &guard, AxiomSystem::R).is_redundant());
    }

    #[test]
    fn partial_pinning_is_inconclusive() {
        // With a two-attribute determinant, pinning only one of them leaves
        // the variant open.
        let mk = |sex: &str, ms: &str| {
            Tuple::new()
                .with("sex", Value::tag(sex))
                .with("marital-status", Value::tag(ms))
        };
        let ead = Ead::new(
            attrs!["sex", "marital-status"],
            attrs!["maiden-name"],
            vec![crate::dep::EadVariant::new(
                vec![mk("female", "married")],
                attrs!["maiden-name"],
            )],
        )
        .unwrap();
        let deps = DependencySet::from_deps(vec![Dependency::Ead(ead)]);
        let ctx = SelectionContext::none().with_equality("sex", Value::tag("female"));
        let guard = TypeGuard::new(attrs!["maiden-name"]);
        assert_eq!(
            analyse_guard(&deps, &ctx, &guard, AxiomSystem::R),
            GuardAnalysis::Necessary
        );
        // Pinning both determines the variant.
        let ctx = ctx.with_equality("marital-status", Value::tag("married"));
        assert!(analyse_guard(&deps, &ctx, &guard, AxiomSystem::R).is_redundant());
    }

    #[test]
    fn guard_evaluation_on_tuples() {
        let guard = TypeGuard::new(attrs!["typing-speed"]);
        assert!(guard.check(&tuple! {"typing-speed" => 300}));
        assert!(!guard.check(&tuple! {"salary" => 300}));
        assert!(guard.to_string().contains("typing-speed"));
    }

    #[test]
    fn type_checker_shape_and_tuple_checks() {
        let checker = TypeChecker::new(employee_scheme(), employee_deps());
        let good = tuple! {
            "empno" => 1, "name" => "a", "salary" => 4000,
            "jobtype" => Value::tag("secretary"),
            "typing-speed" => 300, "foreign-languages" => "fr"
        };
        assert!(checker.check_tuple(&good).is_ok());

        let bad_shape = tuple! {"empno" => 1};
        assert!(checker.check_shape(&bad_shape).is_err());

        let bad_variant = tuple! {
            "empno" => 1, "name" => "a", "salary" => 4000,
            "jobtype" => Value::tag("salesman"),
            "typing-speed" => 300
        };
        assert!(checker.check_shape(&bad_variant).is_ok());
        assert!(checker.check_tuple(&bad_variant).is_err());

        assert!(checker.check_instance(&[good]).is_ok());
    }

    #[test]
    fn type_checker_from_relation() {
        let rel = FlexRelation::new("employee", employee_scheme()).with_dep(example2_jobtype_ead());
        let checker = TypeChecker::for_relation(&rel);
        assert_eq!(checker.scheme(), rel.scheme());
        assert_eq!(checker.deps().len(), 1);
    }

    #[test]
    fn selection_context_accessors() {
        let ctx = SelectionContext::none()
            .with_referenced(attrs!["salary"])
            .with_equality("jobtype", Value::tag("salesman"));
        assert_eq!(ctx.known_present(), attrs!["salary", "jobtype"]);
        assert_eq!(
            ctx.equalities.get_name("jobtype"),
            Some(&Value::tag("salesman"))
        );
    }
}
