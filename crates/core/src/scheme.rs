//! Flexible schemes: the single generic scheme constructor of the model.
//!
//! A flexible scheme is a three-tuple `< at-least, at-most, {components} >`
//! whose components are either single attributes or, recursively, flexible
//! schemes (§2.1).  The cardinality constraint says how many components must
//! at least and may at most be present in a tuple:
//!
//! * a traditional relational scheme over `A1 … An` is `< n, n, {A1 … An} >`,
//! * a disjoint union (variant) is `< 1, 1, {A1 … An} >`,
//! * a non-disjoint union is `< 1, n, {A1 … An} >`.
//!
//! Unfolding a flexible scheme into the set of admissible attribute
//! combinations yields its disjunctive normal form `dnf(FS)`, which
//! corresponds to Sciore's "set of objects" view.

use std::collections::BTreeSet;
use std::fmt;

use crate::attr::{Attr, AttrSet};
use crate::error::{CoreError, Result};

/// A component of a flexible scheme: a single attribute or a nested scheme.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A plain attribute.
    Attr(Attr),
    /// A nested flexible scheme.
    Scheme(FlexScheme),
}

impl Component {
    /// All attributes mentioned by this component.
    pub fn attrs(&self) -> AttrSet {
        match self {
            Component::Attr(a) => a.to_set(),
            Component::Scheme(s) => s.attrs(),
        }
    }

    /// The admissible attribute combinations this component can contribute
    /// when it is taken.
    fn combinations(&self) -> BTreeSet<AttrSet> {
        match self {
            Component::Attr(a) => {
                let mut s = BTreeSet::new();
                s.insert(a.to_set());
                s
            }
            Component::Scheme(sch) => sch.dnf(),
        }
    }

    /// Whether this component, when taken, can contribute the empty attribute
    /// combination (only possible for nested schemes with `at_least = 0` or
    /// nested schemes all of whose mandatory components can themselves be
    /// empty).
    fn admits_empty(&self) -> bool {
        match self {
            Component::Attr(_) => false,
            Component::Scheme(s) => s.admits(&AttrSet::empty()),
        }
    }
}

impl From<Attr> for Component {
    fn from(a: Attr) -> Self {
        Component::Attr(a)
    }
}
impl From<&str> for Component {
    fn from(a: &str) -> Self {
        Component::Attr(Attr::new(a))
    }
}
impl From<FlexScheme> for Component {
    fn from(s: FlexScheme) -> Self {
        Component::Scheme(s)
    }
}

/// A flexible scheme `< at_least, at_most, {components} >`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlexScheme {
    at_least: usize,
    at_most: usize,
    components: Vec<Component>,
}

impl FlexScheme {
    /// Constructs a flexible scheme and validates it (see [`validate`]).
    ///
    /// [`validate`]: FlexScheme::validate
    pub fn new<I, C>(at_least: usize, at_most: usize, components: I) -> Result<Self>
    where
        I: IntoIterator<Item = C>,
        C: Into<Component>,
    {
        let scheme = FlexScheme {
            at_least,
            at_most,
            components: components.into_iter().map(Into::into).collect(),
        };
        scheme.validate()?;
        Ok(scheme)
    }

    /// A traditional (homogeneous) relational scheme: all attributes present,
    /// `< n, n, {A1 … An} >`.
    pub fn relational(attrs: impl Into<AttrSet>) -> Self {
        let attrs = attrs.into();
        let n = attrs.len();
        FlexScheme {
            at_least: n,
            at_most: n,
            components: attrs.into_iter().map(Component::Attr).collect(),
        }
    }

    /// A disjoint union (exactly one component present): `< 1, 1, {…} >`.
    pub fn disjoint_union<I, C>(components: I) -> Result<Self>
    where
        I: IntoIterator<Item = C>,
        C: Into<Component>,
    {
        Self::new(1, 1, components)
    }

    /// A non-disjoint union (at least one, at most all components present):
    /// `< 1, n, {…} >`.
    pub fn non_disjoint_union<I, C>(components: I) -> Result<Self>
    where
        I: IntoIterator<Item = C>,
        C: Into<Component>,
    {
        let components: Vec<Component> = components.into_iter().map(Into::into).collect();
        let n = components.len();
        Self::new(1, n, components)
    }

    /// An optional component: `< 0, 1, {…} >`.
    pub fn optional<C: Into<Component>>(component: C) -> Self {
        FlexScheme {
            at_least: 0,
            at_most: 1,
            components: vec![component.into()],
        }
    }

    /// The `at-least` cardinality bound.
    pub fn at_least(&self) -> usize {
        self.at_least
    }

    /// The `at-most` cardinality bound.
    pub fn at_most(&self) -> usize {
        self.at_most
    }

    /// The scheme's components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Validates the scheme:
    ///
    /// * `at_least ≤ at_most ≤ |components|`,
    /// * at least one component,
    /// * the attribute sets of distinct components are pairwise disjoint
    ///   (so every attribute of a tuple identifies the component it came
    ///   from), and
    /// * nested schemes are themselves valid.
    pub fn validate(&self) -> Result<()> {
        if self.components.is_empty() {
            return Err(CoreError::InvalidScheme(
                "a flexible scheme needs at least one component".into(),
            ));
        }
        if self.at_least > self.at_most {
            return Err(CoreError::InvalidScheme(format!(
                "at-least ({}) exceeds at-most ({})",
                self.at_least, self.at_most
            )));
        }
        if self.at_most > self.components.len() {
            return Err(CoreError::InvalidScheme(format!(
                "at-most ({}) exceeds the number of components ({})",
                self.at_most,
                self.components.len()
            )));
        }
        let mut seen = AttrSet::empty();
        for c in &self.components {
            if let Component::Scheme(s) = c {
                s.validate()?;
            }
            let cattrs = c.attrs();
            if !seen.is_disjoint(&cattrs) {
                return Err(CoreError::InvalidScheme(format!(
                    "components share attributes: {}",
                    seen.intersection(&cattrs)
                )));
            }
            seen.extend_with(&cattrs);
        }
        Ok(())
    }

    /// `attr(FS)`: all attributes mentioned anywhere in the scheme.
    pub fn attrs(&self) -> AttrSet {
        let mut out = AttrSet::empty();
        for c in &self.components {
            out.extend_with(&c.attrs());
        }
        out
    }

    /// Whether the scheme is homogeneous, i.e. equivalent to a traditional
    /// relational scheme (every admissible combination is the full attribute
    /// set).
    pub fn is_homogeneous(&self) -> bool {
        self.dnf().len() == 1
    }

    /// `dnf(FS)`: the set of admissible attribute combinations obtained by
    /// unfolding the scheme.  Duplicate combinations arising from components
    /// that may contribute the empty set are merged (it is a set).
    pub fn dnf(&self) -> BTreeSet<AttrSet> {
        let per_component: Vec<BTreeSet<AttrSet>> =
            self.components.iter().map(|c| c.combinations()).collect();
        let mut out = BTreeSet::new();
        // Choose which components are taken (a bitmask over components), with
        // the number of taken components within [at_least, at_most]; then take
        // the cross product of the chosen components' own combinations.
        let n = self.components.len();
        assert!(
            n <= 24,
            "dnf materialization supports at most 24 components per level"
        );
        for mask in 0u32..(1u32 << n) {
            let taken = mask.count_ones() as usize;
            if taken < self.at_least || taken > self.at_most {
                continue;
            }
            let chosen: Vec<&BTreeSet<AttrSet>> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| &per_component[i])
                .collect();
            let mut partial: Vec<AttrSet> = vec![AttrSet::empty()];
            for combos in chosen {
                let mut next = Vec::with_capacity(partial.len() * combos.len());
                for p in &partial {
                    for c in combos {
                        next.push(p.union(c));
                    }
                }
                partial = next;
            }
            out.extend(partial);
        }
        out
    }

    /// The number of admissible attribute combinations, `|dnf(FS)|`.
    ///
    /// When no component can contribute the empty combination this is
    /// computed combinatorially without materializing the DNF; otherwise it
    /// falls back to materialization (distinct combinations only).
    pub fn dnf_len(&self) -> usize {
        if self.components.iter().any(|c| c.admits_empty()) {
            return self.dnf().len();
        }
        // ways[k] = number of attribute combinations using exactly k taken
        // components, accumulated left to right over the components.
        let counts: Vec<usize> = self
            .components
            .iter()
            .map(|c| match c {
                Component::Attr(_) => 1,
                Component::Scheme(s) => s.dnf_len(),
            })
            .collect();
        let n = counts.len();
        let mut ways = vec![0usize; n + 1];
        ways[0] = 1;
        for &c in &counts {
            for k in (0..n).rev() {
                let add = ways[k].saturating_mul(c);
                ways[k + 1] = ways[k + 1].saturating_add(add);
            }
        }
        (self.at_least..=self.at_most).map(|k| ways[k]).sum()
    }

    /// Whether the attribute set `x` is an admissible combination of this
    /// scheme, i.e. `x ∈ dnf(FS)`.  Decided recursively without materializing
    /// the DNF: because components have pairwise-disjoint attribute sets,
    /// every attribute of `x` identifies the component that must contribute
    /// it.
    pub fn admits(&self, x: &AttrSet) -> bool {
        if !x.is_subset(&self.attrs()) {
            return false;
        }
        let mut forced = 0usize; // components that must be taken
        let mut optional = 0usize; // components that could be taken contributing ∅
        for c in &self.components {
            let part = x.intersection(&c.attrs());
            if part.is_empty() {
                if c.admits_empty() {
                    optional += 1;
                }
                continue;
            }
            let ok = match c {
                Component::Attr(_) => true, // part == {A} by construction
                Component::Scheme(s) => s.admits(&part),
            };
            if !ok {
                return false;
            }
            forced += 1;
        }
        // Some number k of components is taken, forced ≤ k ≤ forced+optional,
        // and k must satisfy the cardinality constraint.
        let lo = forced.max(self.at_least);
        let hi = (forced + optional).min(self.at_most);
        lo <= hi
    }

    /// The nesting depth of the scheme (a flat scheme has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .components
            .iter()
            .map(|c| match c {
                Component::Attr(_) => 0,
                Component::Scheme(s) => s.depth(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Total number of components, counting nested components recursively.
    pub fn component_count(&self) -> usize {
        self.components
            .iter()
            .map(|c| match c {
                Component::Attr(_) => 1,
                Component::Scheme(s) => 1 + s.component_count(),
            })
            .sum()
    }
}

impl fmt::Display for FlexScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}, {{", self.at_least, self.at_most)?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                Component::Attr(a) => write!(f, "{}", a)?,
                Component::Scheme(s) => write!(f, "{}", s)?,
            }
        }
        write!(f, "}}>")
    }
}

/// Fluent builder for flexible schemes, mostly useful in examples and tests.
///
/// ```
/// use flexrel_core::scheme::SchemeBuilder;
/// let fs = SchemeBuilder::all_of(["ZipCode", "Town"])
///     .disjoint(["PostOfficeBoxNumber", "Street"])
///     .optional("HouseNumber")
///     .build()
///     .unwrap();
/// assert!(fs.attrs().contains_name("Street"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SchemeBuilder {
    mandatory: Vec<Component>,
    groups: Vec<Component>,
}

impl SchemeBuilder {
    /// Starts a builder with a set of unconditioned (always present)
    /// attributes.
    pub fn all_of<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        SchemeBuilder {
            mandatory: attrs
                .into_iter()
                .map(|a| Component::Attr(Attr::new(a.as_ref())))
                .collect(),
            groups: Vec::new(),
        }
    }

    /// Adds another unconditioned attribute.
    pub fn attr(mut self, name: impl AsRef<str>) -> Self {
        self.mandatory
            .push(Component::Attr(Attr::new(name.as_ref())));
        self
    }

    /// Adds a disjoint union over the given attributes (exactly one present).
    pub fn disjoint<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let comps: Vec<Component> = attrs
            .into_iter()
            .map(|a| Component::Attr(Attr::new(a.as_ref())))
            .collect();
        let n = comps.len();
        self.groups.push(Component::Scheme(FlexScheme {
            at_least: 1,
            at_most: 1,
            components: comps,
        }));
        let _ = n;
        self
    }

    /// Adds a non-disjoint union over the given attributes (at least one
    /// present).
    pub fn some_of<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let comps: Vec<Component> = attrs
            .into_iter()
            .map(|a| Component::Attr(Attr::new(a.as_ref())))
            .collect();
        let n = comps.len();
        self.groups.push(Component::Scheme(FlexScheme {
            at_least: 1,
            at_most: n,
            components: comps,
        }));
        self
    }

    /// Adds an optional attribute (present or absent).
    pub fn optional(mut self, name: impl AsRef<str>) -> Self {
        self.groups.push(Component::Scheme(FlexScheme {
            at_least: 0,
            at_most: 1,
            components: vec![Component::Attr(Attr::new(name.as_ref()))],
        }));
        self
    }

    /// Adds an arbitrary nested component.
    pub fn nested(mut self, c: impl Into<Component>) -> Self {
        self.groups.push(c.into());
        self
    }

    /// Finishes the builder.  Mandatory attributes and every group become
    /// components of an outer scheme requiring all of them to be taken.
    pub fn build(self) -> Result<FlexScheme> {
        let mut components = self.mandatory;
        components.extend(self.groups);
        let n = components.len();
        FlexScheme::new(n, n, components)
    }
}

/// The flexible scheme of the paper's Example 1:
/// `FS = <4,4,{ A, B, <1,1,{C,D}>, <1,3,{E,F,G}> }>`.
pub fn example1_scheme() -> FlexScheme {
    FlexScheme::new(
        4,
        4,
        vec![
            Component::from("A"),
            Component::from("B"),
            Component::Scheme(FlexScheme::disjoint_union(["C", "D"]).unwrap()),
            Component::Scheme(FlexScheme::non_disjoint_union(["E", "F", "G"]).unwrap()),
        ],
    )
    .expect("example 1 scheme is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    #[test]
    fn relational_scheme_is_homogeneous() {
        let fs = FlexScheme::relational(attrs!["A", "B", "C"]);
        assert_eq!(fs.at_least(), 3);
        assert_eq!(fs.at_most(), 3);
        assert!(fs.is_homogeneous());
        assert_eq!(fs.dnf().len(), 1);
        assert!(fs.admits(&attrs!["A", "B", "C"]));
        assert!(!fs.admits(&attrs!["A", "B"]));
    }

    #[test]
    fn disjoint_union_admits_exactly_one() {
        let fs = FlexScheme::disjoint_union(["C", "D"]).unwrap();
        assert!(fs.admits(&attrs!["C"]));
        assert!(fs.admits(&attrs!["D"]));
        assert!(!fs.admits(&attrs!["C", "D"]));
        assert!(!fs.admits(&AttrSet::empty()));
        assert_eq!(fs.dnf_len(), 2);
    }

    #[test]
    fn non_disjoint_union_is_electronic_communication_address() {
        let fs =
            FlexScheme::non_disjoint_union(["tel-number", "FAX-number", "email-address"]).unwrap();
        // 2^3 - 1 = 7 non-empty subsets.
        assert_eq!(fs.dnf_len(), 7);
        assert!(fs.admits(&attrs!["tel-number"]));
        assert!(fs.admits(&attrs!["tel-number", "FAX-number", "email-address"]));
        assert!(!fs.admits(&AttrSet::empty()));
    }

    #[test]
    fn example1_dnf_matches_paper() {
        let fs = example1_scheme();
        let dnf = fs.dnf();
        let expected: BTreeSet<AttrSet> = [
            attrs!["A", "B", "C", "E"],
            attrs!["A", "B", "D", "E"],
            attrs!["A", "B", "C", "F"],
            attrs!["A", "B", "D", "F"],
            attrs!["A", "B", "C", "G"],
            attrs!["A", "B", "D", "G"],
            attrs!["A", "B", "C", "E", "F"],
            attrs!["A", "B", "D", "E", "F"],
            attrs!["A", "B", "C", "E", "G"],
            attrs!["A", "B", "D", "E", "G"],
            attrs!["A", "B", "C", "F", "G"],
            attrs!["A", "B", "D", "F", "G"],
            attrs!["A", "B", "C", "E", "F", "G"],
            attrs!["A", "B", "D", "E", "F", "G"],
        ]
        .into_iter()
        .collect();
        assert_eq!(dnf, expected, "dnf(FS) must be the paper's 14 combinations");
        assert_eq!(fs.dnf_len(), 14);
    }

    #[test]
    fn admits_agrees_with_dnf_on_example1() {
        let fs = example1_scheme();
        let dnf = fs.dnf();
        for candidate in fs.attrs().power_set() {
            assert_eq!(
                fs.admits(&candidate),
                dnf.contains(&candidate),
                "admits() and dnf() disagree on {}",
                candidate
            );
        }
    }

    #[test]
    fn address_scheme_from_introduction() {
        // ZipCode, Town unconditioned; PO box or street (disjoint); house
        // number optional.  The optional house number is modelled as a nested
        // <0,1,{HouseNumber}> group.
        let fs = SchemeBuilder::all_of(["ZipCode", "Town"])
            .disjoint(["PostOfficeBoxNumber", "Street"])
            .optional("HouseNumber")
            .build()
            .unwrap();
        assert!(fs.admits(&attrs!["ZipCode", "Town", "PostOfficeBoxNumber"]));
        assert!(fs.admits(&attrs!["ZipCode", "Town", "Street"]));
        assert!(fs.admits(&attrs!["ZipCode", "Town", "Street", "HouseNumber"]));
        // A house number with a PO box is admitted by the *scheme* (the
        // existence-based constraint cannot forbid it); ruling it out is the
        // job of an attribute dependency.
        assert!(fs.admits(&attrs![
            "ZipCode",
            "Town",
            "PostOfficeBoxNumber",
            "HouseNumber"
        ]));
        assert!(!fs.admits(&attrs!["ZipCode", "Town"]));
        assert!(!fs.admits(&attrs!["ZipCode", "Town", "PostOfficeBoxNumber", "Street"]));
    }

    #[test]
    fn validation_rejects_bad_cardinalities() {
        assert!(FlexScheme::new(3, 2, vec!["A", "B", "C"]).is_err());
        assert!(FlexScheme::new(1, 4, vec!["A", "B", "C"]).is_err());
        assert!(FlexScheme::new::<Vec<&str>, &str>(0, 0, vec![]).is_err());
    }

    #[test]
    fn validation_rejects_shared_attributes() {
        let nested = FlexScheme::disjoint_union(["A", "B"]).unwrap();
        let err = FlexScheme::new(2, 2, vec![Component::from("A"), Component::Scheme(nested)]);
        assert!(err.is_err());
    }

    #[test]
    fn optional_component_admits_empty() {
        let fs = FlexScheme::optional("HouseNumber");
        assert!(fs.admits(&AttrSet::empty()));
        assert!(fs.admits(&attrs!["HouseNumber"]));
        assert_eq!(fs.dnf().len(), 2);
    }

    #[test]
    fn dnf_len_combinatorial_matches_materialized() {
        let fs = example1_scheme();
        assert_eq!(fs.dnf_len(), fs.dnf().len());

        let nested = FlexScheme::new(
            1,
            2,
            vec![
                Component::Scheme(FlexScheme::disjoint_union(["P", "Q"]).unwrap()),
                Component::from("R"),
                Component::from("S"),
            ],
        )
        .unwrap();
        assert_eq!(nested.dnf_len(), nested.dnf().len());
    }

    #[test]
    fn depth_and_component_count() {
        let fs = example1_scheme();
        assert_eq!(fs.depth(), 2);
        assert_eq!(fs.component_count(), 4 + 2 + 3);
        assert_eq!(FlexScheme::relational(attrs!["A"]).depth(), 1);
    }

    #[test]
    fn display_round_trips_paper_notation() {
        let fs = example1_scheme();
        let s = fs.to_string();
        assert!(s.starts_with("<4, 4, {"));
        assert!(s.contains("<1, 1, {C, D}>"));
        assert!(s.contains("<1, 3, {E, F, G}>"));
    }

    #[test]
    fn builder_some_of_and_attr() {
        let fs = SchemeBuilder::all_of(["id"])
            .attr("name")
            .some_of(["tel", "fax", "email"])
            .build()
            .unwrap();
        assert!(fs.admits(&attrs!["id", "name", "tel"]));
        assert!(fs.admits(&attrs!["id", "name", "tel", "fax", "email"]));
        assert!(!fs.admits(&attrs!["id", "name"]));
        assert!(!fs.admits(&attrs!["id", "tel"]));
    }

    #[test]
    fn admits_rejects_foreign_attributes() {
        let fs = example1_scheme();
        assert!(!fs.admits(&attrs!["A", "B", "C", "E", "Z"]));
    }
}
