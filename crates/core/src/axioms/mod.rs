//! The axiom systems for attribute and functional dependencies (§4).
//!
//! * **ℛ** ([`AxiomSystem::R`]) manages attribute dependencies separately and
//!   consists of the four rules projectivity (A1), additivity (A2),
//!   reflexivity (A3) and left augmentation (A4).  Remarkably, transitivity
//!   is *not* valid for ADs (Theorem 4.1).
//! * **ℰ** ([`AxiomSystem::E`]) captures functional and attribute
//!   dependencies together and consists of subsumption (AF1), combined
//!   transitivity (AF2), projectivity (A1), additivity (A2) and the classical
//!   FD rules reflexivity (F1), augmentation (F2) and transitivity (F3)
//!   (Theorem 4.2).  In ℰ the rules A3 and A4 of ℛ become derivable.
//!
//! This module provides:
//!
//! * fast closure computation and implication tests ([`closure`]),
//! * an explicit rule-application (saturation) engine with derivation traces,
//!   used for explainability and the non-redundancy demonstrations
//!   ([`derive`](mod@derive)),
//! * the two-tuple witness relation of the completeness proof ([`witness`]),
//! * minimal covers for dependency sets ([`cover`]).

pub mod closure;
pub mod cover;
pub mod derive;
pub mod witness;

pub use closure::{attr_closure, func_closure, implies, AdClosure, ClosureIndex};
pub use cover::{is_redundant, non_redundant_cover};
pub use derive::{derive, saturate, Derivation, DerivationStep};
pub use witness::{witness_relation, Witness};

use std::fmt;

/// Which axiom system governs a derivation or closure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AxiomSystem {
    /// ℛ: attribute dependencies alone (rules A1–A4).  Functional
    /// dependencies in the input set are ignored.
    R,
    /// ℰ: functional and attribute dependencies combined
    /// (rules AF1, AF2, A1, A2, F1, F2, F3).
    E,
}

impl AxiomSystem {
    /// The rules belonging to this system.
    pub fn rules(&self) -> &'static [Rule] {
        match self {
            AxiomSystem::R => &[
                Rule::Projectivity,
                Rule::Additivity,
                Rule::ReflexivityAd,
                Rule::LeftAugmentation,
            ],
            AxiomSystem::E => &[
                Rule::Subsumption,
                Rule::CombinedTransitivity,
                Rule::Projectivity,
                Rule::Additivity,
                Rule::ReflexivityFd,
                Rule::AugmentationFd,
                Rule::TransitivityFd,
            ],
        }
    }
}

impl fmt::Display for AxiomSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomSystem::R => write!(f, "R (ADs separately)"),
            AxiomSystem::E => write!(f, "E (FDs + ADs combined)"),
        }
    }
}

/// A single inference rule of ℛ or ℰ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// (A1) `X --attr--> YZ ⊢ X --attr--> Y`.
    Projectivity,
    /// (A2) `{X --attr--> Y, X --attr--> Z} ⊢ X --attr--> YZ`.
    Additivity,
    /// (A3) `∅ ⊢ X --attr--> Y` if `Y ⊆ X`.  (Member of ℛ; in ℰ it is
    /// derivable from F1 and AF1.)
    ReflexivityAd,
    /// (A4) `X --attr--> Y ⊢ XZ --attr--> Y`.  (Member of ℛ; in ℰ it is
    /// derivable.)
    LeftAugmentation,
    /// (AF1) `X --func--> Y ⊢ X --attr--> Y`.
    Subsumption,
    /// (AF2) `{X --func--> Y, Y --attr--> Z} ⊢ X --attr--> Z`.
    CombinedTransitivity,
    /// (F1) `∅ ⊢ X --func--> Y` if `Y ⊆ X`.
    ReflexivityFd,
    /// (F2) `X --func--> Y ⊢ XZ --func--> YZ`.
    AugmentationFd,
    /// (F3) `{X --func--> Y, Y --func--> Z} ⊢ X --func--> Z`.
    TransitivityFd,
    /// Pseudo-rule marking a dependency taken verbatim from the given set Σ.
    Given,
}

impl Rule {
    /// The paper's label for the rule.
    pub fn label(&self) -> &'static str {
        match self {
            Rule::Projectivity => "A1 (projectivity)",
            Rule::Additivity => "A2 (additivity)",
            Rule::ReflexivityAd => "A3 (reflexivity)",
            Rule::LeftAugmentation => "A4 (left augmentation)",
            Rule::Subsumption => "AF1 (subsumption)",
            Rule::CombinedTransitivity => "AF2 (combined transitivity)",
            Rule::ReflexivityFd => "F1 (reflexivity)",
            Rule::AugmentationFd => "F2 (augmentation)",
            Rule::TransitivityFd => "F3 (transitivity)",
            Rule::Given => "given",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_rule_memberships() {
        assert_eq!(AxiomSystem::R.rules().len(), 4);
        assert_eq!(AxiomSystem::E.rules().len(), 7);
        assert!(AxiomSystem::R.rules().contains(&Rule::ReflexivityAd));
        assert!(!AxiomSystem::E.rules().contains(&Rule::ReflexivityAd));
        assert!(AxiomSystem::E.rules().contains(&Rule::CombinedTransitivity));
        assert!(!AxiomSystem::R.rules().contains(&Rule::TransitivityFd));
    }

    #[test]
    fn rule_labels_match_paper_names() {
        assert_eq!(Rule::Projectivity.label(), "A1 (projectivity)");
        assert_eq!(
            Rule::CombinedTransitivity.to_string(),
            "AF2 (combined transitivity)"
        );
        assert!(AxiomSystem::R.to_string().contains("R"));
    }
}
