//! Minimal (non-redundant) covers for dependency sets.
//!
//! A dependency of a set Σ is *redundant* if it is implied by the remaining
//! dependencies; a non-redundant cover removes such members one at a time
//! until none is redundant.  Covers matter operationally: type checking and
//! AD propagation iterate over the declared dependency set, so dropping
//! redundant members makes both cheaper without changing the constrained
//! instances.

use crate::axioms::closure::{implies, ClosureIndex};
use crate::axioms::AxiomSystem;
use crate::dep::DependencySet;

/// Whether the dependency at `index` is implied by the *other* members of
/// `sigma` under `system`.
pub fn is_redundant(sigma: &DependencySet, index: usize, system: AxiomSystem) -> bool {
    let deps: Vec<_> = sigma.iter().cloned().collect();
    if index >= deps.len() {
        return false;
    }
    let target = deps[index].clone();
    let rest: DependencySet = deps
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != index)
        .map(|(_, d)| d.clone())
        .collect();
    implies(&rest, &target, system)
}

/// Computes a non-redundant cover of `sigma` under `system`: repeatedly
/// removes a dependency that is implied by the remaining ones until no such
/// dependency exists.  The result is equivalent to `sigma` (it implies and is
/// implied by it) but contains no redundant member.
pub fn non_redundant_cover(sigma: &DependencySet, system: AxiomSystem) -> DependencySet {
    let mut current = sigma.clone();
    loop {
        let n = current.len();
        let mut removed = false;
        for i in 0..n {
            if is_redundant(&current, i, system) {
                let mut next = DependencySet::new();
                for (j, d) in current.iter().enumerate() {
                    if j != i {
                        next.add(d.clone());
                    }
                }
                current = next;
                removed = true;
                break;
            }
        }
        if !removed {
            return current;
        }
    }
}

/// Whether two dependency sets are equivalent under `system`: each implies
/// every member of the other.
pub fn equivalent(a: &DependencySet, b: &DependencySet, system: AxiomSystem) -> bool {
    let index_a = ClosureIndex::new(a);
    let index_b = ClosureIndex::new(b);
    b.iter().all(|d| index_a.implies(d, system)) && a.iter().all(|d| index_b.implies(d, system))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::dep::{Ad, Dependency, Fd};

    #[test]
    fn trivial_and_projected_ads_are_redundant() {
        let sigma = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["B", "C"])),
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])), // projection of the first
            Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["A"])), // trivial
        ]);
        assert!(is_redundant(&sigma, 1, AxiomSystem::R));
        assert!(is_redundant(&sigma, 2, AxiomSystem::R));
        assert!(!is_redundant(&sigma, 0, AxiomSystem::R));
        let cover = non_redundant_cover(&sigma, AxiomSystem::R);
        assert_eq!(cover.len(), 1);
        assert!(equivalent(&sigma, &cover, AxiomSystem::R));
    }

    #[test]
    fn cover_respects_system_differences() {
        // Under ℰ the AD A→C is implied by the FD A→B plus the AD B→C (AF2);
        // under ℛ it is not, so it must survive in the ℛ-cover.
        let sigma = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
        ]);
        let cover_e = non_redundant_cover(&sigma, AxiomSystem::E);
        assert_eq!(cover_e.len(), 2);
        assert!(equivalent(&sigma, &cover_e, AxiomSystem::E));

        let cover_r = non_redundant_cover(&sigma, AxiomSystem::R);
        // ℛ ignores FDs, so nothing implies A --attr--> C there; all three
        // members survive (the FD is inert but not removable by ℛ reasoning).
        assert_eq!(cover_r.len(), 3);
    }

    #[test]
    fn cover_of_nonredundant_set_is_identity() {
        let sigma = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["C"], attrs!["D"])),
        ]);
        let cover = non_redundant_cover(&sigma, AxiomSystem::E);
        assert_eq!(cover, sigma);
    }

    #[test]
    fn is_redundant_out_of_range() {
        let sigma = DependencySet::new();
        assert!(!is_redundant(&sigma, 3, AxiomSystem::R));
    }

    #[test]
    fn equivalence_is_not_syntactic() {
        let a =
            DependencySet::from_deps(vec![Dependency::Ad(Ad::new(attrs!["A"], attrs!["B", "C"]))]);
        let b = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
        ]);
        assert!(equivalent(&a, &b, AxiomSystem::R));
        let c = DependencySet::from_deps(vec![Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"]))]);
        assert!(!equivalent(&a, &c, AxiomSystem::R));
    }
}
