//! Closures and implication tests for ℛ and ℰ.
//!
//! For functional dependencies the classical closure `X⁺func` is computed by
//! the Beeri–Bernstein counter algorithm: every FD keeps a counter of
//! left-hand-side attributes not yet in the closure, and an index from
//! attribute id to the FDs mentioning it on the left dispatches each newly
//! added attribute in O(1).  The whole closure costs O(‖Σ‖) — the total size
//! of the dependency set — instead of the O(|Σ|²) of naive fixpoint
//! iteration.  (The ADs of Σ never contribute to an FD derivation — no rule
//! of ℰ produces an FD from an AD.)
//!
//! For attribute dependencies the decisive observation (used in the
//! completeness proof, appendix) is that ADs do **not** chain: transitivity
//! is not valid for them.  Consequently
//!
//! * under ℛ: `X⁺attr = X ∪ ⋃ { Z | (W --attr--> Z) ∈ Σ, W ⊆ X }`,
//! * under ℰ: `X⁺attr = X⁺func ∪ ⋃ { Z | (W --attr--> Z) ∈ Σ, W ⊆ X⁺func }`
//!   (a given AD can be reached through FD reasoning via AF2, but what it
//!   determines existentially can not be chained any further).
//!
//! The same counter scheme applies: an AD fires exactly when its counter of
//! missing left-hand-side attributes reaches zero, which the LHS-indexed
//! table detects without re-scanning Σ per candidate.
//!
//! `Σ ⊢ X --attr--> Y` iff `Y ⊆ X⁺attr`, and `Σ ⊢ X --func--> Y` iff
//! `Y ⊆ X⁺func`.
//!
//! Callers computing many closures against one Σ (the implication tests of
//! E5/E6, subtype derivation, cover minimization) should build a
//! [`ClosureIndex`] once and reuse it; the free functions build a throwaway
//! index per call.

use std::collections::HashMap;

use crate::attr::AttrSet;
use crate::axioms::AxiomSystem;
use crate::dep::{Dependency, DependencySet};

/// A reusable LHS-indexed view of a dependency set for linear-time closures.
///
/// Construction is O(‖Σ‖); each closure query is O(‖Σ‖ + |X⁺|) with small
/// constants (bitset words and dense counters, no string comparisons).
#[derive(Clone, Debug)]
pub struct ClosureIndex {
    /// Per FD: left-hand-side size (the counter start value) and both sides.
    fd_lhs_len: Vec<u32>,
    fd_rhs: Vec<AttrSet>,
    /// Attribute id → indices into the FD tables of FDs whose LHS contains it.
    fd_by_attr: HashMap<u32, Vec<u32>>,
    /// Per AD (abbreviated view, including explicit ADs): LHS size and RHS.
    ad_lhs_len: Vec<u32>,
    ad_rhs: Vec<AttrSet>,
    /// Attribute id → indices into the AD tables of ADs whose LHS contains it.
    ad_by_attr: HashMap<u32, Vec<u32>>,
}

impl ClosureIndex {
    /// Builds the index for `sigma`.
    pub fn new(sigma: &DependencySet) -> Self {
        let mut idx = ClosureIndex {
            fd_lhs_len: Vec::new(),
            fd_rhs: Vec::new(),
            fd_by_attr: HashMap::new(),
            ad_lhs_len: Vec::new(),
            ad_rhs: Vec::new(),
            ad_by_attr: HashMap::new(),
        };
        for fd in sigma.fds() {
            let i = idx.fd_lhs_len.len() as u32;
            idx.fd_lhs_len.push(fd.lhs().len() as u32);
            idx.fd_rhs.push(fd.rhs().clone());
            for id in fd.lhs().ids() {
                idx.fd_by_attr.entry(id).or_default().push(i);
            }
        }
        for ad in sigma.ads() {
            let j = idx.ad_lhs_len.len() as u32;
            idx.ad_lhs_len.push(ad.lhs().len() as u32);
            idx.ad_rhs.push(ad.rhs().clone());
            for id in ad.lhs().ids() {
                idx.ad_by_attr.entry(id).or_default().push(j);
            }
        }
        idx
    }

    /// The functional closure `X⁺func` of `x` (Beeri–Bernstein).
    pub fn func_closure(&self, x: &AttrSet) -> AttrSet {
        let mut closure = x.clone();
        let mut counters = self.fd_lhs_len.clone();
        let mut queue: Vec<u32> = x.ids().collect();
        // FDs with an empty left-hand side fire unconditionally.
        for (i, &c) in counters.iter().enumerate() {
            if c == 0 {
                for id in self.fd_rhs[i].ids() {
                    if closure.insert_id(id) {
                        queue.push(id);
                    }
                }
            }
        }
        while let Some(a) = queue.pop() {
            let Some(fds) = self.fd_by_attr.get(&a) else {
                continue;
            };
            for &i in fds {
                counters[i as usize] -= 1;
                if counters[i as usize] == 0 {
                    for id in self.fd_rhs[i as usize].ids() {
                        if closure.insert_id(id) {
                            queue.push(id);
                        }
                    }
                }
            }
        }
        closure
    }

    /// The attribute closure `X⁺attr` of `x` under the given axiom system.
    pub fn attr_closure(&self, x: &AttrSet, system: AxiomSystem) -> AttrSet {
        let base = match system {
            AxiomSystem::R => x.clone(),
            AxiomSystem::E => self.func_closure(x),
        };
        let mut closure = base.clone();
        let mut counters = self.ad_lhs_len.clone();
        for (j, &c) in counters.iter().enumerate() {
            if c == 0 {
                closure.extend_with(&self.ad_rhs[j]);
            }
        }
        // ADs do not chain, so one pass over the base suffices: an AD fires
        // iff its whole LHS lies in `base`, i.e. its counter reaches zero.
        for a in base.ids() {
            let Some(ads) = self.ad_by_attr.get(&a) else {
                continue;
            };
            for &j in ads {
                counters[j as usize] -= 1;
                if counters[j as usize] == 0 {
                    closure.extend_with(&self.ad_rhs[j as usize]);
                }
            }
        }
        closure
    }

    /// Whether the indexed Σ implies `dep` under the given axiom system.
    ///
    /// Under ℛ only AD conclusions are meaningful; asking whether an FD is
    /// implied under ℛ returns `false` unless it is syntactically trivial,
    /// since ℛ has no FD rules at all.
    pub fn implies(&self, dep: &Dependency, system: AxiomSystem) -> bool {
        match (system, dep) {
            (_, Dependency::Ad(ad)) => ad.rhs().is_subset(&self.attr_closure(ad.lhs(), system)),
            // An explicit AD is judged through its abbreviation (the explicit
            // variant structure carries no additional *implication* content).
            (_, Dependency::Ead(ead)) => ead.rhs().is_subset(&self.attr_closure(ead.lhs(), system)),
            (AxiomSystem::E, Dependency::Fd(fd)) => {
                fd.rhs().is_subset(&self.func_closure(fd.lhs()))
            }
            (AxiomSystem::R, Dependency::Fd(_)) => false,
        }
    }
}

/// The functional closure `X⁺func` of `x` under the FDs of `sigma`.
pub fn func_closure(x: &AttrSet, sigma: &DependencySet) -> AttrSet {
    ClosureIndex::new(sigma).func_closure(x)
}

/// The attribute closure `X⁺attr` of `x` under `sigma`, governed by the given
/// axiom system.
pub fn attr_closure(x: &AttrSet, sigma: &DependencySet, system: AxiomSystem) -> AttrSet {
    ClosureIndex::new(sigma).attr_closure(x, system)
}

/// Whether `sigma` implies `dep` under the given axiom system.
///
/// Under ℛ only AD conclusions are meaningful; asking whether an FD is
/// implied under ℛ returns `false` unless it is syntactically trivial, since
/// ℛ has no FD rules at all.
pub fn implies(sigma: &DependencySet, dep: &Dependency, system: AxiomSystem) -> bool {
    ClosureIndex::new(sigma).implies(dep, system)
}

/// A bundled closure computation for one determining set `X`: both closures
/// plus the originating parameters, convenient for callers that need the
/// split `X⁺func ⊆ X⁺attr` (e.g. the witness construction and the subtype
/// machinery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdClosure {
    /// The determining attribute set the closures were computed for.
    pub x: AttrSet,
    /// `X⁺func` (equals `x` itself under system ℛ).
    pub func: AttrSet,
    /// `X⁺attr`.
    pub attr: AttrSet,
    /// The governing axiom system.
    pub system: AxiomSystem,
}

impl AdClosure {
    /// Computes both closures of `x` under `sigma`.
    pub fn compute(x: &AttrSet, sigma: &DependencySet, system: AxiomSystem) -> Self {
        let index = ClosureIndex::new(sigma);
        let func = match system {
            AxiomSystem::R => x.clone(),
            AxiomSystem::E => index.func_closure(x),
        };
        let attr = index.attr_closure(x, system);
        AdClosure {
            x: x.clone(),
            func,
            attr,
            system,
        }
    }

    /// Whether `X --attr--> y` follows.
    pub fn determines_existence_of(&self, y: &AttrSet) -> bool {
        y.is_subset(&self.attr)
    }

    /// Whether `X --func--> y` follows.
    pub fn determines_value_of(&self, y: &AttrSet) -> bool {
        y.is_subset(&self.func)
    }
}

/// The pre-bitset reference algorithms, kept as the differential-testing
/// oracle: naive fixpoint iteration for `X⁺func` and a full Σ re-scan for
/// `X⁺attr`, exactly as the original implementation computed them.
#[cfg(test)]
pub mod naive {
    use super::*;

    /// `X⁺func` by naive fixpoint iteration (the oracle).
    pub fn func_closure(x: &AttrSet, sigma: &DependencySet) -> AttrSet {
        let mut closure = x.clone();
        let fds: Vec<_> = sigma.fds().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &fds {
                if fd.lhs().is_subset(&closure) && !fd.rhs().is_subset(&closure) {
                    closure.extend_with(fd.rhs());
                    changed = true;
                }
            }
        }
        closure
    }

    /// `X⁺attr` by re-scanning every AD of Σ (the oracle).
    pub fn attr_closure(x: &AttrSet, sigma: &DependencySet, system: AxiomSystem) -> AttrSet {
        let base = match system {
            AxiomSystem::R => x.clone(),
            AxiomSystem::E => func_closure(x, sigma),
        };
        let mut closure = base.clone();
        for ad in sigma.ads() {
            if ad.lhs().is_subset(&base) {
                closure.extend_with(ad.rhs());
            }
        }
        closure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::dep::{Ad, Fd};

    fn sigma() -> DependencySet {
        // A --func--> B,   B --attr--> C,   {A,B} --attr--> D,   E --attr--> F
        DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["D"])),
            Dependency::Ad(Ad::new(attrs!["E"], attrs!["F"])),
        ])
    }

    #[test]
    fn func_closure_ignores_ads() {
        let c = func_closure(&attrs!["A"], &sigma());
        assert_eq!(c, attrs!["A", "B"], "only the FD A→B may fire");
    }

    #[test]
    fn attr_closure_under_r_has_no_fd_reasoning() {
        // Under ℛ the FD A→B is ignored entirely, so from {A} alone no AD
        // with lhs B or {A,B} can fire.
        let c = attr_closure(&attrs!["A"], &sigma(), AxiomSystem::R);
        assert_eq!(c, attrs!["A"]);
        // From {A,B} both B→C and AB→D fire (left augmentation + projection).
        let c = attr_closure(&attrs!["A", "B"], &sigma(), AxiomSystem::R);
        assert_eq!(c, attrs!["A", "B", "C", "D"]);
    }

    #[test]
    fn attr_closure_under_e_uses_combined_transitivity() {
        // A --func--> B and B --attr--> C give A --attr--> C by AF2; the FD
        // also brings B into X⁺func so AB --attr--> D fires as well.
        let c = attr_closure(&attrs!["A"], &sigma(), AxiomSystem::E);
        assert_eq!(c, attrs!["A", "B", "C", "D"]);
    }

    #[test]
    fn ads_do_not_chain() {
        // B --attr--> C and (hypothetically) C --attr--> G must not chain:
        // existence of C says nothing about C's value.
        let sigma = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["C"], attrs!["G"])),
        ]);
        let c = attr_closure(&attrs!["B"], &sigma, AxiomSystem::E);
        assert_eq!(c, attrs!["B", "C"], "no AD transitivity");
    }

    #[test]
    fn empty_lhs_dependencies_always_fire() {
        let sigma = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs![], attrs!["K"])),
            Dependency::Ad(Ad::new(attrs![], attrs!["L"])),
            Dependency::Fd(Fd::new(attrs!["K"], attrs!["M"])),
        ]);
        assert_eq!(func_closure(&attrs![], &sigma), attrs!["K", "M"]);
        assert_eq!(
            attr_closure(&attrs![], &sigma, AxiomSystem::E),
            attrs!["K", "L", "M"]
        );
        assert_eq!(attr_closure(&attrs![], &sigma, AxiomSystem::R), attrs!["L"]);
    }

    #[test]
    fn implies_ad_and_fd() {
        let s = sigma();
        assert!(implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
            AxiomSystem::E
        ));
        assert!(!implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
            AxiomSystem::R
        ));
        assert!(implies(
            &s,
            &Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            AxiomSystem::E
        ));
        // FDs are never implied under ℛ.
        assert!(!implies(
            &s,
            &Dependency::Fd(Fd::new(attrs!["A"], attrs!["A"])),
            AxiomSystem::R
        ));
        // The subsumption rule AF1: an FD implies the corresponding AD.
        assert!(implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            AxiomSystem::E
        ));
    }

    #[test]
    fn reflexivity_is_built_in() {
        let empty = DependencySet::new();
        assert!(implies(
            &empty,
            &Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["A"])),
            AxiomSystem::R
        ));
        assert!(implies(
            &empty,
            &Dependency::Fd(Fd::new(attrs!["A", "B"], attrs!["B"])),
            AxiomSystem::E
        ));
    }

    #[test]
    fn left_augmentation_is_built_in() {
        let s = DependencySet::from_deps(vec![Dependency::Ad(Ad::new(
            attrs!["jobtype"],
            attrs!["typing-speed"],
        ))]);
        // Example 4: augmenting the left side with salary keeps the AD
        // derivable.
        assert!(implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["jobtype", "salary"], attrs!["typing-speed"])),
            AxiomSystem::R
        ));
    }

    #[test]
    fn closure_bundle() {
        let c = AdClosure::compute(&attrs!["A"], &sigma(), AxiomSystem::E);
        assert_eq!(c.func, attrs!["A", "B"]);
        assert_eq!(c.attr, attrs!["A", "B", "C", "D"]);
        assert!(c.determines_existence_of(&attrs!["C", "D"]));
        assert!(!c.determines_value_of(&attrs!["C"]));
        assert!(c.determines_value_of(&attrs!["B"]));
        assert!(c.func.is_subset(&c.attr), "X⁺func ⊆ X⁺attr (AF1)");
    }

    #[test]
    fn fd_closure_chains_transitively() {
        let s = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Fd(Fd::new(attrs!["B"], attrs!["C"])),
            Dependency::Fd(Fd::new(attrs!["C", "A"], attrs!["D"])),
        ]);
        assert_eq!(func_closure(&attrs!["A"], &s), attrs!["A", "B", "C", "D"]);
    }

    #[test]
    fn index_reuse_matches_free_functions() {
        let s = sigma();
        let index = ClosureIndex::new(&s);
        for x in attrs!["A", "B", "E"].power_set() {
            assert_eq!(index.func_closure(&x), func_closure(&x, &s));
            for system in [AxiomSystem::R, AxiomSystem::E] {
                assert_eq!(index.attr_closure(&x, system), attr_closure(&x, &s, system));
            }
        }
    }

    #[test]
    fn linear_closures_agree_with_naive_oracle_on_random_sigma() {
        // Differential test over the workload generator: the counter-based
        // linear closures must agree with the original fixpoint/re-scan
        // algorithms on every subset of the universe, for a spread of
        // dependency-set shapes (pure ADs, mixed, FD-heavy, wide sides).
        use flexrel_workload::{random_dependency_set, DepGenConfig};
        let configs = [
            DepGenConfig {
                universe: 6,
                count: 8,
                fd_fraction: 0.0,
                seed: 11,
                ..Default::default()
            },
            DepGenConfig {
                universe: 8,
                count: 16,
                fd_fraction: 0.5,
                seed: 12,
                ..Default::default()
            },
            DepGenConfig {
                universe: 10,
                count: 32,
                fd_fraction: 0.9,
                max_lhs: 4,
                max_rhs: 4,
                seed: 13,
            },
            DepGenConfig {
                universe: 12,
                count: 48,
                fd_fraction: 0.3,
                max_lhs: 3,
                max_rhs: 5,
                seed: 14,
            },
        ];
        for cfg in configs {
            // The dev-dependency cycle gives `flexrel_workload` a separate
            // build of this crate, so its dependency types are distinct from
            // ours; rebuild each generated dependency via attribute names.
            let mut s = DependencySet::new();
            for d in random_dependency_set(&cfg).iter() {
                let lhs = AttrSet::from_names(d.lhs().iter().map(|a| a.name().to_string()));
                let rhs = AttrSet::from_names(d.rhs().iter().map(|a| a.name().to_string()));
                if d.is_fd() {
                    s.add(crate::dep::Fd::new(lhs, rhs));
                } else {
                    s.add(crate::dep::Ad::new(lhs, rhs));
                }
            }
            let index = ClosureIndex::new(&s);
            // Same naming convention as `flexrel_workload::depgen::universe`
            // (rebuilt locally because of the dual-build type split above).
            let universe =
                AttrSet::from_names((0..cfg.universe.min(10)).map(|i| format!("A{}", i)));
            for x in universe.power_set() {
                assert_eq!(
                    index.func_closure(&x),
                    naive::func_closure(&x, &s),
                    "func closure mismatch: x = {}, sigma = {}",
                    x,
                    s
                );
                for system in [AxiomSystem::R, AxiomSystem::E] {
                    assert_eq!(
                        index.attr_closure(&x, system),
                        naive::attr_closure(&x, &s, system),
                        "attr closure mismatch: x = {}, system = {:?}, sigma = {}",
                        x,
                        system,
                        s
                    );
                }
            }
        }
    }

    #[test]
    fn linear_closures_agree_with_naive_oracle_on_fixed_sigma() {
        let s = sigma();
        let universe = attrs!["A", "B", "C", "D", "E", "F"];
        for x in universe.power_set() {
            assert_eq!(func_closure(&x, &s), naive::func_closure(&x, &s));
            for system in [AxiomSystem::R, AxiomSystem::E] {
                assert_eq!(
                    attr_closure(&x, &s, system),
                    naive::attr_closure(&x, &s, system),
                    "x = {}, system = {:?}",
                    x,
                    system
                );
            }
        }
    }
}
