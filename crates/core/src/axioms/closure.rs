//! Closures and implication tests for ℛ and ℰ.
//!
//! For functional dependencies the classical closure `X⁺func` is computed by
//! fixpoint iteration over the FDs of Σ (the ADs of Σ never contribute to an
//! FD derivation — no rule of ℰ produces an FD from an AD).
//!
//! For attribute dependencies the decisive observation (used in the
//! completeness proof, appendix) is that ADs do **not** chain: transitivity
//! is not valid for them.  Consequently
//!
//! * under ℛ: `X⁺attr = X ∪ ⋃ { Z | (W --attr--> Z) ∈ Σ, W ⊆ X }`,
//! * under ℰ: `X⁺attr = X⁺func ∪ ⋃ { Z | (W --attr--> Z) ∈ Σ, W ⊆ X⁺func }`
//!   (a given AD can be reached through FD reasoning via AF2, but what it
//!   determines existentially can not be chained any further).
//!
//! `Σ ⊢ X --attr--> Y` iff `Y ⊆ X⁺attr`, and `Σ ⊢ X --func--> Y` iff
//! `Y ⊆ X⁺func`.

use crate::attr::AttrSet;
use crate::axioms::AxiomSystem;
use crate::dep::{Dependency, DependencySet};

/// The functional closure `X⁺func` of `x` under the FDs of `sigma`.
pub fn func_closure(x: &AttrSet, sigma: &DependencySet) -> AttrSet {
    let mut closure = x.clone();
    let fds: Vec<_> = sigma.fds().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in &fds {
            if fd.lhs().is_subset(&closure) && !fd.rhs().is_subset(&closure) {
                closure.extend_with(fd.rhs());
                changed = true;
            }
        }
    }
    closure
}

/// The attribute closure `X⁺attr` of `x` under `sigma`, governed by the given
/// axiom system.
pub fn attr_closure(x: &AttrSet, sigma: &DependencySet, system: AxiomSystem) -> AttrSet {
    let base = match system {
        AxiomSystem::R => x.clone(),
        AxiomSystem::E => func_closure(x, sigma),
    };
    let mut closure = base.clone();
    for ad in sigma.ads() {
        if ad.lhs().is_subset(&base) {
            closure.extend_with(ad.rhs());
        }
    }
    closure
}

/// Whether `sigma` implies `dep` under the given axiom system.
///
/// Under ℛ only AD conclusions are meaningful; asking whether an FD is
/// implied under ℛ returns `false` unless it is syntactically trivial, since
/// ℛ has no FD rules at all.
pub fn implies(sigma: &DependencySet, dep: &Dependency, system: AxiomSystem) -> bool {
    match (system, dep) {
        (_, Dependency::Ad(ad)) => ad.rhs().is_subset(&attr_closure(ad.lhs(), sigma, system)),
        // An explicit AD is judged through its abbreviation (the explicit
        // variant structure carries no additional *implication* content).
        (_, Dependency::Ead(ead)) => ead.rhs().is_subset(&attr_closure(ead.lhs(), sigma, system)),
        (AxiomSystem::E, Dependency::Fd(fd)) => fd.rhs().is_subset(&func_closure(fd.lhs(), sigma)),
        (AxiomSystem::R, Dependency::Fd(_)) => false,
    }
}

/// A bundled closure computation for one determining set `X`: both closures
/// plus the originating parameters, convenient for callers that need the
/// split `X⁺func ⊆ X⁺attr` (e.g. the witness construction and the subtype
/// machinery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdClosure {
    /// The determining attribute set the closures were computed for.
    pub x: AttrSet,
    /// `X⁺func` (equals `x` itself under system ℛ).
    pub func: AttrSet,
    /// `X⁺attr`.
    pub attr: AttrSet,
    /// The governing axiom system.
    pub system: AxiomSystem,
}

impl AdClosure {
    /// Computes both closures of `x` under `sigma`.
    pub fn compute(x: &AttrSet, sigma: &DependencySet, system: AxiomSystem) -> Self {
        let func = match system {
            AxiomSystem::R => x.clone(),
            AxiomSystem::E => func_closure(x, sigma),
        };
        let attr = attr_closure(x, sigma, system);
        AdClosure {
            x: x.clone(),
            func,
            attr,
            system,
        }
    }

    /// Whether `X --attr--> y` follows.
    pub fn determines_existence_of(&self, y: &AttrSet) -> bool {
        y.is_subset(&self.attr)
    }

    /// Whether `X --func--> y` follows.
    pub fn determines_value_of(&self, y: &AttrSet) -> bool {
        y.is_subset(&self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::dep::{Ad, Fd};

    fn sigma() -> DependencySet {
        // A --func--> B,   B --attr--> C,   {A,B} --attr--> D,   E --attr--> F
        DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["D"])),
            Dependency::Ad(Ad::new(attrs!["E"], attrs!["F"])),
        ])
    }

    #[test]
    fn func_closure_ignores_ads() {
        let c = func_closure(&attrs!["A"], &sigma());
        assert_eq!(c, attrs!["A", "B"], "only the FD A→B may fire");
    }

    #[test]
    fn attr_closure_under_r_has_no_fd_reasoning() {
        // Under ℛ the FD A→B is ignored entirely, so from {A} alone no AD
        // with lhs B or {A,B} can fire.
        let c = attr_closure(&attrs!["A"], &sigma(), AxiomSystem::R);
        assert_eq!(c, attrs!["A"]);
        // From {A,B} both B→C and AB→D fire (left augmentation + projection).
        let c = attr_closure(&attrs!["A", "B"], &sigma(), AxiomSystem::R);
        assert_eq!(c, attrs!["A", "B", "C", "D"]);
    }

    #[test]
    fn attr_closure_under_e_uses_combined_transitivity() {
        // A --func--> B and B --attr--> C give A --attr--> C by AF2; the FD
        // also brings B into X⁺func so AB --attr--> D fires as well.
        let c = attr_closure(&attrs!["A"], &sigma(), AxiomSystem::E);
        assert_eq!(c, attrs!["A", "B", "C", "D"]);
    }

    #[test]
    fn ads_do_not_chain() {
        // B --attr--> C and (hypothetically) C --attr--> G must not chain:
        // existence of C says nothing about C's value.
        let sigma = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["C"], attrs!["G"])),
        ]);
        let c = attr_closure(&attrs!["B"], &sigma, AxiomSystem::E);
        assert_eq!(c, attrs!["B", "C"], "no AD transitivity");
    }

    #[test]
    fn implies_ad_and_fd() {
        let s = sigma();
        assert!(implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
            AxiomSystem::E
        ));
        assert!(!implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
            AxiomSystem::R
        ));
        assert!(implies(
            &s,
            &Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            AxiomSystem::E
        ));
        // FDs are never implied under ℛ.
        assert!(!implies(
            &s,
            &Dependency::Fd(Fd::new(attrs!["A"], attrs!["A"])),
            AxiomSystem::R
        ));
        // The subsumption rule AF1: an FD implies the corresponding AD.
        assert!(implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            AxiomSystem::E
        ));
    }

    #[test]
    fn reflexivity_is_built_in() {
        let empty = DependencySet::new();
        assert!(implies(
            &empty,
            &Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["A"])),
            AxiomSystem::R
        ));
        assert!(implies(
            &empty,
            &Dependency::Fd(Fd::new(attrs!["A", "B"], attrs!["B"])),
            AxiomSystem::E
        ));
    }

    #[test]
    fn left_augmentation_is_built_in() {
        let s = DependencySet::from_deps(vec![Dependency::Ad(Ad::new(
            attrs!["jobtype"],
            attrs!["typing-speed"],
        ))]);
        // Example 4: augmenting the left side with salary keeps the AD
        // derivable.
        assert!(implies(
            &s,
            &Dependency::Ad(Ad::new(attrs!["jobtype", "salary"], attrs!["typing-speed"])),
            AxiomSystem::R
        ));
    }

    #[test]
    fn closure_bundle() {
        let c = AdClosure::compute(&attrs!["A"], &sigma(), AxiomSystem::E);
        assert_eq!(c.func, attrs!["A", "B"]);
        assert_eq!(c.attr, attrs!["A", "B", "C", "D"]);
        assert!(c.determines_existence_of(&attrs!["C", "D"]));
        assert!(!c.determines_value_of(&attrs!["C"]));
        assert!(c.determines_value_of(&attrs!["B"]));
        assert!(c.func.is_subset(&c.attr), "X⁺func ⊆ X⁺attr (AF1)");
    }

    #[test]
    fn fd_closure_chains_transitively() {
        let s = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Fd(Fd::new(attrs!["B"], attrs!["C"])),
            Dependency::Fd(Fd::new(attrs!["C", "A"], attrs!["D"])),
        ]);
        assert_eq!(func_closure(&attrs!["A"], &s), attrs!["A", "B", "C", "D"]);
    }
}
