//! The two-tuple witness relation from the completeness proof (appendix).
//!
//! For a dependency set `AF`, an attribute universe `𝔘` and a determining
//! set `X`, the proof constructs the flexible relation with exactly two
//! tuples
//!
//! ```text
//!        attributes of X⁺func | attributes of X⁺attr − X⁺func | attributes of 𝔘 − X⁺attr
//!  t1 :        1 1 … 1        |          1 1 … 1              |        1 1 … 1
//!  t2 :        1 1 … 1        |          0 0 … 0              |        (absent)
//! ```
//!
//! This relation satisfies every dependency in `AF⁺` but violates every
//! `X --attr--> Y` with `Y ⊄ X⁺attr` and every `X --func--> Y` with
//! `Y ⊄ X⁺func` — it is the counterexample that makes the axiom systems
//! complete.  Exposing it as a value lets tests and benchmarks use it as an
//! executable completeness oracle.

use crate::attr::AttrSet;
use crate::axioms::closure::ClosureIndex;
use crate::axioms::AxiomSystem;
use crate::dep::{Dependency, DependencySet};
use crate::error::{CoreError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// The witness relation for a determining set `X` under a dependency set.
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// The determining set the witness was built for.
    pub x: AttrSet,
    /// `X⁺func` under the governing system (equals `x` under ℛ).
    pub func_closure: AttrSet,
    /// `X⁺attr` under the governing system.
    pub attr_closure: AttrSet,
    /// The full tuple `t1` (defined on all of `𝔘`, all values 1).
    pub t1: Tuple,
    /// The partial tuple `t2` (defined on `X⁺attr`; 1 on `X⁺func`, 0
    /// elsewhere).
    pub t2: Tuple,
    /// The governing axiom system.
    pub system: AxiomSystem,
}

impl Witness {
    /// The two tuples as an instance.
    pub fn tuples(&self) -> Vec<Tuple> {
        vec![self.t1.clone(), self.t2.clone()]
    }

    /// Whether the witness instance satisfies the given dependency.
    pub fn satisfies(&self, dep: &Dependency) -> bool {
        dep.satisfied_by(&[self.t1.clone(), self.t2.clone()])
    }

    /// Checks the two guarantees of the completeness proof against a
    /// dependency set: every implied dependency over the universe holds on
    /// the witness, and the given non-implied target is violated.
    pub fn check_against(&self, sigma: &DependencySet, non_implied: &Dependency) -> Result<()> {
        if crate::axioms::closure::implies(sigma, non_implied, self.system) {
            return Err(CoreError::Invalid(format!(
                "{} is implied; the witness argument does not apply",
                non_implied
            )));
        }
        if self.satisfies(non_implied) {
            return Err(CoreError::Invalid(format!(
                "witness fails to violate the non-implied dependency {}",
                non_implied
            )));
        }
        for dep in sigma.iter() {
            if !self.satisfies(dep) {
                return Err(CoreError::Invalid(format!(
                    "witness violates the given dependency {}",
                    dep
                )));
            }
        }
        Ok(())
    }
}

/// Builds the witness relation for determining set `x` over `universe` under
/// `sigma`, governed by `system`.
///
/// `universe` must contain `x` and every attribute mentioned in `sigma`.
pub fn witness_relation(
    sigma: &DependencySet,
    x: &AttrSet,
    universe: &AttrSet,
    system: AxiomSystem,
) -> Result<Witness> {
    if !x.is_subset(universe) || !sigma.attrs().is_subset(universe) {
        return Err(CoreError::Invalid(
            "the universe must contain X and all attributes of the dependency set".into(),
        ));
    }
    let index = ClosureIndex::new(sigma);
    let func = match system {
        AxiomSystem::R => x.clone(),
        AxiomSystem::E => index.func_closure(x),
    };
    let attr = index.attr_closure(x, system);

    let t1: Tuple = universe
        .iter()
        .map(|a| (a.clone(), Value::Int(1)))
        .collect();
    let t2: Tuple = attr
        .iter()
        .map(|a| {
            let v = if func.contains(&a) {
                Value::Int(1)
            } else {
                Value::Int(0)
            };
            (a.clone(), v)
        })
        .collect();

    Ok(Witness {
        x: x.clone(),
        func_closure: func,
        attr_closure: attr,
        t1,
        t2,
        system,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::axioms::closure::implies;
    use crate::dep::{Ad, Fd};

    fn sigma() -> DependencySet {
        DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["D"], attrs!["E"])),
        ])
    }

    fn universe() -> AttrSet {
        attrs!["A", "B", "C", "D", "E", "F"]
    }

    #[test]
    fn witness_shape_matches_appendix() {
        let w = witness_relation(&sigma(), &attrs!["A"], &universe(), AxiomSystem::E).unwrap();
        assert_eq!(w.func_closure, attrs!["A", "B"]);
        assert_eq!(w.attr_closure, attrs!["A", "B", "C"]);
        assert_eq!(w.t1.attrs(), universe());
        assert_eq!(w.t2.attrs(), attrs!["A", "B", "C"]);
        assert_eq!(w.t2.get_name("A"), Some(&Value::Int(1)));
        assert_eq!(w.t2.get_name("B"), Some(&Value::Int(1)));
        assert_eq!(w.t2.get_name("C"), Some(&Value::Int(0)));
    }

    #[test]
    fn witness_satisfies_all_given_dependencies() {
        // Under ℰ the witness satisfies every given dependency; under ℛ the
        // theorem speaks about AD-only sets, so only the AD members are
        // checked there.
        let s = sigma();
        for x in universe().power_set() {
            let w = witness_relation(&s, &x, &universe(), AxiomSystem::E).unwrap();
            for dep in s.iter() {
                assert!(
                    w.satisfies(dep),
                    "witness for X={} under E must satisfy {}",
                    x,
                    dep
                );
            }
            let ads_only = s.only_ads();
            let w = witness_relation(&ads_only, &x, &universe(), AxiomSystem::R).unwrap();
            for dep in ads_only.iter() {
                assert!(
                    w.satisfies(dep),
                    "witness for X={} under R must satisfy {}",
                    x,
                    dep
                );
            }
        }
    }

    #[test]
    fn witness_violates_every_non_implied_dependency_over_x() {
        // Completeness: for any X and any Y ⊄ X⁺attr the witness violates
        // X --attr--> Y (and analogously for FDs), while satisfying
        // everything implied.
        let s = sigma();
        let u = universe();
        for x in u.power_set() {
            let w = witness_relation(&s, &x, &u, AxiomSystem::E).unwrap();
            for y in u.power_set() {
                let ad = Dependency::Ad(Ad::new(x.clone(), y.clone()));
                let fd = Dependency::Fd(Fd::new(x.clone(), y.clone()));
                if !implies(&s, &ad, AxiomSystem::E) {
                    assert!(!w.satisfies(&ad), "X={} should violate {}", x, ad);
                } else {
                    assert!(w.satisfies(&ad), "X={} should satisfy {}", x, ad);
                }
                if !implies(&s, &fd, AxiomSystem::E) {
                    assert!(!w.satisfies(&fd), "X={} should violate {}", x, fd);
                } else {
                    assert!(w.satisfies(&fd), "X={} should satisfy {}", x, fd);
                }
            }
        }
    }

    #[test]
    fn soundness_every_implied_dependency_holds_on_witnesses() {
        // Soundness spot check: a dependency implied by Σ holds on every
        // witness relation we can construct (they all satisfy Σ).
        let s = sigma();
        let u = universe();
        let implied = Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"]));
        assert!(implies(&s, &implied, AxiomSystem::E));
        for x in u.power_set() {
            let w = witness_relation(&s, &x, &u, AxiomSystem::E).unwrap();
            assert!(w.satisfies(&implied));
        }
    }

    #[test]
    fn check_against_accepts_valid_counterexample() {
        let s = sigma();
        let target = Dependency::Ad(Ad::new(attrs!["A"], attrs!["E"]));
        let w = witness_relation(&s, &attrs!["A"], &universe(), AxiomSystem::E).unwrap();
        w.check_against(&s, &target).unwrap();
    }

    #[test]
    fn check_against_rejects_implied_target() {
        let s = sigma();
        let target = Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"]));
        let w = witness_relation(&s, &attrs!["A"], &universe(), AxiomSystem::E).unwrap();
        assert!(w.check_against(&s, &target).is_err());
    }

    #[test]
    fn witness_requires_consistent_universe() {
        let s = sigma();
        assert!(witness_relation(&s, &attrs!["Z"], &attrs!["Z"], AxiomSystem::E).is_err());
        assert!(witness_relation(&s, &attrs!["A"], &attrs!["A"], AxiomSystem::E).is_err());
    }

    #[test]
    fn under_r_func_closure_is_x_itself() {
        let w = witness_relation(&sigma(), &attrs!["A"], &universe(), AxiomSystem::R).unwrap();
        assert_eq!(w.func_closure, attrs!["A"]);
        assert_eq!(w.attr_closure, attrs!["A"], "no FD reasoning under ℛ");
    }
}
