//! Constructive derivations and a saturation engine for ℛ and ℰ.
//!
//! [`derive`](fn@derive) builds an explicit, step-by-step derivation of a dependency
//! from a set Σ — every step is an exact instance of one rule of the chosen
//! system, and [`Derivation::verify`] re-checks this mechanically.  The query
//! optimizer uses these traces to *justify* rewrites such as the redundant
//! type guard elimination of Example 4.
//!
//! [`saturate`] exhaustively applies a chosen subset of rules over a small
//! attribute universe.  It is deliberately brute force: its purpose is to act
//! as an independent oracle for the closure-based implication test and to
//! demonstrate the non-redundancy of each rule (drop a rule, observe that a
//! previously derivable dependency is no longer derivable).

use std::collections::BTreeSet;
use std::fmt;

use crate::attr::AttrSet;
use crate::axioms::closure::{attr_closure, func_closure};
use crate::axioms::{AxiomSystem, Rule};
use crate::dep::{Ad, Dependency, DependencySet, Fd};
use crate::error::{CoreError, Result};

/// One step of a derivation: a rule applied to earlier steps, yielding a
/// dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationStep {
    /// The rule applied.
    pub rule: Rule,
    /// Indices (into the derivation's step list) of the premises used.
    pub premises: Vec<usize>,
    /// The dependency concluded by this step.
    pub conclusion: Dependency,
}

/// A complete derivation of a target dependency from a set Σ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// The axiom system the derivation lives in.
    pub system: AxiomSystem,
    /// The steps, in order; the conclusion of the final step is the target.
    pub steps: Vec<DerivationStep>,
}

impl Derivation {
    /// The derived target dependency.
    pub fn target(&self) -> &Dependency {
        &self
            .steps
            .last()
            .expect("a derivation has at least one step")
            .conclusion
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation is empty (it never is, by construction).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Mechanically re-checks the derivation: every step must be an exact
    /// instance of a rule belonging to the derivation's axiom system, with
    /// premises drawn from strictly earlier steps (or, for `Given`, from Σ).
    pub fn verify(&self, sigma: &DependencySet) -> Result<()> {
        for (i, step) in self.steps.iter().enumerate() {
            if step.rule != Rule::Given && !self.system.rules().contains(&step.rule) {
                return Err(CoreError::Invalid(format!(
                    "step {} uses rule {} which is not part of system {}",
                    i, step.rule, self.system
                )));
            }
            for &p in &step.premises {
                if p >= i {
                    return Err(CoreError::Invalid(format!(
                        "step {} refers to premise {} which is not an earlier step",
                        i, p
                    )));
                }
            }
            let premise_deps: Vec<&Dependency> = step
                .premises
                .iter()
                .map(|&p| &self.steps[p].conclusion)
                .collect();
            if !rule_instance_valid(step.rule, &premise_deps, &step.conclusion, sigma) {
                return Err(CoreError::Invalid(format!(
                    "step {} is not a valid instance of {}: premises {:?} conclusion {}",
                    i,
                    step.rule,
                    premise_deps
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>(),
                    step.conclusion
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "derivation in system {}:", self.system)?;
        for (i, step) in self.steps.iter().enumerate() {
            write!(f, "  ({:>2}) {}", i, step.conclusion)?;
            write!(f, "    [{}", step.rule)?;
            if !step.premises.is_empty() {
                write!(
                    f,
                    " from {}",
                    step.premises
                        .iter()
                        .map(|p| format!("({})", p))
                        .collect::<Vec<_>>()
                        .join(", ")
                )?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Checks that `conclusion` follows from `premises` by a single application
/// of `rule` (for `Given`, that it is a member of `sigma`).
pub fn rule_instance_valid(
    rule: Rule,
    premises: &[&Dependency],
    conclusion: &Dependency,
    sigma: &DependencySet,
) -> bool {
    use Dependency::{Ad as DAd, Fd as DFd};
    match rule {
        Rule::Given => {
            premises.is_empty()
                && (sigma.contains(conclusion)
                    // The abbreviation of a given explicit AD also counts as
                    // "given": the EAD syntactically carries its Def. 4.1 form.
                    || sigma.iter().any(|d| {
                        matches!(d, Dependency::Ead(_)) && d.as_ad().map(Dependency::Ad).as_ref() == Some(conclusion)
                    }))
        }
        Rule::ReflexivityAd => match conclusion {
            DAd(ad) => premises.is_empty() && ad.rhs().is_subset(ad.lhs()),
            _ => false,
        },
        Rule::ReflexivityFd => match conclusion {
            DFd(fd) => premises.is_empty() && fd.rhs().is_subset(fd.lhs()),
            _ => false,
        },
        Rule::Projectivity => match (premises, conclusion) {
            ([DAd(p)], DAd(c)) => c.lhs() == p.lhs() && c.rhs().is_subset(p.rhs()),
            _ => false,
        },
        Rule::Additivity => match (premises, conclusion) {
            ([DAd(p1), DAd(p2)], DAd(c)) => {
                p1.lhs() == p2.lhs() && c.lhs() == p1.lhs() && *c.rhs() == p1.rhs().union(p2.rhs())
            }
            _ => false,
        },
        Rule::LeftAugmentation => match (premises, conclusion) {
            ([DAd(p)], DAd(c)) => p.lhs().is_subset(c.lhs()) && c.rhs() == p.rhs(),
            _ => false,
        },
        Rule::Subsumption => match (premises, conclusion) {
            ([DFd(p)], DAd(c)) => c.lhs() == p.lhs() && c.rhs() == p.rhs(),
            _ => false,
        },
        Rule::CombinedTransitivity => match (premises, conclusion) {
            ([DFd(p1), DAd(p2)], DAd(c)) => {
                p1.rhs() == p2.lhs() && c.lhs() == p1.lhs() && c.rhs() == p2.rhs()
            }
            _ => false,
        },
        Rule::AugmentationFd => match (premises, conclusion) {
            ([DFd(p)], DFd(c)) => {
                // conclusion = X∪Z --func--> Y∪Z for some Z.
                if !p.lhs().is_subset(c.lhs()) || !p.rhs().is_subset(c.rhs()) {
                    return false;
                }
                let needed = c
                    .lhs()
                    .difference(p.lhs())
                    .union(&c.rhs().difference(p.rhs()));
                needed.is_subset(&c.lhs().intersection(c.rhs()).union(p.lhs()).union(p.rhs()))
                    && needed.is_subset(&c.lhs().intersection(c.rhs()))
                    || {
                        // The common case: Z = lhs' − X works exactly.
                        let z = c.lhs().difference(p.lhs());
                        *c.lhs() == p.lhs().union(&z) && *c.rhs() == p.rhs().union(&z)
                    }
                    || {
                        // Or Z = rhs' − Y works exactly.
                        let z = c.rhs().difference(p.rhs());
                        *c.lhs() == p.lhs().union(&z) && *c.rhs() == p.rhs().union(&z)
                    }
            }
            _ => false,
        },
        Rule::TransitivityFd => match (premises, conclusion) {
            ([DFd(p1), DFd(p2)], DFd(c)) => {
                p1.rhs() == p2.lhs() && c.lhs() == p1.lhs() && c.rhs() == p2.rhs()
            }
            _ => false,
        },
    }
}

/// Incremental builder for derivations.
struct Builder {
    system: AxiomSystem,
    steps: Vec<DerivationStep>,
}

impl Builder {
    fn new(system: AxiomSystem) -> Self {
        Builder {
            system,
            steps: Vec::new(),
        }
    }

    fn push(&mut self, rule: Rule, premises: Vec<usize>, conclusion: Dependency) -> usize {
        self.steps.push(DerivationStep {
            rule,
            premises,
            conclusion,
        });
        self.steps.len() - 1
    }

    fn finish(self) -> Derivation {
        Derivation {
            system: self.system,
            steps: self.steps,
        }
    }
}

/// Derives `X --func--> target_rhs` inside `b`, returning the index of the
/// concluding step, or `None` if the FD is not implied.
fn derive_fd_into(
    b: &mut Builder,
    sigma: &DependencySet,
    x: &AttrSet,
    target_rhs: &AttrSet,
) -> Option<usize> {
    let closure = func_closure(x, sigma);
    if !target_rhs.is_subset(&closure) {
        return None;
    }
    // (r0)  X --func--> X          by F1
    let mut current = x.clone();
    let mut current_idx = b.push(
        Rule::ReflexivityFd,
        vec![],
        Dependency::Fd(Fd::new(x.clone(), x.clone())),
    );
    // Fixpoint: fire given FDs whose lhs is inside the running closure.
    let fds: Vec<Fd> = sigma.fds().cloned().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in &fds {
            if fd.lhs().is_subset(&current) && !fd.rhs().is_subset(&current) {
                // (g)   W --func--> Z               given
                let g = b.push(Rule::Given, vec![], Dependency::Fd(fd.clone()));
                // (a)   C --func--> W               by F1 (W ⊆ C)
                let a = b.push(
                    Rule::ReflexivityFd,
                    vec![],
                    Dependency::Fd(Fd::new(current.clone(), fd.lhs().clone())),
                );
                // (b)   X --func--> W               by F3 on (current_idx, a)
                let bstep = b.push(
                    Rule::TransitivityFd,
                    vec![current_idx, a],
                    Dependency::Fd(Fd::new(x.clone(), fd.lhs().clone())),
                );
                // (c)   X --func--> Z               by F3 on (b, g)
                let c = b.push(
                    Rule::TransitivityFd,
                    vec![bstep, g],
                    Dependency::Fd(Fd::new(x.clone(), fd.rhs().clone())),
                );
                // (d)   C --func--> Z ∪ C           by F2 on (c) with Z := C
                let new_closure = current.union(fd.rhs());
                let d = b.push(
                    Rule::AugmentationFd,
                    vec![c],
                    Dependency::Fd(Fd::new(current.clone(), new_closure.clone())),
                );
                // (e)   X --func--> Z ∪ C           by F3 on (current_idx, d)
                let e = b.push(
                    Rule::TransitivityFd,
                    vec![current_idx, d],
                    Dependency::Fd(Fd::new(x.clone(), new_closure.clone())),
                );
                current = new_closure;
                current_idx = e;
                changed = true;
            }
        }
    }
    if *target_rhs == current {
        return Some(current_idx);
    }
    // (p1)  C --func--> Y           by F1 (Y ⊆ C)
    let p1 = b.push(
        Rule::ReflexivityFd,
        vec![],
        Dependency::Fd(Fd::new(current.clone(), target_rhs.clone())),
    );
    // (p2)  X --func--> Y           by F3
    Some(b.push(
        Rule::TransitivityFd,
        vec![current_idx, p1],
        Dependency::Fd(Fd::new(x.clone(), target_rhs.clone())),
    ))
}

/// Derives `X --attr--> Y` (or `X --func--> Y`) from `sigma` under the given
/// axiom system, producing an explicit derivation, or `None` if the
/// dependency is not implied.
pub fn derive(
    sigma: &DependencySet,
    target: &Dependency,
    system: AxiomSystem,
) -> Option<Derivation> {
    let mut b = Builder::new(system);
    // Derivations target the abbreviated forms; an explicit AD target is
    // derived through its abbreviation.
    if let Dependency::Ead(ead) = target {
        return derive(sigma, &Dependency::Ad(ead.to_ad()), system);
    }
    match (system, target) {
        (AxiomSystem::R, Dependency::Fd(_)) => None,
        (_, Dependency::Ead(_)) => unreachable!("handled above"),
        (AxiomSystem::E, Dependency::Fd(fd)) => {
            derive_fd_into(&mut b, sigma, fd.lhs(), fd.rhs())?;
            Some(b.finish())
        }
        (_, Dependency::Ad(ad)) => {
            let x = ad.lhs();
            let y = ad.rhs();
            if !y.is_subset(&attr_closure(x, sigma, system)) {
                return None;
            }
            // Collect one step index per "piece" of Y we can account for;
            // every piece is an AD with lhs X.
            let mut piece_indices: Vec<usize> = Vec::new();

            // Piece 1: the part of Y determined "for free".
            let free = match system {
                AxiomSystem::R => y.intersection(x),
                AxiomSystem::E => y.intersection(&func_closure(x, sigma)),
            };
            if !free.is_empty() || y.is_empty() {
                match system {
                    AxiomSystem::R => {
                        piece_indices.push(b.push(
                            Rule::ReflexivityAd,
                            vec![],
                            Dependency::Ad(Ad::new(x.clone(), free.clone())),
                        ));
                    }
                    AxiomSystem::E => {
                        let fd_idx = derive_fd_into(&mut b, sigma, x, &free)
                            .expect("free part is inside the functional closure");
                        piece_indices.push(b.push(
                            Rule::Subsumption,
                            vec![fd_idx],
                            Dependency::Ad(Ad::new(x.clone(), free.clone())),
                        ));
                    }
                }
            }

            // Piece per contributing given AD.
            let reach = match system {
                AxiomSystem::R => x.clone(),
                AxiomSystem::E => func_closure(x, sigma),
            };
            let mut covered = free.clone();
            for given in sigma.ads() {
                if covered.is_superset(y) {
                    break;
                }
                let useful = given.rhs().intersection(y).difference(&covered);
                if useful.is_empty() || !given.lhs().is_subset(&reach) {
                    continue;
                }
                let g = b.push(Rule::Given, vec![], Dependency::Ad(given.clone()));
                let lifted = match system {
                    AxiomSystem::R => {
                        // (A4) lift the lhs from W to X.
                        b.push(
                            Rule::LeftAugmentation,
                            vec![g],
                            Dependency::Ad(Ad::new(x.clone(), given.rhs().clone())),
                        )
                    }
                    AxiomSystem::E => {
                        // Derive X --func--> W, then AF2.
                        let fd_idx = derive_fd_into(&mut b, sigma, x, given.lhs())
                            .expect("W lies inside the functional closure of X");
                        b.push(
                            Rule::CombinedTransitivity,
                            vec![fd_idx, g],
                            Dependency::Ad(Ad::new(x.clone(), given.rhs().clone())),
                        )
                    }
                };
                // (A1) keep only the useful part.
                let proj = b.push(
                    Rule::Projectivity,
                    vec![lifted],
                    Dependency::Ad(Ad::new(x.clone(), useful.clone())),
                );
                covered.extend_with(&useful);
                piece_indices.push(proj);
            }

            // Combine the pieces with (A2), then project to exactly Y with (A1).
            let mut acc_idx = piece_indices[0];
            let mut acc_rhs = match &b.steps[acc_idx].conclusion {
                Dependency::Ad(a) => a.rhs().clone(),
                _ => unreachable!(),
            };
            for &idx in &piece_indices[1..] {
                let rhs = match &b.steps[idx].conclusion {
                    Dependency::Ad(a) => a.rhs().clone(),
                    _ => unreachable!(),
                };
                acc_rhs = acc_rhs.union(&rhs);
                acc_idx = b.push(
                    Rule::Additivity,
                    vec![acc_idx, idx],
                    Dependency::Ad(Ad::new(x.clone(), acc_rhs.clone())),
                );
            }
            if acc_rhs != *y {
                b.push(
                    Rule::Projectivity,
                    vec![acc_idx],
                    Dependency::Ad(Ad::new(x.clone(), y.clone())),
                );
            }
            Some(b.finish())
        }
    }
}

/// Exhaustively applies the given rules over the attribute `universe`,
/// starting from `sigma`, until no new dependency (over subsets of the
/// universe) can be derived.  Returns every derivable dependency.
///
/// The dependency space over a universe of `n` attributes has `2·4ⁿ`
/// members, so this is restricted to `n ≤ 6`; it exists as an oracle for
/// tests (closure correctness, non-redundancy of rules), not as a production
/// reasoning path.
pub fn saturate(sigma: &DependencySet, rules: &[Rule], universe: &AttrSet) -> BTreeSet<Dependency> {
    assert!(
        universe.len() <= 6,
        "saturate() is an exhaustive oracle and only supports universes of at most 6 attributes"
    );
    let subsets = universe.power_set();
    // Explicit ADs participate through their abbreviation.
    let mut derived: BTreeSet<Dependency> = sigma
        .iter()
        .filter(|d| d.lhs().is_subset(universe) && d.rhs().is_subset(universe))
        .map(|d| match d {
            Dependency::Ead(e) => Dependency::Ad(e.to_ad()),
            other => other.clone(),
        })
        .collect();

    // Reflexivity rules are generators: seed them once.
    if rules.contains(&Rule::ReflexivityAd) {
        for x in &subsets {
            for y in x.power_set() {
                derived.insert(Dependency::Ad(Ad::new(x.clone(), y)));
            }
        }
    }
    if rules.contains(&Rule::ReflexivityFd) {
        for x in &subsets {
            for y in x.power_set() {
                derived.insert(Dependency::Fd(Fd::new(x.clone(), y)));
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        let snapshot: Vec<Dependency> = derived.iter().cloned().collect();
        let mut new_deps: Vec<Dependency> = Vec::new();

        for d in &snapshot {
            match d {
                Dependency::Ad(ad) => {
                    if rules.contains(&Rule::Projectivity) {
                        for y in ad.rhs().power_set() {
                            new_deps.push(Dependency::Ad(Ad::new(ad.lhs().clone(), y)));
                        }
                    }
                    if rules.contains(&Rule::LeftAugmentation) {
                        for z in &subsets {
                            new_deps
                                .push(Dependency::Ad(Ad::new(ad.lhs().union(z), ad.rhs().clone())));
                        }
                    }
                }
                Dependency::Fd(fd) => {
                    if rules.contains(&Rule::Subsumption) {
                        new_deps.push(Dependency::Ad(Ad::new(fd.lhs().clone(), fd.rhs().clone())));
                    }
                    if rules.contains(&Rule::AugmentationFd) {
                        for z in &subsets {
                            new_deps.push(Dependency::Fd(Fd::new(
                                fd.lhs().union(z),
                                fd.rhs().union(z),
                            )));
                        }
                    }
                }
                Dependency::Ead(_) => unreachable!("EADs are abbreviated before saturation"),
            }
        }
        // Binary rules.
        for d1 in &snapshot {
            for d2 in &snapshot {
                match (d1, d2) {
                    (Dependency::Ad(a1), Dependency::Ad(a2))
                        if rules.contains(&Rule::Additivity) && a1.lhs() == a2.lhs() =>
                    {
                        new_deps.push(Dependency::Ad(Ad::new(
                            a1.lhs().clone(),
                            a1.rhs().union(a2.rhs()),
                        )));
                    }
                    (Dependency::Fd(f1), Dependency::Fd(f2))
                        if rules.contains(&Rule::TransitivityFd) && f1.rhs() == f2.lhs() =>
                    {
                        new_deps.push(Dependency::Fd(Fd::new(f1.lhs().clone(), f2.rhs().clone())));
                    }
                    (Dependency::Fd(f1), Dependency::Ad(a2))
                        if rules.contains(&Rule::CombinedTransitivity) && f1.rhs() == a2.lhs() =>
                    {
                        new_deps.push(Dependency::Ad(Ad::new(f1.lhs().clone(), a2.rhs().clone())));
                    }
                    _ => {}
                }
            }
        }
        for d in new_deps {
            if d.lhs().is_subset(universe) && d.rhs().is_subset(universe) && derived.insert(d) {
                changed = true;
            }
        }
    }
    derived
}

/// Whether `target` is derivable from `sigma` over `universe` when `dropped`
/// is removed from the rules of `system`.  Used to demonstrate the
/// non-redundancy part of Theorems 4.1 and 4.2.
pub fn derivable_without_rule(
    sigma: &DependencySet,
    target: &Dependency,
    system: AxiomSystem,
    dropped: Rule,
    universe: &AttrSet,
) -> bool {
    let rules: Vec<Rule> = system
        .rules()
        .iter()
        .copied()
        .filter(|r| *r != dropped)
        .collect();
    saturate(sigma, &rules, universe).contains(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::axioms::closure::implies;

    fn example4_sigma() -> DependencySet {
        // The abbreviated jobtype AD, as used in Example 4.
        DependencySet::from_deps(vec![Dependency::Ad(Ad::new(
            attrs!["jobtype"],
            attrs![
                "typing-speed",
                "foreign-languages",
                "products",
                "programming-languages",
                "sales-commission"
            ],
        ))])
    }

    #[test]
    fn example4_guard_redundancy_derivation() {
        // Example 4: project the jobtype AD onto {typing-speed} (A1), then
        // augment the left side with salary (A4); the presence of
        // typing-speed follows from the selection formula.
        let sigma = example4_sigma();
        let target = Dependency::Ad(Ad::new(attrs!["jobtype", "salary"], attrs!["typing-speed"]));
        let d = derive(&sigma, &target, AxiomSystem::R).expect("derivable");
        d.verify(&sigma).expect("derivation must check out");
        assert_eq!(d.target(), &target);
        // The derivation must use exactly the two rules the paper names
        // (plus citing the given AD).
        let rules_used: BTreeSet<Rule> = d.steps.iter().map(|s| s.rule).collect();
        assert!(rules_used.contains(&Rule::Projectivity));
        assert!(rules_used.contains(&Rule::LeftAugmentation));
    }

    #[test]
    fn derive_agrees_with_implies_r() {
        let sigma = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["B", "C"])),
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["D"])),
        ]);
        let cases = vec![
            (Ad::new(attrs!["A"], attrs!["B"]), true),
            (Ad::new(attrs!["A", "E"], attrs!["C"]), true),
            (Ad::new(attrs!["A"], attrs!["D"]), false), // no AD transitivity
            (Ad::new(attrs!["A"], attrs!["A", "B", "C"]), true),
            (Ad::new(attrs!["C"], attrs!["B"]), false),
        ];
        for (ad, expected) in cases {
            let dep = Dependency::Ad(ad);
            assert_eq!(implies(&sigma, &dep, AxiomSystem::R), expected, "{}", dep);
            let d = derive(&sigma, &dep, AxiomSystem::R);
            assert_eq!(d.is_some(), expected, "{}", dep);
            if let Some(d) = d {
                d.verify(&sigma).unwrap();
                assert_eq!(d.target(), &dep);
            }
        }
    }

    #[test]
    fn derive_agrees_with_implies_e() {
        let sigma = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Fd(Fd::new(attrs!["B"], attrs!["C"])),
            Dependency::Ad(Ad::new(attrs!["C"], attrs!["D", "E"])),
        ]);
        let cases: Vec<(Dependency, bool)> = vec![
            (Dependency::Fd(Fd::new(attrs!["A"], attrs!["C"])), true),
            (Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])), true),
            (Dependency::Ad(Ad::new(attrs!["A"], attrs!["D"])), true),
            (
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["B", "D", "E"])),
                true,
            ),
            (Dependency::Fd(Fd::new(attrs!["A"], attrs!["D"])), false),
            (Dependency::Ad(Ad::new(attrs!["D"], attrs!["E"])), false),
        ];
        for (dep, expected) in cases {
            assert_eq!(implies(&sigma, &dep, AxiomSystem::E), expected, "{}", dep);
            let d = derive(&sigma, &dep, AxiomSystem::E);
            assert_eq!(d.is_some(), expected, "{}", dep);
            if let Some(d) = d {
                d.verify(&sigma).unwrap();
                assert_eq!(d.target(), &dep);
            }
        }
    }

    #[test]
    fn artificial_determinant_workaround_is_valid() {
        // §4.2: replace X --attr--> Y (multi-attribute X) by an artificial
        // attribute A with X --func--> A and A --attr--> Y; then
        // X --attr--> Y remains derivable via AF2.
        let sigma = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(
                attrs!["sex", "marital-status"],
                attrs!["variant-tag"],
            )),
            Dependency::Ad(Ad::new(attrs!["variant-tag"], attrs!["maiden-name"])),
        ]);
        let target = Dependency::Ad(Ad::new(
            attrs!["sex", "marital-status"],
            attrs!["maiden-name"],
        ));
        let d = derive(&sigma, &target, AxiomSystem::E).expect("AF2 makes the workaround valid");
        d.verify(&sigma).unwrap();
        assert!(d.steps.iter().any(|s| s.rule == Rule::CombinedTransitivity));
        // Under ℛ alone (no FD reasoning) the workaround is NOT derivable.
        assert!(derive(&sigma, &target, AxiomSystem::R).is_none());
    }

    #[test]
    fn saturation_agrees_with_closure_on_small_universe() {
        let universe = attrs!["A", "B", "C", "D"];
        let sigma = DependencySet::from_deps(vec![
            Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
        ]);
        let sat = saturate(&sigma, AxiomSystem::E.rules(), &universe);
        for x in universe.power_set() {
            for y in universe.power_set() {
                let ad = Dependency::Ad(Ad::new(x.clone(), y.clone()));
                let fd = Dependency::Fd(Fd::new(x.clone(), y.clone()));
                assert_eq!(
                    sat.contains(&ad),
                    implies(&sigma, &ad, AxiomSystem::E),
                    "disagreement on {}",
                    ad
                );
                assert_eq!(
                    sat.contains(&fd),
                    implies(&sigma, &fd, AxiomSystem::E),
                    "disagreement on {}",
                    fd
                );
            }
        }
    }

    #[test]
    fn saturation_agrees_with_closure_under_r() {
        let universe = attrs!["A", "B", "C"];
        let sigma = DependencySet::from_deps(vec![
            Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["C"])),
        ]);
        let sat = saturate(&sigma, AxiomSystem::R.rules(), &universe);
        for x in universe.power_set() {
            for y in universe.power_set() {
                let ad = Dependency::Ad(Ad::new(x.clone(), y.clone()));
                assert_eq!(
                    sat.contains(&ad),
                    implies(&sigma, &ad, AxiomSystem::R),
                    "disagreement on {}",
                    ad
                );
            }
        }
    }

    #[test]
    fn every_rule_of_r_is_non_redundant() {
        let universe = attrs!["A", "B", "C"];
        // (rule, sigma, target): derivable with all of ℛ, underivable without
        // the rule.
        let cases: Vec<(Rule, DependencySet, Dependency)> = vec![
            (
                Rule::Projectivity,
                DependencySet::from_deps(vec![Dependency::Ad(Ad::new(
                    attrs!["A"],
                    attrs!["B", "C"],
                ))]),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            ),
            (
                Rule::Additivity,
                DependencySet::from_deps(vec![
                    Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
                    Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
                ]),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["B", "C"])),
            ),
            (
                Rule::ReflexivityAd,
                DependencySet::new(),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["A"])),
            ),
            (
                Rule::LeftAugmentation,
                DependencySet::from_deps(vec![Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"]))]),
                Dependency::Ad(Ad::new(attrs!["A", "C"], attrs!["B"])),
            ),
        ];
        for (rule, sigma, target) in cases {
            assert!(
                saturate(&sigma, AxiomSystem::R.rules(), &universe).contains(&target),
                "{} should be derivable with the full system",
                target
            );
            assert!(
                !derivable_without_rule(&sigma, &target, AxiomSystem::R, rule, &universe),
                "dropping {} should lose {}",
                rule,
                target
            );
        }
    }

    #[test]
    fn every_rule_of_e_is_non_redundant() {
        let universe = attrs!["A", "B", "C"];
        let cases: Vec<(Rule, DependencySet, Dependency)> = vec![
            (
                Rule::Subsumption,
                DependencySet::from_deps(vec![Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"]))]),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            ),
            (
                Rule::CombinedTransitivity,
                DependencySet::from_deps(vec![
                    Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
                    Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
                ]),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
            ),
            (
                Rule::Projectivity,
                DependencySet::from_deps(vec![Dependency::Ad(Ad::new(
                    attrs!["A"],
                    attrs!["B", "C"],
                ))]),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
            ),
            (
                Rule::Additivity,
                DependencySet::from_deps(vec![
                    Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
                    Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
                ]),
                Dependency::Ad(Ad::new(attrs!["A"], attrs!["B", "C"])),
            ),
            (
                Rule::ReflexivityFd,
                DependencySet::new(),
                Dependency::Fd(Fd::new(attrs!["A"], attrs!["A"])),
            ),
            (
                Rule::AugmentationFd,
                DependencySet::from_deps(vec![Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"]))]),
                Dependency::Fd(Fd::new(attrs!["A", "C"], attrs!["B", "C"])),
            ),
            (
                Rule::TransitivityFd,
                DependencySet::from_deps(vec![
                    Dependency::Fd(Fd::new(attrs!["A"], attrs!["B"])),
                    Dependency::Fd(Fd::new(attrs!["B"], attrs!["C"])),
                ]),
                Dependency::Fd(Fd::new(attrs!["A"], attrs!["C"])),
            ),
        ];
        for (rule, sigma, target) in cases {
            assert!(
                saturate(&sigma, AxiomSystem::E.rules(), &universe).contains(&target),
                "{} should be derivable with the full system",
                target
            );
            assert!(
                !derivable_without_rule(&sigma, &target, AxiomSystem::E, rule, &universe),
                "dropping {} should lose {}",
                rule,
                target
            );
        }
    }

    #[test]
    fn a3_and_a4_are_redundant_in_e() {
        // §4.2: "The reflexivity rule (A3) and the left augmentation rule
        // (A4), still needed in ℛ, can now be inferred from ℰ."
        let universe = attrs!["A", "B", "C"];
        // A3 instance: ∅ ⊢ {A,B} --attr--> {A}.
        let sat = saturate(&DependencySet::new(), AxiomSystem::E.rules(), &universe);
        assert!(sat.contains(&Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["A"]))));
        // A4 instance: from A --attr--> B derive {A,C} --attr--> B.
        let sigma =
            DependencySet::from_deps(vec![Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"]))]);
        let sat = saturate(&sigma, AxiomSystem::E.rules(), &universe);
        assert!(sat.contains(&Dependency::Ad(Ad::new(attrs!["A", "C"], attrs!["B"]))));
    }

    #[test]
    fn verify_rejects_bogus_derivations() {
        let sigma = DependencySet::new();
        // A "derivation" claiming transitivity for ADs.
        let bogus = Derivation {
            system: AxiomSystem::R,
            steps: vec![
                DerivationStep {
                    rule: Rule::Given,
                    premises: vec![],
                    conclusion: Dependency::Ad(Ad::new(attrs!["A"], attrs!["B"])),
                },
                DerivationStep {
                    rule: Rule::Given,
                    premises: vec![],
                    conclusion: Dependency::Ad(Ad::new(attrs!["B"], attrs!["C"])),
                },
                DerivationStep {
                    rule: Rule::Additivity,
                    premises: vec![0, 1],
                    conclusion: Dependency::Ad(Ad::new(attrs!["A"], attrs!["C"])),
                },
            ],
        };
        assert!(bogus.verify(&sigma).is_err());

        // A derivation citing an FD rule inside system ℛ.
        let wrong_system = Derivation {
            system: AxiomSystem::R,
            steps: vec![DerivationStep {
                rule: Rule::ReflexivityFd,
                premises: vec![],
                conclusion: Dependency::Fd(Fd::new(attrs!["A"], attrs!["A"])),
            }],
        };
        assert!(wrong_system.verify(&sigma).is_err());

        // A forward reference.
        let forward = Derivation {
            system: AxiomSystem::R,
            steps: vec![DerivationStep {
                rule: Rule::Projectivity,
                premises: vec![0],
                conclusion: Dependency::Ad(Ad::new(attrs!["A"], attrs!["A"])),
            }],
        };
        assert!(forward.verify(&sigma).is_err());
    }

    #[test]
    fn derivation_display_lists_steps() {
        let sigma = example4_sigma();
        let target = Dependency::Ad(Ad::new(attrs!["jobtype", "salary"], attrs!["typing-speed"]));
        let d = derive(&sigma, &target, AxiomSystem::R).unwrap();
        let text = d.to_string();
        assert!(text.contains("A1 (projectivity)"));
        assert!(text.contains("A4 (left augmentation)"));
        assert!(text.contains("typing-speed"));
    }

    #[test]
    fn trivial_target_with_empty_sigma() {
        let sigma = DependencySet::new();
        let target = Dependency::Ad(Ad::new(attrs!["A", "B"], attrs!["B"]));
        let d = derive(&sigma, &target, AxiomSystem::R).unwrap();
        d.verify(&sigma).unwrap();
        let d = derive(&sigma, &target, AxiomSystem::E).unwrap();
        d.verify(&sigma).unwrap();
    }
}
