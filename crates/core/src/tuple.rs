//! Tuples over attribute sets.
//!
//! A tuple is a mapping from a set of attributes to atomic values.  In the
//! flexible-relation model different tuples of the same relation may be
//! defined on *different* attribute sets; the function `attr(t)` (here
//! [`Tuple::attrs`]) yields the attribute set a tuple is defined on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{OnceLock, RwLock};

use crate::attr::{Attr, AttrSet};
use crate::value::Value;

/// A stable identifier of an interned tuple *shape* (an attribute set
/// `attr(t)`).
///
/// Shapes are interned process-wide, exactly like attribute names: the first
/// time a shape is seen it is assigned a dense `u32` id, and the same
/// attribute set always maps to the same id for the lifetime of the process.
/// The storage layer keys its heap partitions by `ShapeId`
/// (`flexrel-storage`), so that all tuples with the same `attr(t)` — the
/// same disjunct of the scheme's DNF — live together and a scan can skip
/// whole partitions whose shape cannot satisfy a query.
///
/// Like attribute ids, shape ids are dense but *not* stable across runs
/// (they depend on first-come interning order); anything order-sensitive
/// must go through the resolved [`AttrSet`], see [`ShapeId::attrs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeId(u32);

impl ShapeId {
    /// The dense interned index of this shape.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Resolves the shape back to its attribute set.
    ///
    /// # Panics
    /// Panics if the id was not produced by [`Tuple::shape_id`] (or
    /// [`ShapeId::intern`]) in this process.
    pub fn attrs(self) -> AttrSet {
        let inner = shape_universe().read().unwrap();
        inner.shapes[self.0 as usize].clone()
    }

    /// Interns an arbitrary attribute set as a shape.
    pub fn intern(shape: &AttrSet) -> ShapeId {
        {
            let inner = shape_universe().read().unwrap();
            if let Some(&id) = inner.ids.get(shape) {
                return ShapeId(id);
            }
        }
        let mut inner = shape_universe().write().unwrap();
        if let Some(&id) = inner.ids.get(shape) {
            return ShapeId(id);
        }
        let id = u32::try_from(inner.shapes.len()).expect("shape universe exhausted u32 ids");
        inner.shapes.push(shape.clone());
        inner.ids.insert(shape.clone(), id);
        ShapeId(id)
    }
}

impl fmt::Display for ShapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Default)]
struct ShapeUniverseInner {
    shapes: Vec<AttrSet>,
    ids: HashMap<AttrSet, u32>,
}

fn shape_universe() -> &'static RwLock<ShapeUniverseInner> {
    static SHAPES: OnceLock<RwLock<ShapeUniverseInner>> = OnceLock::new();
    SHAPES.get_or_init(|| RwLock::new(ShapeUniverseInner::default()))
}

/// A tuple: a finite mapping from attributes to values.
///
/// The map is ordered by attribute name so that tuples have a canonical
/// rendering; the tuple additionally caches its shape `attr(t)` as a bitset
/// so that the ubiquitous type guard `X ⊆ attr(t)` (Def. 4.1/4.2) is a
/// word-level subset test instead of per-attribute map lookups.
#[derive(Clone, Default)]
pub struct Tuple {
    values: BTreeMap<Attr, Value>,
    shape: AttrSet,
}

// Equality, ordering and hashing are over the value map alone: the shape is
// derived state (it is exactly the key set of `values`).
impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values.cmp(&other.values)
    }
}

// Hashes the shape bitset followed by the values in canonical attribute
// order.  This is consistent with `Eq` (equal value maps have equal key sets,
// hence equal shape bitsets, and equal values) while avoiding re-hashing the
// attribute *names* — tuples are hash-map keys on several hot paths (hash
// joins, determinant indexes, dependency grouping) and the shape words
// already discriminate the attributes.
impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.shape.hash(state);
        for v in self.values.values() {
            v.hash(state);
        }
    }
}

impl Tuple {
    /// The empty tuple (defined on no attributes).
    pub fn empty() -> Self {
        Tuple::default()
    }

    fn from_map(values: BTreeMap<Attr, Value>) -> Self {
        let shape = values.keys().collect();
        Tuple { values, shape }
    }

    /// Starts building a tuple: `Tuple::new().with("salary", 5000)…`.
    pub fn new() -> Self {
        Self::empty()
    }

    /// Builder-style insertion of an attribute/value pair.
    pub fn with(mut self, attr: impl Into<Attr>, value: impl Into<Value>) -> Self {
        self.insert(attr, value);
        self
    }

    /// Builds a tuple from a known shape and its values in the shape's
    /// canonical (attribute-name) order — the fast materialization path for
    /// columnar partition storage, where every stored row shares the
    /// partition's shape and the column order *is* the canonical order.
    ///
    /// `attrs` must be exactly the members of `shape` in canonical order
    /// (as produced by [`AttrSet::to_vec`]), and `values` must yield one
    /// value per attribute.  Debug builds assert both.
    pub fn from_shape_values<I>(shape: AttrSet, attrs: &[Attr], values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let values: BTreeMap<Attr, Value> = attrs.iter().cloned().zip(values).collect();
        debug_assert_eq!(values.len(), attrs.len(), "one value per attribute");
        debug_assert_eq!(
            shape,
            values.keys().collect(),
            "attrs must spell out exactly the shape"
        );
        Tuple { values, shape }
    }

    /// Builds a tuple from `(attribute, value)` pairs.
    pub fn from_pairs<I, A, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<Attr>,
        V: Into<Value>,
    {
        Tuple::from_map(
            pairs
                .into_iter()
                .map(|(a, v)| (a.into(), v.into()))
                .collect(),
        )
    }

    /// Inserts (or replaces) a value for an attribute.
    pub fn insert(&mut self, attr: impl Into<Attr>, value: impl Into<Value>) {
        let attr = attr.into();
        self.shape.insert(attr.clone());
        self.values.insert(attr, value.into());
    }

    /// Removes an attribute from the tuple, returning its value if present.
    pub fn remove(&mut self, attr: &Attr) -> Option<Value> {
        let removed = self.values.remove(attr);
        if removed.is_some() {
            self.shape.remove(attr);
        }
        removed
    }

    /// `attr(t)`: the attribute set this tuple is defined on.
    pub fn attrs(&self) -> AttrSet {
        self.shape.clone()
    }

    /// `attr(t)` by reference (no clone); the cached shape bitset.
    pub fn shape(&self) -> &AttrSet {
        &self.shape
    }

    /// The interned [`ShapeId`] of `attr(t)`.
    ///
    /// Tuples of the same shape share the id; the storage layer uses it to
    /// route a tuple to its heap partition and to memoize shape-level type
    /// checks (`X ⊆ attr(t)` guards and scheme membership) across inserts.
    pub fn shape_id(&self) -> ShapeId {
        ShapeId::intern(&self.shape)
    }

    /// Number of attributes the tuple is defined on.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple is defined on no attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the tuple is defined on attribute `a`.
    pub fn has(&self, a: &Attr) -> bool {
        self.shape.contains(a)
    }

    /// Whether the tuple is defined on an attribute with the given name.
    pub fn has_name(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Whether the tuple is defined on *all* attributes of `x` (the type
    /// guard `X ⊆ attr(t)` used by Def. 4.1/4.2).
    pub fn defined_on(&self, x: &AttrSet) -> bool {
        x.is_subset(&self.shape)
    }

    /// The value of attribute `a`, if the tuple is defined on it.
    pub fn get(&self, a: &Attr) -> Option<&Value> {
        self.values.get(a)
    }

    /// The value of the attribute with the given name, if present.
    pub fn get_name(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// `t[X]`: the restriction (projection) of the tuple to the attributes of
    /// `x`.  Attributes of `x` the tuple is not defined on are simply absent
    /// from the result, mirroring the model's treatment of projection on
    /// heterogeneous tuples.
    pub fn project(&self, x: &AttrSet) -> Tuple {
        Tuple {
            values: self
                .values
                .iter()
                .filter(|(a, _)| x.contains(a))
                .map(|(a, v)| (a.clone(), v.clone()))
                .collect(),
            shape: self.shape.intersection(x),
        }
    }

    /// Whether two tuples agree on `x`: both are defined on all of `x` and
    /// have equal values there (`X ⊆ attr(t1) ∧ X ⊆ attr(t2) ∧ t1[X] = t2[X]`).
    pub fn agrees_on(&self, other: &Tuple, x: &AttrSet) -> bool {
        if !x.is_subset(&self.shape) || !x.is_subset(&other.shape) {
            return false;
        }
        x.iter_unordered()
            .all(|a| self.values.get(&a) == other.values.get(&a))
    }

    /// Extends the tuple with all attribute/value pairs of `other`.  On
    /// conflicts `other` wins.  This is the tuple-level operation behind the
    /// cartesian product, the extension operator `ε` and joins.
    pub fn merged_with(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        for (a, v) in &other.values {
            values.insert(a.clone(), v.clone());
        }
        Tuple {
            values,
            shape: self.shape.union(&other.shape),
        }
    }

    /// Whether the tuples are *join-compatible*: they agree on every attribute
    /// they are both defined on.
    pub fn joinable_with(&self, other: &Tuple) -> bool {
        let common = self.shape.intersection(&other.shape);
        self.agrees_on(other, &common)
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&Attr, &Value)> + '_ {
        self.values.iter()
    }

    /// Renames attribute `from` to `to`, if present.
    pub fn rename(&self, from: &Attr, to: &Attr) -> Tuple {
        let mut values = self.values.clone();
        if let Some(v) = values.remove(from) {
            values.insert(to.clone(), v);
        }
        Tuple::from_map(values)
    }

    /// Strips all attributes whose value is [`Value::Null`].  Used when
    /// converting from the null-padded baseline representation back into a
    /// flexible tuple.
    pub fn without_nulls(&self) -> Tuple {
        Tuple::from_map(
            self.values
                .iter()
                .filter(|(_, v)| !v.is_null())
                .map(|(a, v)| (a.clone(), v.clone()))
                .collect(),
        )
    }

    /// Pads the tuple with [`Value::Null`] for every attribute of `universe`
    /// it is not defined on.  Used to build the flat baseline representation.
    pub fn null_padded(&self, universe: &AttrSet) -> Tuple {
        let mut values = self.values.clone();
        for a in universe.iter() {
            values.entry(a.clone()).or_insert(Value::Null);
        }
        Tuple {
            values,
            shape: self.shape.union(universe),
        }
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, (a, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a, v)?;
        }
        write!(f, ">")
    }
}

impl FromIterator<(Attr, Value)> for Tuple {
    fn from_iter<T: IntoIterator<Item = (Attr, Value)>>(iter: T) -> Self {
        Tuple::from_map(iter.into_iter().collect())
    }
}

/// Convenience macro for building tuples:
/// `tuple!{"jobtype" => Value::tag("secretary"), "salary" => 5000}`.
#[macro_export]
macro_rules! tuple {
    () => { $crate::tuple::Tuple::empty() };
    ($($attr:expr => $val:expr),+ $(,)?) => {{
        let mut t = $crate::tuple::Tuple::empty();
        $( t.insert($attr, $val); )+
        t
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn secretary() -> Tuple {
        tuple! {
            "name" => "Ann",
            "salary" => 4200,
            "jobtype" => Value::tag("secretary"),
            "typing-speed" => 320,
            "foreign-languages" => "french"
        }
    }

    #[test]
    fn attrs_returns_definition_set() {
        let t = secretary();
        assert_eq!(
            t.attrs(),
            attrs![
                "name",
                "salary",
                "jobtype",
                "typing-speed",
                "foreign-languages"
            ]
        );
        assert_eq!(t.arity(), 5);
    }

    #[test]
    fn builder_and_macro_agree() {
        let a = Tuple::new().with("x", 1).with("y", 2);
        let b = tuple! {"x" => 1, "y" => 2};
        assert_eq!(a, b);
        let c = Tuple::from_pairs([("x", Value::Int(1)), ("y", Value::Int(2))]);
        assert_eq!(a, c);
    }

    #[test]
    fn projection_restricts_to_present_attrs() {
        let t = secretary();
        let p = t.project(&attrs!["salary", "jobtype", "products"]);
        assert_eq!(p.attrs(), attrs!["salary", "jobtype"]);
        assert_eq!(p.get_name("salary"), Some(&Value::Int(4200)));
        assert_eq!(p.get_name("products"), None);
    }

    #[test]
    fn agreement_requires_definition_on_both_sides() {
        let t1 = secretary();
        let t2 = tuple! {"jobtype" => Value::tag("secretary"), "salary" => 9999};
        assert!(t1.agrees_on(&t2, &attrs!["jobtype"]));
        assert!(!t1.agrees_on(&t2, &attrs!["salary"]));
        // t2 is not defined on typing-speed, so no agreement there.
        assert!(!t1.agrees_on(&t2, &attrs!["typing-speed"]));
        // Agreement on the empty set is vacuous.
        assert!(t1.agrees_on(&t2, &AttrSet::empty()));
    }

    #[test]
    fn defined_on_is_the_type_guard() {
        let t = secretary();
        assert!(t.defined_on(&attrs!["jobtype", "salary"]));
        assert!(!t.defined_on(&attrs!["jobtype", "products"]));
        assert!(t.defined_on(&AttrSet::empty()));
    }

    #[test]
    fn merge_and_joinability() {
        let left = tuple! {"a" => 1, "b" => 2};
        let right = tuple! {"b" => 2, "c" => 3};
        assert!(left.joinable_with(&right));
        let joined = left.merged_with(&right);
        assert_eq!(joined.attrs(), attrs!["a", "b", "c"]);

        let conflicting = tuple! {"b" => 99};
        assert!(!left.joinable_with(&conflicting));
        // Disjoint tuples are trivially joinable.
        assert!(left.joinable_with(&tuple! {"z" => 0}));
    }

    #[test]
    fn rename_moves_value() {
        let t = tuple! {"a" => 1};
        let r = t.rename(&Attr::new("a"), &Attr::new("b"));
        assert_eq!(r, tuple! {"b" => 1});
        // Renaming an absent attribute is a no-op.
        let r2 = t.rename(&Attr::new("zz"), &Attr::new("b"));
        assert_eq!(r2, t);
    }

    #[test]
    fn null_padding_round_trip() {
        let t = tuple! {"a" => 1};
        let universe = attrs!["a", "b", "c"];
        let padded = t.null_padded(&universe);
        assert_eq!(padded.arity(), 3);
        assert_eq!(padded.get_name("b"), Some(&Value::Null));
        assert_eq!(padded.without_nulls(), t);
    }

    #[test]
    fn display_is_paper_like() {
        let t = tuple! {"jobtype" => Value::tag("salesman"), "salary" => 100};
        let s = t.to_string();
        assert!(s.starts_with('<') && s.ends_with('>'));
        assert!(s.contains("jobtype: 'salesman'"));
    }

    #[test]
    fn shape_ids_are_interned_per_attribute_set() {
        let a = tuple! {"x" => 1, "y" => 2};
        let b = tuple! {"x" => 9, "y" => 0};
        let c = tuple! {"x" => 1};
        assert_eq!(a.shape_id(), b.shape_id(), "same shape, same id");
        assert_ne!(a.shape_id(), c.shape_id());
        assert_eq!(a.shape_id().attrs(), attrs!["x", "y"]);
        assert_eq!(ShapeId::intern(&attrs!["x", "y"]), a.shape_id());
        assert!(a.shape_id().to_string().starts_with('#'));
        assert_eq!(a.shape(), &attrs!["x", "y"]);
    }

    #[test]
    fn shape_id_tracks_mutation() {
        let mut t = tuple! {"x" => 1};
        let before = t.shape_id();
        t.insert("y", 2);
        assert_ne!(t.shape_id(), before);
        t.remove(&Attr::new("y"));
        assert_eq!(t.shape_id(), before);
    }

    #[test]
    fn hash_is_consistent_with_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |t: &Tuple| {
            let mut hasher = DefaultHasher::new();
            t.hash(&mut hasher);
            hasher.finish()
        };
        let a = tuple! {"x" => 1, "y" => "s"};
        let b = Tuple::new().with("y", "s").with("x", 1);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn insert_remove_get() {
        let mut t = Tuple::empty();
        assert!(t.is_empty());
        t.insert("x", 1);
        assert!(t.has_name("x"));
        assert!(t.has(&Attr::new("x")));
        assert_eq!(t.remove(&Attr::new("x")), Some(Value::Int(1)));
        assert!(t.is_empty());
    }

    /// Shared-value soundness: the process-wide shape interner hands every
    /// thread the same dense id for the same attribute set, and resolved
    /// shapes round-trip — the invariant the concurrent storage layer
    /// (partition keys are `ShapeId`s) builds on.
    #[test]
    fn shape_interning_is_consistent_across_threads() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Tuple>();
        assert_send_sync::<ShapeId>();
        assert_send_sync::<Value>();
        assert_send_sync::<AttrSet>();

        let shapes: Vec<AttrSet> = (0..32)
            .map(|i| AttrSet::from_names((0..=(i % 5)).map(|k| format!("xthread-{}-{}", i % 7, k))))
            .collect();
        let mut per_thread: Vec<Vec<ShapeId>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let shapes = &shapes;
                    s.spawn(move || shapes.iter().map(ShapeId::intern).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().unwrap());
            }
        });
        for ids in &per_thread[1..] {
            assert_eq!(ids, &per_thread[0], "interning must agree across threads");
        }
        for (shape, id) in shapes.iter().zip(&per_thread[0]) {
            assert_eq!(&id.attrs(), shape, "ids resolve back to their shape");
        }
    }
}
