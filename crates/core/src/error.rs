//! Error types for the core model.

use std::fmt;

/// Result alias used throughout `flexrel-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the flexible-relation model, the dependency machinery and
/// the type checker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A scheme definition is malformed (e.g. cardinalities out of range).
    InvalidScheme(String),
    /// An explicit AD definition is malformed (e.g. overlapping value sets
    /// `Vi ∩ Vj ≠ ∅`, or a variant `Yi ⊄ Y`).
    InvalidDependency(String),
    /// A tuple's attribute set is not in `dnf(FS)`, i.e. the tuple is outside
    /// `dom(FS)`.
    SchemeViolation {
        /// The offending tuple's attribute set.
        tuple_attrs: String,
        /// The scheme it was checked against.
        scheme: String,
    },
    /// A tuple violates an attribute dependency (Def. 2.1 / 4.1).
    AdViolation {
        /// Human-readable rendering of the violated dependency.
        dependency: String,
        /// Explanation of how the tuple violates it.
        detail: String,
    },
    /// A tuple violates a functional dependency (Def. 4.2).
    FdViolation { dependency: String, detail: String },
    /// A value lies outside its attribute's domain.
    DomainViolation {
        attr: String,
        value: String,
        domain: String,
    },
    /// A tuple refers to an attribute that is unknown in the context at hand.
    UnknownAttribute(String),
    /// A named relation (or other catalog object) was not found.
    NotFound(String),
    /// A query, plan or expression is invalid.
    Invalid(String),
    /// A statement exceeded its execution deadline and was cancelled.  The
    /// payload describes the budget that was exhausted; partial results are
    /// never returned alongside this error.
    Timeout(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidScheme(msg) => write!(f, "invalid flexible scheme: {}", msg),
            CoreError::InvalidDependency(msg) => write!(f, "invalid dependency: {}", msg),
            CoreError::SchemeViolation {
                tuple_attrs,
                scheme,
            } => write!(
                f,
                "tuple attributes {} are not an admissible combination of scheme {}",
                tuple_attrs, scheme
            ),
            CoreError::AdViolation { dependency, detail } => {
                write!(
                    f,
                    "attribute dependency {} violated: {}",
                    dependency, detail
                )
            }
            CoreError::FdViolation { dependency, detail } => {
                write!(
                    f,
                    "functional dependency {} violated: {}",
                    dependency, detail
                )
            }
            CoreError::DomainViolation {
                attr,
                value,
                domain,
            } => write!(
                f,
                "value {} of attribute {} is outside its domain {}",
                value, attr, domain
            ),
            CoreError::UnknownAttribute(a) => write!(f, "unknown attribute {}", a),
            CoreError::NotFound(what) => write!(f, "not found: {}", what),
            CoreError::Invalid(msg) => write!(f, "invalid: {}", msg),
            CoreError::Timeout(msg) => write!(f, "statement timed out: {}", msg),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let e = CoreError::DomainViolation {
            attr: "salary".into(),
            value: "\"oops\"".into(),
            domain: "Int".into(),
        };
        let s = e.to_string();
        assert!(s.contains("salary") && s.contains("oops") && s.contains("Int"));

        let e = CoreError::SchemeViolation {
            tuple_attrs: "{A, B}".into(),
            scheme: "<2,2,{A,C}>".into(),
        };
        assert!(e.to_string().contains("{A, B}"));

        let e = CoreError::AdViolation {
            dependency: "{jobtype} --attr--> {typing-speed}".into(),
            detail: "tuple has jobtype='salesman' but carries typing-speed".into(),
        };
        assert!(e.to_string().contains("jobtype"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::NotFound("x".into()));
    }
}
