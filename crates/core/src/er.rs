//! Mapping of (enhanced) entity-relationship concepts onto flexible
//! relations (§3.1).
//!
//! A **predicate-defined specialization** of an entity type attaches, to each
//! subclass `i`, a predicate `pᵢ` over the entity's attributes; replacing the
//! predicate by its extension `Vᵢ = { v | pᵢ(v) }` turns the specialization
//! into an explicit attribute dependency — a one-to-one mapping.  The ER
//! classifications *disjoint vs. overlapping* and *total vs. partial* can be
//! read off the resulting EAD.

use std::fmt;

use crate::attr::AttrSet;
use crate::dep::{Ead, EadVariant};
use crate::error::{CoreError, Result};
use crate::tuple::Tuple;
use crate::value::{Domain, Value};

/// One subclass of a predicate-defined specialization.
#[derive(Clone, Debug, PartialEq)]
pub struct Subclass {
    /// The subclass name (e.g. "secretary_type").
    pub name: String,
    /// The determining values selecting this subclass (the predicate's
    /// extension `Vᵢ`, given explicitly as tuples over the determining
    /// attributes).
    pub selector: Vec<Tuple>,
    /// The additional attributes the subclass introduces (`Yᵢ`).
    pub attrs: AttrSet,
}

impl Subclass {
    /// Creates a subclass.
    pub fn new(name: impl Into<String>, selector: Vec<Tuple>, attrs: impl Into<AttrSet>) -> Self {
        Subclass {
            name: name.into(),
            selector,
            attrs: attrs.into(),
        }
    }
}

/// A predicate-defined specialization of an entity type.
#[derive(Clone, Debug, PartialEq)]
pub struct Specialization {
    /// Name of the specialized entity type (e.g. "employee").
    pub entity: String,
    /// The determining attributes the defining predicates range over.
    pub determining: AttrSet,
    /// The subclasses.
    pub subclasses: Vec<Subclass>,
}

/// How the subclasses of a specialization relate structurally (§3.1):
/// disjoint iff `Yᵢ ∩ Yⱼ = ∅` for `i ≠ j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overlap {
    Disjoint,
    Overlapping,
}

/// Whether every possible determining value selects some subclass
/// (`⋃ Vᵢ = Tup(X)`), judged against a finite enumeration of `Tup(X)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coverage {
    Total,
    Partial,
}

impl Specialization {
    /// Creates a specialization.
    pub fn new(
        entity: impl Into<String>,
        determining: impl Into<AttrSet>,
        subclasses: Vec<Subclass>,
    ) -> Self {
        Specialization {
            entity: entity.into(),
            determining: determining.into(),
            subclasses,
        }
    }

    /// The one-to-one mapping onto an explicit attribute dependency:
    /// the determining attributes become `X`, the union of all subclass
    /// attribute sets becomes `Y`, and each subclass contributes the variant
    /// `Vᵢ --exp.attr--> Yᵢ`.
    pub fn to_ead(&self) -> Result<Ead> {
        let y = self
            .subclasses
            .iter()
            .fold(AttrSet::empty(), |acc, s| acc.union(&s.attrs));
        let variants = self
            .subclasses
            .iter()
            .map(|s| EadVariant::new(s.selector.clone(), s.attrs.clone()))
            .collect();
        Ead::new(self.determining.clone(), y, variants)
    }

    /// Reconstructs a specialization from an EAD (the inverse direction of
    /// the one-to-one mapping); subclass names are synthesized.
    pub fn from_ead(entity: impl Into<String>, ead: &Ead) -> Self {
        let subclasses = ead
            .variants()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                Subclass::new(format!("variant_{}", i), v.values.clone(), v.attrs.clone())
            })
            .collect();
        Specialization {
            entity: entity.into(),
            determining: ead.lhs().clone(),
            subclasses,
        }
    }

    /// Disjoint vs. overlapping classification, inferred from the EAD.
    pub fn overlap(&self) -> Result<Overlap> {
        Ok(if self.to_ead()?.has_disjoint_variants() {
            Overlap::Disjoint
        } else {
            Overlap::Overlapping
        })
    }

    /// Total vs. partial classification against the cross product of the
    /// determining attributes' (finite) domains.
    pub fn coverage(&self, domains: &[(&str, &Domain)]) -> Result<Coverage> {
        let universe = enumerate_tuples(&self.determining, domains)?;
        let ead = self.to_ead()?;
        Ok(if ead.is_total_over(universe.iter()) {
            Coverage::Total
        } else {
            Coverage::Partial
        })
    }
}

impl fmt::Display for Specialization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "specialization of {} on {}",
            self.entity, self.determining
        )?;
        for s in &self.subclasses {
            writeln!(f, "  {} adds {}", s.name, s.attrs)?;
        }
        Ok(())
    }
}

/// Enumerates `Tup(X)` for finite domains: the cross product of the listed
/// attribute domains, each of which must be enumerable.
pub fn enumerate_tuples(x: &AttrSet, domains: &[(&str, &Domain)]) -> Result<Vec<Tuple>> {
    let mut per_attr: Vec<(String, Vec<Value>)> = Vec::new();
    for a in x.iter() {
        let dom = domains
            .iter()
            .find(|(name, _)| *name == a.name())
            .map(|(_, d)| *d)
            .ok_or_else(|| CoreError::UnknownAttribute(a.name().to_string()))?;
        let values = match dom {
            Domain::Enum(tags) => tags.iter().map(|t| Value::Tag(t.as_str().into())).collect(),
            Domain::Finite(vals) => vals.iter().cloned().collect(),
            Domain::Bool => vec![Value::Bool(false), Value::Bool(true)],
            Domain::IntRange(lo, hi) if hi - lo < 1_000 => (*lo..=*hi).map(Value::Int).collect(),
            other => {
                return Err(CoreError::Invalid(format!(
                    "domain {} of attribute {} is not enumerable",
                    other, a
                )))
            }
        };
        per_attr.push((a.name().to_string(), values));
    }
    let mut out = vec![Tuple::empty()];
    for (name, values) in per_attr {
        let mut next = Vec::with_capacity(out.len() * values.len());
        for t in &out {
            for v in &values {
                let mut t2 = t.clone();
                t2.insert(name.as_str(), v.clone());
                next.push(t2);
            }
        }
        out = next;
    }
    Ok(out)
}

/// The paper's running example as a specialization: employee specialized by
/// jobtype into secretary, software engineer and salesman.
pub fn employee_specialization() -> Specialization {
    let mk = |tag: &str| vec![Tuple::new().with("jobtype", Value::tag(tag))];
    Specialization::new(
        "employee",
        AttrSet::singleton("jobtype"),
        vec![
            Subclass::new(
                "secretary_type",
                mk("secretary"),
                AttrSet::from_names(["typing-speed", "foreign-languages"]),
            ),
            Subclass::new(
                "softw_eng_type",
                mk("software engineer"),
                AttrSet::from_names(["products", "programming-languages"]),
            ),
            Subclass::new(
                "salesman_type",
                mk("salesman"),
                AttrSet::from_names(["products", "sales-commission"]),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::dep::example2_jobtype_ead;

    #[test]
    fn employee_specialization_maps_to_example2_ead() {
        let spec = employee_specialization();
        let ead = spec.to_ead().unwrap();
        assert_eq!(ead, example2_jobtype_ead(), "the mapping is one-to-one");
    }

    #[test]
    fn round_trip_through_ead() {
        let spec = employee_specialization();
        let ead = spec.to_ead().unwrap();
        let back = Specialization::from_ead("employee", &ead);
        assert_eq!(back.determining, spec.determining);
        assert_eq!(back.subclasses.len(), spec.subclasses.len());
        for (a, b) in back.subclasses.iter().zip(spec.subclasses.iter()) {
            assert_eq!(a.selector, b.selector);
            assert_eq!(a.attrs, b.attrs);
        }
        assert_eq!(back.to_ead().unwrap(), ead);
    }

    #[test]
    fn employee_specialization_is_overlapping_and_total() {
        let spec = employee_specialization();
        assert_eq!(spec.overlap().unwrap(), Overlap::Overlapping);
        let jobdom = Domain::enumeration(["secretary", "software engineer", "salesman"]);
        assert_eq!(
            spec.coverage(&[("jobtype", &jobdom)]).unwrap(),
            Coverage::Total
        );
        let wider = Domain::enumeration(["secretary", "software engineer", "salesman", "manager"]);
        assert_eq!(
            spec.coverage(&[("jobtype", &wider)]).unwrap(),
            Coverage::Partial
        );
    }

    #[test]
    fn disjoint_specialization_detected() {
        let mk = |tag: &str| vec![Tuple::new().with("kind", Value::tag(tag))];
        let spec = Specialization::new(
            "address",
            attrs!["kind"],
            vec![
                Subclass::new("pobox", mk("pobox"), attrs!["PostOfficeBoxNumber"]),
                Subclass::new("street", mk("street"), attrs!["Street", "HouseNumber"]),
            ],
        );
        assert_eq!(spec.overlap().unwrap(), Overlap::Disjoint);
    }

    #[test]
    fn enumerate_tuples_cross_product() {
        let sexdom = Domain::enumeration(["female", "male"]);
        let msdom = Domain::enumeration(["single", "married"]);
        let tuples = enumerate_tuples(
            &attrs!["sex", "marital-status"],
            &[("sex", &sexdom), ("marital-status", &msdom)],
        )
        .unwrap();
        assert_eq!(tuples.len(), 4);
        assert!(tuples.iter().all(|t| t.arity() == 2));
    }

    #[test]
    fn enumerate_tuples_rejects_unbounded_domains() {
        let d = Domain::Int;
        assert!(enumerate_tuples(&attrs!["x"], &[("x", &d)]).is_err());
        assert!(enumerate_tuples(&attrs!["y"], &[("x", &d)]).is_err());
    }

    #[test]
    fn bool_and_range_domains_enumerate() {
        let b = Domain::Bool;
        let r = Domain::IntRange(1, 3);
        let tuples =
            enumerate_tuples(&attrs!["flag", "level"], &[("flag", &b), ("level", &r)]).unwrap();
        assert_eq!(tuples.len(), 6);
    }

    #[test]
    fn display_lists_subclasses() {
        let s = employee_specialization().to_string();
        assert!(s.contains("secretary_type"));
        assert!(s.contains("jobtype"));
    }
}
