//! Flexible relations: a flexible scheme, attached dependencies and an
//! instance of heterogeneous tuples.
//!
//! A flexible relation is the pair `FR = <FS, inst>` with
//! `inst ⊆ dom(FS) = ⋃_{X ∈ dnf(FS)} Tup(X)` (§2.1).  In addition to the
//! paper's definition we attach the declared dependencies (ADs/FDs) and the
//! attribute domains here, since they are needed for type checking (§3.1).

use std::collections::BTreeMap;
use std::fmt;

use crate::attr::{Attr, AttrSet};
use crate::dep::{Dependency, DependencySet};
use crate::error::{CoreError, Result};
use crate::scheme::FlexScheme;
use crate::tuple::Tuple;
use crate::value::Domain;

/// How strictly [`FlexRelation::insert`] checks incoming tuples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckLevel {
    /// No checking at all (bulk loads of pre-validated data).
    None,
    /// Only the existential constraint: `attr(t) ∈ dnf(FS)` and domains.
    SchemeOnly,
    /// Scheme, domains and all declared dependencies (full type checking).
    Full,
}

/// A flexible relation.
#[derive(Clone, Debug)]
pub struct FlexRelation {
    name: String,
    scheme: FlexScheme,
    domains: BTreeMap<Attr, Domain>,
    deps: DependencySet,
    tuples: Vec<Tuple>,
}

impl FlexRelation {
    /// Creates an empty flexible relation over the given scheme.
    pub fn new(name: impl Into<String>, scheme: FlexScheme) -> Self {
        FlexRelation {
            name: name.into(),
            scheme,
            domains: BTreeMap::new(),
            deps: DependencySet::new(),
            tuples: Vec::new(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `scheme(FR)`.
    pub fn scheme(&self) -> &FlexScheme {
        &self.scheme
    }

    /// `inst(FR)`.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples in the instance.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The declared dependencies.
    pub fn deps(&self) -> &DependencySet {
        &self.deps
    }

    /// The declared attribute domains.
    pub fn domains(&self) -> &BTreeMap<Attr, Domain> {
        &self.domains
    }

    /// All attributes of the scheme.
    pub fn attrs(&self) -> AttrSet {
        self.scheme.attrs()
    }

    /// Declares the domain of an attribute (builder style).
    pub fn with_domain(mut self, attr: impl Into<Attr>, domain: Domain) -> Self {
        self.domains.insert(attr.into(), domain);
        self
    }

    /// Declares a dependency (builder style).
    pub fn with_dep(mut self, dep: impl Into<Dependency>) -> Self {
        self.deps.add(dep);
        self
    }

    /// Declares a dependency.
    pub fn add_dep(&mut self, dep: impl Into<Dependency>) {
        self.deps.add(dep);
    }

    /// Declares the domain of an attribute.
    pub fn set_domain(&mut self, attr: impl Into<Attr>, domain: Domain) {
        self.domains.insert(attr.into(), domain);
    }

    /// The domain declared for an attribute, defaulting to [`Domain::Any`].
    pub fn domain_of(&self, attr: &Attr) -> Domain {
        self.domains.get(attr).cloned().unwrap_or(Domain::Any)
    }

    /// Validates a tuple against the scheme's existential constraint and the
    /// attribute domains (but not the dependencies).
    pub fn check_scheme(&self, t: &Tuple) -> Result<()> {
        if !self.scheme.admits(&t.attrs()) {
            return Err(CoreError::SchemeViolation {
                tuple_attrs: t.attrs().to_string(),
                scheme: self.scheme.to_string(),
            });
        }
        for (a, v) in t.iter() {
            if let Some(d) = self.domains.get(a) {
                d.check(a.name(), v)?;
            }
            if v.is_null() {
                return Err(CoreError::DomainViolation {
                    attr: a.name().to_string(),
                    value: "NULL".into(),
                    domain: "flexible relations model absence structurally, not with nulls".into(),
                });
            }
        }
        Ok(())
    }

    /// Validates a tuple against the declared dependencies relative to the
    /// current instance.
    pub fn check_deps(&self, t: &Tuple) -> Result<()> {
        self.deps.check_insert(&self.tuples, t)
    }

    /// Inserts a tuple with the requested checking level.
    pub fn insert_checked(&mut self, t: Tuple, level: CheckLevel) -> Result<()> {
        match level {
            CheckLevel::None => {}
            CheckLevel::SchemeOnly => self.check_scheme(&t)?,
            CheckLevel::Full => {
                self.check_scheme(&t)?;
                self.check_deps(&t)?;
            }
        }
        self.tuples.push(t);
        Ok(())
    }

    /// Inserts a tuple with full type checking (scheme, domains and
    /// dependencies).
    pub fn insert(&mut self, t: Tuple) -> Result<()> {
        self.insert_checked(t, CheckLevel::Full)
    }

    /// Inserts many tuples with full checking, stopping at the first error.
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Result<usize> {
        let mut n = 0;
        for t in tuples {
            self.insert(t)?;
            n += 1;
        }
        Ok(n)
    }

    /// Deletes all tuples matching the predicate, returning how many were
    /// removed.  Deletion can never violate a scheme or dependency.
    pub fn delete_where<F: FnMut(&Tuple) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| !pred(t));
        before - self.tuples.len()
    }

    /// Replaces a tuple at `index` after re-checking scheme and dependencies
    /// (an update may cause a *type change*, e.g. changing `jobtype`
    /// requires the variant attributes to change with it, §3.1 footnote 3).
    pub fn update(&mut self, index: usize, new: Tuple) -> Result<()> {
        if index >= self.tuples.len() {
            return Err(CoreError::NotFound(format!("tuple index {}", index)));
        }
        self.check_scheme(&new)?;
        // Check dependencies against the instance *without* the tuple being
        // replaced.
        let mut others: Vec<Tuple> = Vec::with_capacity(self.tuples.len() - 1);
        others.extend(self.tuples[..index].iter().cloned());
        others.extend(self.tuples[index + 1..].iter().cloned());
        self.deps.check_insert(&others, &new)?;
        self.tuples[index] = new;
        Ok(())
    }

    /// Whether the *entire current instance* satisfies scheme and
    /// dependencies.  Useful after bulk loads with [`CheckLevel::None`].
    pub fn validate_instance(&self) -> Result<()> {
        for t in &self.tuples {
            self.check_scheme(t)?;
        }
        if let Some(v) = self.deps.first_violation(&self.tuples) {
            return Err(CoreError::Invalid(format!(
                "instance violates dependency {}",
                v
            )));
        }
        Ok(())
    }

    /// Groups the instance by `attr(t)`, yielding each occurring attribute
    /// combination with its tuple count.  This is the "set of objects" view
    /// of the instance.
    pub fn shape_histogram(&self) -> BTreeMap<AttrSet, usize> {
        let mut out = BTreeMap::new();
        for t in &self.tuples {
            *out.entry(t.attrs()).or_insert(0) += 1;
        }
        out
    }

    /// Builds a relation directly from parts without checking (used by the
    /// algebra, whose outputs are correct by construction).
    pub fn from_parts(
        name: impl Into<String>,
        scheme: FlexScheme,
        domains: BTreeMap<Attr, Domain>,
        deps: DependencySet,
        tuples: Vec<Tuple>,
    ) -> Self {
        FlexRelation {
            name: name.into(),
            scheme,
            domains,
            deps,
            tuples,
        }
    }

    /// Renames the relation.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for FlexRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} :: {}", self.name, self.scheme)?;
        for t in &self.tuples {
            writeln!(f, "  {}", t)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{example2_jobtype_ead, Fd};
    use crate::scheme::{Component, SchemeBuilder};
    use crate::value::Value;
    use crate::{attrs, tuple};

    /// The employee relation of §1/§3: empno, name, salary, jobtype are
    /// unconditioned; the variant attributes form a nested optional group.
    pub fn employee_relation() -> FlexRelation {
        let variant_group = FlexScheme::new(
            0,
            5,
            vec![
                Component::from("typing-speed"),
                Component::from("foreign-languages"),
                Component::from("products"),
                Component::from("programming-languages"),
                Component::from("sales-commission"),
            ],
        )
        .unwrap();
        let scheme = SchemeBuilder::all_of(["empno", "name", "salary", "jobtype"])
            .nested(variant_group)
            .build()
            .unwrap();
        FlexRelation::new("employee", scheme)
            .with_domain("empno", Domain::Int)
            .with_domain("salary", Domain::Float)
            .with_domain(
                "jobtype",
                Domain::enumeration(["secretary", "software engineer", "salesman"]),
            )
            .with_dep(example2_jobtype_ead())
            .with_dep(Fd::new(
                attrs!["empno"],
                attrs!["name", "salary", "jobtype"],
            ))
    }

    fn secretary(empno: i64) -> Tuple {
        tuple! {
            "empno" => empno,
            "name" => format!("sec{empno}"),
            "salary" => 4000 + empno,
            "jobtype" => Value::tag("secretary"),
            "typing-speed" => 300,
            "foreign-languages" => "french"
        }
    }

    fn salesman(empno: i64) -> Tuple {
        tuple! {
            "empno" => empno,
            "name" => format!("sales{empno}"),
            "salary" => 5000 + empno,
            "jobtype" => Value::tag("salesman"),
            "products" => "crm",
            "sales-commission" => 12
        }
    }

    #[test]
    fn insert_valid_tuples() {
        let mut rel = employee_relation();
        rel.insert(secretary(1)).unwrap();
        rel.insert(salesman(2)).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.validate_instance().is_ok());
    }

    #[test]
    fn scheme_only_check_admits_what_full_check_rejects() {
        // The invalid salesman tuple of §3.1: scheme-wise fine (jobtype,
        // typing-speed, foreign-languages is an admissible combination), but
        // the EAD rejects it.
        let mut rel = employee_relation();
        let bad = tuple! {
            "empno" => 9,
            "name" => "bad",
            "salary" => 1000,
            "jobtype" => Value::tag("salesman"),
            "typing-speed" => 999,
            "foreign-languages" => "french, russian"
        };
        assert!(
            rel.check_scheme(&bad).is_ok(),
            "scheme alone cannot reject this tuple"
        );
        let err = rel.insert(bad).unwrap_err();
        assert!(matches!(err, CoreError::AdViolation { .. }));
        assert_eq!(rel.len(), 0);
    }

    #[test]
    fn scheme_violation_detected() {
        let mut rel = employee_relation();
        let missing_jobtype = tuple! {"empno" => 1, "name" => "x", "salary" => 1};
        assert!(matches!(
            rel.insert(missing_jobtype).unwrap_err(),
            CoreError::SchemeViolation { .. }
        ));
    }

    #[test]
    fn domain_violation_detected() {
        let mut rel = employee_relation();
        let bad_domain = tuple! {
            "empno" => 1,
            "name" => "x",
            "salary" => 100,
            "jobtype" => Value::tag("astronaut")
        };
        assert!(matches!(
            rel.insert(bad_domain).unwrap_err(),
            CoreError::DomainViolation { .. }
        ));
    }

    #[test]
    fn nulls_are_rejected() {
        let mut rel = employee_relation();
        let withnull = tuple! {
            "empno" => 1,
            "name" => "x",
            "salary" => 100,
            "jobtype" => Value::Null
        };
        assert!(rel.insert(withnull).is_err());
    }

    #[test]
    fn fd_violation_detected() {
        let mut rel = employee_relation();
        rel.insert(secretary(1)).unwrap();
        let mut clash = secretary(1);
        clash.insert("salary", 1);
        assert!(matches!(
            rel.insert(clash).unwrap_err(),
            CoreError::FdViolation { .. }
        ));
    }

    #[test]
    fn update_enforces_type_change() {
        // Footnote 3: changing the jobtype causes a type change; updating
        // jobtype without adapting the variant attributes must fail.
        let mut rel = employee_relation();
        rel.insert(secretary(1)).unwrap();
        let mut changed = secretary(1);
        changed.insert("jobtype", Value::tag("salesman"));
        assert!(rel.update(0, changed).is_err());

        let mut proper = secretary(1);
        proper.insert("jobtype", Value::tag("salesman"));
        proper.remove(&Attr::new("typing-speed"));
        proper.remove(&Attr::new("foreign-languages"));
        proper.insert("products", "crm");
        proper.insert("sales-commission", 9);
        rel.update(0, proper).unwrap();
        assert!(rel.validate_instance().is_ok());
    }

    #[test]
    fn update_out_of_range() {
        let mut rel = employee_relation();
        assert!(rel.update(5, secretary(1)).is_err());
    }

    #[test]
    fn delete_where_counts() {
        let mut rel = employee_relation();
        rel.insert(secretary(1)).unwrap();
        rel.insert(salesman(2)).unwrap();
        rel.insert(secretary(3)).unwrap();
        let removed = rel.delete_where(|t| t.get_name("jobtype") == Some(&Value::tag("secretary")));
        assert_eq!(removed, 2);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn bulk_load_then_validate() {
        let mut rel = employee_relation();
        rel.insert_checked(secretary(1), CheckLevel::None).unwrap();
        rel.insert_checked(salesman(2), CheckLevel::None).unwrap();
        assert!(rel.validate_instance().is_ok());
        rel.insert_checked(
            tuple! {"empno" => 3, "name" => "b", "salary" => 1, "jobtype" => Value::tag("secretary"), "products" => "x"},
            CheckLevel::None,
        )
        .unwrap();
        assert!(rel.validate_instance().is_err());
    }

    #[test]
    fn shape_histogram_groups_by_attr_sets() {
        let mut rel = employee_relation();
        rel.insert(secretary(1)).unwrap();
        rel.insert(secretary(2)).unwrap();
        rel.insert(salesman(3)).unwrap();
        let hist = rel.shape_histogram();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist.values().sum::<usize>(), 3);
        assert!(hist.values().any(|&c| c == 2));
    }

    #[test]
    fn insert_all_reports_count() {
        let mut rel = employee_relation();
        let n = rel.insert_all(vec![secretary(1), salesman(2)]).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn display_shows_scheme_and_tuples() {
        let mut rel = employee_relation();
        rel.insert(secretary(1)).unwrap();
        let s = rel.to_string();
        assert!(s.contains("employee ::"));
        assert!(s.contains("'secretary'"));
    }
}
