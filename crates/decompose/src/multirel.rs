//! The Ahad & Basu "multirelation" baseline (§5, related work).
//!
//! The multirelation model decomposes an entity into a master relation and
//! depending relations and records the connection via **image attributes**:
//! attributes whose domain consists of *relation names*.  A master tuple's
//! image attribute names the depending relation that holds its variant part,
//! so restoration can be automated.  The paper observes that an image
//! attribute is a special case of an attribute dependency with a single
//! artificial attribute as determinant — this module makes that equivalence
//! executable ([`MultiRelation::induced_ead`]).

use std::collections::BTreeMap;

use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::dep::{Ead, EadVariant};
use flexrel_core::error::{CoreError, Result};
use flexrel_core::relation::FlexRelation;
use flexrel_core::scheme::FlexScheme;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;

use flexrel_algebra::ops::{natural_join, outer_union};

/// A multirelation: master + named depending relations + the image attribute
/// connecting them.
#[derive(Clone, Debug)]
pub struct MultiRelation {
    /// The image attribute added to the master relation.
    pub image_attr: Attr,
    /// The join key shared by master and depending relations.
    pub key: AttrSet,
    /// The master relation (unconditioned attributes + image attribute).
    pub master: FlexRelation,
    /// The depending relations, addressed by name (the image attribute's
    /// domain).
    pub depending: BTreeMap<String, FlexRelation>,
}

impl MultiRelation {
    /// Total stored tuples.
    pub fn total_tuples(&self) -> usize {
        self.master.len() + self.depending.values().map(|r| r.len()).sum::<usize>()
    }

    /// Restores the original heterogeneous relation: for each depending
    /// relation, join the master tuples whose image attribute names it, then
    /// outer-union the pieces (and append master tuples pointing nowhere).
    pub fn restore(&self) -> Result<FlexRelation> {
        let mut pieces: Vec<FlexRelation> = Vec::new();
        for (name, dep_rel) in &self.depending {
            let selected: Vec<Tuple> = self
                .master
                .tuples()
                .iter()
                .filter(|t| {
                    t.get(&self.image_attr)
                        .map(|v| v.as_str() == Some(name.as_str()))
                        == Some(true)
                })
                .map(|t| {
                    let mut t = t.clone();
                    t.remove(&self.image_attr);
                    t
                })
                .collect();
            if selected.is_empty() {
                continue;
            }
            let selected_rel = FlexRelation::from_parts(
                format!("{}_sel_{}", self.master.name(), name),
                flexrel_algebra::schemes::project_scheme(
                    self.master.scheme(),
                    &self.master.attrs().difference(&self.image_attr.to_set()),
                )
                .ok_or_else(|| CoreError::Invalid("master has no attributes".into()))?,
                self.master.domains().clone(),
                flexrel_core::dep::DependencySet::new(),
                selected,
            );
            pieces.push(natural_join(&selected_rel, dep_rel)?);
        }
        // Master tuples whose image attribute names no depending relation.
        let orphans: Vec<Tuple> = self
            .master
            .tuples()
            .iter()
            .filter(|t| {
                t.get(&self.image_attr)
                    .and_then(|v| v.as_str())
                    .map(|n| !self.depending.contains_key(n))
                    .unwrap_or(true)
            })
            .map(|t| {
                let mut t = t.clone();
                t.remove(&self.image_attr);
                t
            })
            .collect();
        if !orphans.is_empty() {
            let shapes: std::collections::BTreeSet<AttrSet> =
                orphans.iter().map(|t| t.attrs()).collect();
            pieces.push(FlexRelation::from_parts(
                format!("{}_orphans", self.master.name()),
                flexrel_algebra::schemes::covering_scheme(&shapes)?,
                self.master.domains().clone(),
                flexrel_core::dep::DependencySet::new(),
                orphans,
            ));
        }
        let mut acc: Option<FlexRelation> = None;
        for p in pieces {
            acc = Some(match acc {
                None => p,
                Some(prev) => outer_union(&prev, &p)?,
            });
        }
        acc.ok_or_else(|| CoreError::Invalid("cannot restore an empty multirelation".into()))
    }

    /// The attribute dependency the image attribute induces: the image
    /// attribute (an artificial single-attribute determinant) determines
    /// which depending relation's attributes are present — exactly the
    /// special case of an EAD the paper describes.
    pub fn induced_ead(&self) -> Result<Ead> {
        let mut y = AttrSet::empty();
        let mut variants = Vec::new();
        for (name, rel) in &self.depending {
            let attrs = rel.attrs().difference(&self.key);
            y.extend_with(&attrs);
            variants.push(EadVariant::new(
                vec![Tuple::new().with(self.image_attr.clone(), Value::tag(name.clone()))],
                attrs,
            ));
        }
        Ead::new(self.image_attr.to_set(), y, variants)
    }
}

/// Decomposes a flexible relation into a multirelation along an EAD: the
/// master keeps the unconditioned attributes plus an image attribute naming
/// the depending relation holding the tuple's variant part; one depending
/// relation is created per EAD variant.
pub fn multirel_decompose(rel: &FlexRelation, ead: &Ead, key: &AttrSet) -> Result<MultiRelation> {
    let master_attrs = rel.attrs().difference(ead.rhs());
    if !key.is_subset(&master_attrs) {
        return Err(CoreError::Invalid(format!(
            "the key {} must be part of the unconditioned attributes {}",
            key, master_attrs
        )));
    }
    let image_attr = Attr::new("image");
    let mut depending: BTreeMap<String, FlexRelation> = BTreeMap::new();
    let mut master_tuples: Vec<Tuple> = Vec::with_capacity(rel.len());

    // Prepare empty depending relations, one per variant.
    let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); ead.variants().len()];
    for t in rel.tuples() {
        let variant = if t.defined_on(ead.lhs()) {
            ead.variant_for(&t.project(ead.lhs())).map(|(i, _)| i)
        } else {
            None
        };
        let mut m = t.project(&master_attrs);
        match variant {
            Some(i) => {
                let detail_attrs = key.union(&ead.variants()[i].attrs);
                buckets[i].push(t.project(&detail_attrs));
                m.insert(
                    image_attr.clone(),
                    Value::tag(format!("{}_detail_{}", rel.name(), i)),
                );
            }
            None => {
                m.insert(image_attr.clone(), Value::tag("none"));
            }
        }
        master_tuples.push(m);
    }
    for (i, tuples) in buckets.into_iter().enumerate() {
        let name = format!("{}_detail_{}", rel.name(), i);
        let detail_attrs = key.union(&ead.variants()[i].attrs);
        depending.insert(
            name.clone(),
            FlexRelation::from_parts(
                name,
                FlexScheme::relational(detail_attrs.clone()),
                rel.domains()
                    .iter()
                    .filter(|(a, _)| detail_attrs.contains(a))
                    .map(|(a, d)| (a.clone(), d.clone()))
                    .collect(),
                flexrel_core::dep::DependencySet::new(),
                tuples,
            ),
        );
    }

    let master_scheme = {
        let base = flexrel_algebra::schemes::project_scheme(rel.scheme(), &master_attrs)
            .ok_or_else(|| CoreError::Invalid("master projection retains no attribute".into()))?;
        flexrel_algebra::schemes::extend_scheme(&base, &image_attr)?
    };
    let master = FlexRelation::from_parts(
        format!("{}_master", rel.name()),
        master_scheme,
        rel.domains()
            .iter()
            .filter(|(a, _)| master_attrs.contains(a))
            .map(|(a, d)| (a.clone(), d.clone()))
            .collect(),
        flexrel_algebra::propagate::project_deps(rel.deps(), &master_attrs),
        master_tuples,
    );
    Ok(MultiRelation {
        image_attr,
        key: key.clone(),
        master,
        depending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;
    use flexrel_core::dep::example2_jobtype_ead;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};
    use std::collections::BTreeSet;

    fn loaded(n: usize) -> FlexRelation {
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            rel.insert(t).unwrap();
        }
        rel
    }

    #[test]
    fn decomposition_structure() {
        let rel = loaded(90);
        let m = multirel_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        assert_eq!(m.master.len(), 90);
        assert_eq!(m.depending.len(), 3);
        assert_eq!(m.total_tuples(), 180);
        // Every master tuple carries the image attribute.
        assert!(m.master.tuples().iter().all(|t| t.has(&m.image_attr)));
    }

    #[test]
    fn restore_round_trips() {
        let rel = loaded(70);
        let m = multirel_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        let restored = m.restore().unwrap();
        let back: BTreeSet<Tuple> = restored.tuples().iter().cloned().collect();
        let original: BTreeSet<Tuple> = rel.tuples().iter().cloned().collect();
        assert_eq!(back, original);
    }

    #[test]
    fn image_attribute_induces_an_ead() {
        // The paper: image attributes are a special case of an AD with a
        // single artificial determinant.  The induced EAD must prescribe,
        // per depending relation, exactly its variant attributes.
        let rel = loaded(30);
        let m = multirel_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        let ead = m.induced_ead().unwrap();
        assert_eq!(ead.lhs(), &attrs!["image"]);
        assert_eq!(ead.variants().len(), 3);
        // The restored master+image view satisfies the induced EAD: each
        // master tuple joined with its variant part carries exactly the
        // variant attributes its image names.
        let mut joined: Vec<Tuple> = Vec::new();
        for t in m.master.tuples() {
            let image = t.get(&m.image_attr).unwrap().as_str().unwrap().to_string();
            let detail = &m.depending[&image];
            for d in detail.tuples() {
                if d.agrees_on(t, &m.key) {
                    joined.push(t.merged_with(d));
                }
            }
        }
        assert!(ead.satisfied_by(&joined));
    }

    #[test]
    fn orphan_master_tuples_survive_restore() {
        let rel = loaded(20);
        let mut m = multirel_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        // Remove one depending relation: its masters become orphans and come
        // back without their variant attributes.
        let removed = m.depending.remove(&format!("{}_detail_0", rel.name()));
        assert!(removed.is_some());
        let restored = m.restore().unwrap();
        assert_eq!(restored.len(), rel.len());
    }

    #[test]
    fn key_must_be_unconditioned() {
        let rel = loaded(5);
        assert!(
            multirel_decompose(&rel, &example2_jobtype_ead(), &attrs!["sales-commission"]).is_err()
        );
    }
}
