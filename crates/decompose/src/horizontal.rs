//! Horizontal decomposition along an EAD (§3.1.1).
//!
//! The entity is split into one fragment per EAD variant (the tuples whose
//! determining values select that variant) plus a rest fragment for tuples
//! selecting no variant.  Restoring the entity requires an **outer union**
//! instead of a plain union because the fragments have different shapes.

use flexrel_core::dep::Ead;
use flexrel_core::error::{CoreError, Result};
use flexrel_core::relation::FlexRelation;
use flexrel_core::tuple::Tuple;

use flexrel_algebra::ops::outer_union;

/// The result of a horizontal decomposition.
#[derive(Clone, Debug)]
pub struct HorizontalDecomposition {
    /// The EAD that guided the decomposition.
    pub ead: Ead,
    /// One fragment per EAD variant, in variant order.
    pub fragments: Vec<FlexRelation>,
    /// Tuples whose determining value selects no variant.
    pub rest: FlexRelation,
}

impl HorizontalDecomposition {
    /// Total number of tuples across all fragments.
    pub fn total_tuples(&self) -> usize {
        self.fragments.iter().map(|f| f.len()).sum::<usize>() + self.rest.len()
    }

    /// Restores the original relation by outer union of all fragments.
    pub fn restore(&self) -> Result<FlexRelation> {
        let mut acc: Option<FlexRelation> = None;
        for frag in self.fragments.iter().chain(std::iter::once(&self.rest)) {
            if frag.is_empty() {
                continue;
            }
            acc = Some(match acc {
                None => frag.clone(),
                Some(prev) => outer_union(&prev, frag)?,
            });
        }
        acc.ok_or_else(|| CoreError::Invalid("cannot restore an empty decomposition".into()))
    }

    /// The fragment holding the given variant index.
    pub fn fragment(&self, variant: usize) -> Option<&FlexRelation> {
        self.fragments.get(variant)
    }
}

/// Horizontally decomposes `rel` along `ead`.
///
/// Each fragment keeps the original scheme and dependency set (a fragment is
/// just a restriction of the instance, so everything that held before still
/// holds); what changes is the instance.
pub fn horizontal_decompose(rel: &FlexRelation, ead: &Ead) -> Result<HorizontalDecomposition> {
    if !ead.lhs().is_subset(&rel.attrs()) {
        return Err(CoreError::InvalidDependency(format!(
            "the EAD determinant {} is not part of relation {}",
            ead.lhs(),
            rel.name()
        )));
    }
    let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); ead.variants().len()];
    let mut rest: Vec<Tuple> = Vec::new();
    for t in rel.tuples() {
        if t.defined_on(ead.lhs()) {
            match ead.variant_for(&t.project(ead.lhs())) {
                Some((i, _)) => buckets[i].push(t.clone()),
                None => rest.push(t.clone()),
            }
        } else {
            rest.push(t.clone());
        }
    }
    let fragments = buckets
        .into_iter()
        .enumerate()
        .map(|(i, tuples)| {
            FlexRelation::from_parts(
                format!("{}_variant_{}", rel.name(), i),
                rel.scheme().clone(),
                rel.domains().clone(),
                rel.deps().clone(),
                tuples,
            )
        })
        .collect();
    let rest = FlexRelation::from_parts(
        format!("{}_rest", rel.name()),
        rel.scheme().clone(),
        rel.domains().clone(),
        rel.deps().clone(),
        rest,
    );
    Ok(HorizontalDecomposition {
        ead: ead.clone(),
        fragments,
        rest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::dep::example2_jobtype_ead;
    use flexrel_core::value::Value;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};
    use std::collections::BTreeSet;

    fn loaded_employees(n: usize) -> FlexRelation {
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            rel.insert(t).unwrap();
        }
        rel
    }

    #[test]
    fn fragments_partition_the_instance() {
        let rel = loaded_employees(300);
        let d = horizontal_decompose(&rel, &example2_jobtype_ead()).unwrap();
        assert_eq!(d.fragments.len(), 3);
        assert_eq!(d.total_tuples(), rel.len());
        assert!(d.rest.is_empty(), "every employee matches a variant");
        // Each fragment is variant-pure.
        for (i, frag) in d.fragments.iter().enumerate() {
            for t in frag.tuples() {
                let (vi, _) = d
                    .ead
                    .variant_for(&t.project(d.ead.lhs()))
                    .expect("tuple matches a variant");
                assert_eq!(vi, i);
            }
        }
    }

    #[test]
    fn restore_round_trips_the_instance() {
        let rel = loaded_employees(200);
        let d = horizontal_decompose(&rel, &example2_jobtype_ead()).unwrap();
        let restored = d.restore().unwrap();
        let original: BTreeSet<_> = rel.tuples().iter().cloned().collect();
        let back: BTreeSet<_> = restored.tuples().iter().cloned().collect();
        assert_eq!(original, back);
    }

    #[test]
    fn unmatched_tuples_go_to_rest() {
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(10)) {
            rel.insert(t).unwrap();
        }
        // An EAD over a *different* tag set: employees with an unmatched
        // jobtype end up in the rest fragment.
        let mk =
            |tag: &str| vec![flexrel_core::tuple::Tuple::new().with("jobtype", Value::tag(tag))];
        let partial_ead = Ead::new(
            flexrel_core::attr::AttrSet::singleton("jobtype"),
            flexrel_core::attr::AttrSet::from_names(["typing-speed", "foreign-languages"]),
            vec![flexrel_core::dep::EadVariant::new(
                mk("secretary"),
                flexrel_core::attr::AttrSet::from_names(["typing-speed", "foreign-languages"]),
            )],
        )
        .unwrap();
        let d = horizontal_decompose(&rel, &partial_ead).unwrap();
        assert_eq!(d.fragments.len(), 1);
        assert_eq!(d.total_tuples(), rel.len());
        assert!(d.fragment(0).unwrap().len() + d.rest.len() == rel.len());
        assert!(d.fragment(7).is_none());
    }

    #[test]
    fn decompose_rejects_foreign_ead() {
        let rel = loaded_employees(5);
        let mk = |tag: &str| vec![flexrel_core::tuple::Tuple::new().with("kind", Value::tag(tag))];
        let foreign = Ead::new(
            flexrel_core::attr::AttrSet::singleton("kind"),
            flexrel_core::attr::AttrSet::singleton("Street"),
            vec![flexrel_core::dep::EadVariant::new(
                mk("street"),
                flexrel_core::attr::AttrSet::singleton("Street"),
            )],
        )
        .unwrap();
        assert!(horizontal_decompose(&rel, &foreign).is_err());
    }

    #[test]
    fn restoring_an_empty_decomposition_fails() {
        let rel = employee_relation();
        let d = horizontal_decompose(&rel, &example2_jobtype_ead()).unwrap();
        assert!(d.restore().is_err());
    }
}
