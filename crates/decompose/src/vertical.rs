//! Vertical decomposition along an EAD (§3.1.1).
//!
//! The entity is split into a **master** relation holding the unconditioned
//! attributes (`W − Y`) and one **depending** relation per EAD variant
//! holding the key plus that variant's attributes (`K ∪ Yi`).  Restoring the
//! entity requires a **multiway join** instead of a single natural join.

use flexrel_core::attr::AttrSet;
use flexrel_core::dep::Ead;
use flexrel_core::error::{CoreError, Result};
use flexrel_core::relation::FlexRelation;
use flexrel_core::scheme::FlexScheme;
use flexrel_core::tuple::Tuple;

use flexrel_algebra::ops::{natural_join, outer_union};

/// The result of a vertical decomposition.
#[derive(Clone, Debug)]
pub struct VerticalDecomposition {
    /// The EAD that guided the decomposition.
    pub ead: Ead,
    /// The key attributes shared by master and depending relations.
    pub key: AttrSet,
    /// The master relation over the unconditioned attributes.
    pub master: FlexRelation,
    /// One depending relation per EAD variant, in variant order.
    pub details: Vec<FlexRelation>,
}

impl VerticalDecomposition {
    /// Total number of stored tuples across master and depending relations.
    pub fn total_tuples(&self) -> usize {
        self.master.len() + self.details.iter().map(|d| d.len()).sum::<usize>()
    }

    /// Restores the original relation: the master is joined with each
    /// depending relation (multiway join) and the per-variant results are
    /// recombined with an outer union; master tuples without any variant
    /// part are appended unchanged.
    pub fn restore(&self) -> Result<FlexRelation> {
        let mut pieces: Vec<FlexRelation> = Vec::new();
        let mut matched_keys: std::collections::BTreeSet<Tuple> = std::collections::BTreeSet::new();
        for detail in &self.details {
            if detail.is_empty() {
                continue;
            }
            for t in detail.tuples() {
                matched_keys.insert(t.project(&self.key));
            }
            pieces.push(natural_join(&self.master, detail)?);
        }
        // Master tuples that have no variant part at all.
        let unmatched: Vec<Tuple> = self
            .master
            .tuples()
            .iter()
            .filter(|t| !matched_keys.contains(&t.project(&self.key)))
            .cloned()
            .collect();
        if !unmatched.is_empty() {
            pieces.push(FlexRelation::from_parts(
                format!("{}_unmatched", self.master.name()),
                self.master.scheme().clone(),
                self.master.domains().clone(),
                self.master.deps().clone(),
                unmatched,
            ));
        }
        let mut acc: Option<FlexRelation> = None;
        for p in pieces {
            acc = Some(match acc {
                None => p,
                Some(prev) => outer_union(&prev, &p)?,
            });
        }
        acc.ok_or_else(|| CoreError::Invalid("cannot restore an empty decomposition".into()))
    }
}

/// Vertically decomposes `rel` along `ead`, using `key` as the join key
/// (typically the relation's primary key, e.g. `empno`).
pub fn vertical_decompose(
    rel: &FlexRelation,
    ead: &Ead,
    key: &AttrSet,
) -> Result<VerticalDecomposition> {
    let master_attrs = rel.attrs().difference(ead.rhs());
    if !key.is_subset(&master_attrs) {
        return Err(CoreError::Invalid(format!(
            "the key {} must be part of the unconditioned attributes {}",
            key, master_attrs
        )));
    }
    if !ead.lhs().is_subset(&rel.attrs()) {
        return Err(CoreError::InvalidDependency(format!(
            "the EAD determinant {} is not part of relation {}",
            ead.lhs(),
            rel.name()
        )));
    }

    // Master: projection of every tuple onto the unconditioned attributes.
    let master_tuples: Vec<Tuple> = rel
        .tuples()
        .iter()
        .map(|t| t.project(&master_attrs))
        .collect();
    let master_scheme = flexrel_algebra::schemes::project_scheme(rel.scheme(), &master_attrs)
        .ok_or_else(|| CoreError::Invalid("master projection retains no attribute".into()))?;
    let master = FlexRelation::from_parts(
        format!("{}_master", rel.name()),
        master_scheme,
        rel.domains()
            .iter()
            .filter(|(a, _)| master_attrs.contains(a))
            .map(|(a, d)| (a.clone(), d.clone()))
            .collect(),
        flexrel_algebra::propagate::project_deps(rel.deps(), &master_attrs),
        master_tuples,
    );

    // One depending relation per variant: key + Yi, homogeneous schemes.
    let mut details = Vec::with_capacity(ead.variants().len());
    for (i, variant) in ead.variants().iter().enumerate() {
        let detail_attrs = key.union(&variant.attrs);
        let tuples: Vec<Tuple> = rel
            .tuples()
            .iter()
            .filter(|t| {
                t.defined_on(ead.lhs())
                    && ead
                        .variant_for(&t.project(ead.lhs()))
                        .map(|(vi, _)| vi == i)
                        .unwrap_or(false)
            })
            .map(|t| t.project(&detail_attrs))
            .collect();
        let scheme = FlexScheme::relational(detail_attrs.clone());
        details.push(FlexRelation::from_parts(
            format!("{}_detail_{}", rel.name(), i),
            scheme,
            rel.domains()
                .iter()
                .filter(|(a, _)| detail_attrs.contains(a))
                .map(|(a, d)| (a.clone(), d.clone()))
                .collect(),
            flexrel_core::dep::DependencySet::new(),
            tuples,
        ));
    }
    Ok(VerticalDecomposition {
        ead: ead.clone(),
        key: key.clone(),
        master,
        details,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::attrs;
    use flexrel_core::dep::example2_jobtype_ead;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};
    use std::collections::BTreeSet;

    fn loaded_employees(n: usize) -> FlexRelation {
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            rel.insert(t).unwrap();
        }
        rel
    }

    #[test]
    fn master_and_details_have_expected_shapes() {
        let rel = loaded_employees(120);
        let d = vertical_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        assert_eq!(d.master.len(), 120);
        assert_eq!(d.details.len(), 3);
        assert_eq!(
            d.master.attrs(),
            attrs!["empno", "name", "salary", "jobtype"]
        );
        assert_eq!(
            d.details[0].attrs(),
            attrs!["empno", "typing-speed", "foreign-languages"]
        );
        assert_eq!(
            d.details[2].attrs(),
            attrs!["empno", "products", "sales-commission"]
        );
        // Every original tuple is represented in exactly one detail.
        assert_eq!(d.details.iter().map(|r| r.len()).sum::<usize>(), rel.len());
        // Master tuples are homogeneous; the projected key FD survives.
        assert!(d.master.deps().fds().count() >= 1);
    }

    #[test]
    fn restore_round_trips_the_instance() {
        let rel = loaded_employees(150);
        let d = vertical_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        let restored = d.restore().unwrap();
        let original: BTreeSet<_> = rel.tuples().iter().cloned().collect();
        let back: BTreeSet<_> = restored.tuples().iter().cloned().collect();
        assert_eq!(original, back);
        assert_eq!(restored.len(), rel.len());
    }

    #[test]
    fn key_must_be_unconditioned() {
        let rel = loaded_employees(5);
        assert!(vertical_decompose(&rel, &example2_jobtype_ead(), &attrs!["products"]).is_err());
    }

    #[test]
    fn storage_blowup_relative_to_flexible() {
        // Vertical decomposition stores the key once per detail tuple in
        // addition to the master row: total tuple count is 2n for a total
        // specialization.
        let rel = loaded_employees(80);
        let d = vertical_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        assert_eq!(d.total_tuples(), 2 * rel.len());
    }

    #[test]
    fn master_without_variant_part_survives_restore() {
        // An EAD covering only secretaries: engineers and salesmen have no
        // detail tuple and must come back from the master unchanged...
        // but note their variant attributes live *outside* master ∪ details,
        // so a lossless round trip is only guaranteed for tuples fully
        // covered by the decomposition.  Restrict the instance accordingly.
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(60)) {
            rel.insert(t).unwrap();
        }
        let d = vertical_decompose(&rel, &example2_jobtype_ead(), &attrs!["empno"]).unwrap();
        // Drop one detail relation's tuples to simulate missing variant rows.
        let mut broken = d.clone();
        broken.details[1] = FlexRelation::from_parts(
            broken.details[1].name().to_string(),
            broken.details[1].scheme().clone(),
            broken.details[1].domains().clone(),
            broken.details[1].deps().clone(),
            Vec::new(),
        );
        let restored = broken.restore().unwrap();
        // Engineers come back as master-only tuples (shape of the master).
        assert_eq!(restored.len(), rel.len());
        assert!(restored
            .tuples()
            .iter()
            .any(|t| t.attrs() == attrs!["empno", "name", "salary", "jobtype"]));
    }
}
