//! Storage metrics for comparing the representations (experiment E8).

use flexrel_core::relation::FlexRelation;

use crate::{HorizontalDecomposition, MultiRelation, NullPaddedRelation, VerticalDecomposition};

/// Storage statistics of one representation of a heterogeneous entity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageStats {
    /// Number of stored tuples (rows across all fragments/relations).
    pub tuples: usize,
    /// Number of stored cells (attribute/value slots, nulls included).
    pub cells: usize,
    /// Number of stored null cells.
    pub null_cells: usize,
    /// Number of relations/fragments the representation uses.
    pub relations: usize,
}

impl StorageStats {
    /// Cells that carry actual data.
    pub fn useful_cells(&self) -> usize {
        self.cells - self.null_cells
    }

    /// Fraction of cells wasted on nulls.
    pub fn null_fraction(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.null_cells as f64 / self.cells as f64
        }
    }
}

fn relation_cells(rel: &FlexRelation) -> usize {
    rel.tuples().iter().map(|t| t.arity()).sum()
}

/// Statistics of a flexible relation (tuples store only the attributes they
/// are defined on; no nulls by construction).
pub fn flexible_stats(rel: &FlexRelation) -> StorageStats {
    StorageStats {
        tuples: rel.len(),
        cells: relation_cells(rel),
        null_cells: 0,
        relations: 1,
    }
}

/// Statistics of the null-padded flat baseline.
pub fn null_padded_stats(flat: &NullPaddedRelation) -> StorageStats {
    StorageStats {
        tuples: flat.len(),
        cells: flat.total_cells(),
        null_cells: flat.null_cells(),
        relations: 1,
    }
}

/// Statistics of a horizontal decomposition.
pub fn horizontal_stats(d: &HorizontalDecomposition) -> StorageStats {
    let fragments: Vec<&FlexRelation> =
        d.fragments.iter().chain(std::iter::once(&d.rest)).collect();
    StorageStats {
        tuples: fragments.iter().map(|r| r.len()).sum(),
        cells: fragments.iter().map(|r| relation_cells(r)).sum(),
        null_cells: 0,
        relations: fragments.iter().filter(|r| !r.is_empty()).count(),
    }
}

/// Statistics of a vertical decomposition.
pub fn vertical_stats(d: &VerticalDecomposition) -> StorageStats {
    let rels: Vec<&FlexRelation> = std::iter::once(&d.master).chain(d.details.iter()).collect();
    StorageStats {
        tuples: rels.iter().map(|r| r.len()).sum(),
        cells: rels.iter().map(|r| relation_cells(r)).sum(),
        null_cells: 0,
        relations: rels.len(),
    }
}

/// Statistics of a multirelation.
pub fn multirel_stats(m: &MultiRelation) -> StorageStats {
    let rels: Vec<&FlexRelation> = std::iter::once(&m.master)
        .chain(m.depending.values())
        .collect();
    StorageStats {
        tuples: rels.iter().map(|r| r.len()).sum(),
        cells: rels.iter().map(|r| relation_cells(r)).sum(),
        null_cells: 0,
        relations: rels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{horizontal_decompose, multirel_decompose, to_null_padded, vertical_decompose};
    use flexrel_core::attr::AttrSet;
    use flexrel_core::dep::example2_jobtype_ead;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};

    fn loaded(n: usize) -> FlexRelation {
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            rel.insert(t).unwrap();
        }
        rel
    }

    #[test]
    fn flexible_representation_has_no_nulls_and_fewest_cells() {
        let rel = loaded(200);
        let ead = example2_jobtype_ead();
        let key = AttrSet::singleton("empno");

        let flex = flexible_stats(&rel);
        let flat = null_padded_stats(&to_null_padded(&rel, &ead).unwrap());
        let horiz = horizontal_stats(&horizontal_decompose(&rel, &ead).unwrap());
        let vert = vertical_stats(&vertical_decompose(&rel, &ead, &key).unwrap());
        let multi = multirel_stats(&multirel_decompose(&rel, &ead, &key).unwrap());

        assert_eq!(flex.null_cells, 0);
        assert_eq!(flex.null_fraction(), 0.0);
        // The flat baseline stores strictly more cells, all of the surplus
        // being nulls (plus the artificial tag column).
        assert!(flat.cells > flex.cells);
        assert!(flat.null_cells > 0);
        assert!(flat.null_fraction() > 0.2);
        // Horizontal fragments store exactly the same cells as the flexible
        // relation (they are a partition of it).
        assert_eq!(horiz.cells, flex.cells);
        assert_eq!(horiz.tuples, flex.tuples);
        assert!(horiz.relations >= 3);
        // Vertical decomposition and the multirelation pay for the repeated
        // key (and the image attribute).
        assert!(vert.cells > flex.cells);
        assert_eq!(vert.tuples, 2 * rel.len());
        assert!(multi.cells >= vert.cells);
        assert_eq!(flat.useful_cells() + flat.null_cells, flat.cells);
    }

    #[test]
    fn null_fraction_of_empty_representation_is_zero() {
        let s = StorageStats {
            tuples: 0,
            cells: 0,
            null_cells: 0,
            relations: 1,
        };
        assert_eq!(s.null_fraction(), 0.0);
        assert_eq!(s.useful_cells(), 0);
    }
}
