//! # flexrel-decompose
//!
//! Decomposition strategies for heterogeneous entities (§3.1.1 of
//! Kalus & Dadam, ICDE 1995) and the translation baselines the paper
//! compares flexible relations against:
//!
//! * [`horizontal`] — one fragment per EAD variant, restored with an **outer
//!   union**;
//! * [`vertical`] — a master relation plus one depending relation per
//!   variant, restored with a **multiway join**;
//! * [`nullrel`] — the flat, null-padded single-relation translation with an
//!   artificial variant-tag attribute (Elmasri/Navathe's first two
//!   translation methods), which burdens the application with maintaining
//!   the tag/null consistency by hand;
//! * [`multirel`] — the Ahad & Basu "multirelation" translation with image
//!   attributes, which the paper shows to be a special case of an attribute
//!   dependency with an artificial single-attribute determinant;
//! * [`stats`] — storage metrics (cells, null cells, fragment sizes) used by
//!   experiment E8.

pub mod horizontal;
pub mod multirel;
pub mod nullrel;
pub mod stats;
pub mod vertical;

pub use horizontal::{horizontal_decompose, HorizontalDecomposition};
pub use multirel::{multirel_decompose, MultiRelation};
pub use nullrel::{to_null_padded, NullPaddedRelation};
pub use stats::StorageStats;
pub use vertical::{vertical_decompose, VerticalDecomposition};
