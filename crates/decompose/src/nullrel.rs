//! The flat, null-padded baseline translation (§3.1.1).
//!
//! Elmasri/Navathe's first two translation methods for predicate-defined
//! specializations map the whole entity onto a *single* homogeneous relation:
//! every tuple carries every attribute, absent values become nulls, and an
//! artificial attribute indicates the current variant — and has to be
//! interpreted and kept consistent *by the application*.  This module
//! implements that baseline so the benchmarks can compare it against
//! flexible relations with ADs (experiments E2 and E8).

use flexrel_core::attr::{Attr, AttrSet};
use flexrel_core::dep::Ead;
use flexrel_core::error::{CoreError, Result};
use flexrel_core::relation::FlexRelation;
use flexrel_core::tuple::Tuple;
use flexrel_core::value::Value;

/// A flat, null-padded representation of a heterogeneous entity.
#[derive(Clone, Debug)]
pub struct NullPaddedRelation {
    /// Name of the relation.
    pub name: String,
    /// The homogeneous attribute universe (original attributes plus the
    /// artificial variant tag).
    pub universe: AttrSet,
    /// The artificial variant-tag attribute.
    pub tag_attr: Attr,
    /// The EAD the tag encodes (kept only so the *simulated application
    /// logic* can check consistency; a real flat schema has no such
    /// constraint enforced by the DBMS).
    pub ead: Ead,
    /// The padded tuples.
    pub tuples: Vec<Tuple>,
}

impl NullPaddedRelation {
    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total number of stored cells (tuples × universe width).
    pub fn total_cells(&self) -> usize {
        self.tuples.len() * self.universe.len()
    }

    /// Number of null cells.
    pub fn null_cells(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| t.iter().filter(|(_, v)| v.is_null()).count())
            .sum()
    }

    /// Inserts a padded tuple **without** any variant consistency check —
    /// this is exactly what a plain relational schema permits and what the
    /// paper criticizes: nothing stops a 'salesman' row from carrying a
    /// typing-speed.
    pub fn insert_unchecked(&mut self, padded: Tuple) {
        self.tuples.push(padded);
    }

    /// The *application-side* consistency check the flat translation forces
    /// the user to write by hand: the non-null variant attributes of a row
    /// must match exactly what the tag prescribes.  Returns the indices of
    /// inconsistent rows.
    pub fn manual_consistency_check(&self) -> Vec<usize> {
        let mut bad = Vec::new();
        for (i, t) in self.tuples.iter().enumerate() {
            if !row_consistent(t, &self.tag_attr, &self.ead) {
                bad.push(i);
            }
        }
        bad
    }

    /// Converts the flat representation back into heterogeneous tuples by
    /// stripping nulls and the artificial tag attribute.
    pub fn to_flexible_tuples(&self) -> Vec<Tuple> {
        self.tuples
            .iter()
            .map(|t| {
                let mut out = t.without_nulls();
                out.remove(&self.tag_attr);
                out
            })
            .collect()
    }
}

fn row_consistent(t: &Tuple, tag_attr: &Attr, ead: &Ead) -> bool {
    let tag = match t.get(tag_attr) {
        Some(v) if !v.is_null() => v.clone(),
        _ => return false,
    };
    let probe = Tuple::new().with(ead.lhs().iter().next().unwrap().clone(), tag);
    // Which variant does the tag claim?  (The tag mirrors the determining
    // attribute for single-attribute determinants, which is the common case
    // the flat translation handles.)
    let required = ead.required_attrs(&probe);
    for y in ead.rhs().iter() {
        let non_null = t.get(&y).map(|v| !v.is_null()).unwrap_or(false);
        if required.contains(&y) != non_null {
            return false;
        }
    }
    true
}

/// Flattens a flexible relation into the null-padded baseline: every tuple is
/// padded with nulls over the full attribute universe and an artificial tag
/// attribute `variant_tag` records which EAD variant the tuple belongs to
/// (or `'none'`).
pub fn to_null_padded(rel: &FlexRelation, ead: &Ead) -> Result<NullPaddedRelation> {
    if ead.lhs().len() != 1 {
        return Err(CoreError::Invalid(
            "the flat translation models single-attribute determinants; introduce an artificial \
             determinant first (see flexrel-embed) for multi-attribute ones"
                .into(),
        ));
    }
    let tag_attr = Attr::new("variant_tag");
    let universe = rel.attrs().union(&tag_attr.to_set());
    let mut tuples = Vec::with_capacity(rel.len());
    for t in rel.tuples() {
        let variant = if t.defined_on(ead.lhs()) {
            ead.variant_for(&t.project(ead.lhs())).map(|(i, _)| i)
        } else {
            None
        };
        let tag_value = match variant {
            Some(i) => Value::tag(format!("variant_{}", i)),
            None => Value::tag("none"),
        };
        // The tag mirrors the determining attribute's value so the manual
        // consistency check can interpret it.
        let mut padded = t.null_padded(&rel.attrs());
        let det_value = t
            .get(&ead.lhs().iter().next().unwrap())
            .cloned()
            .unwrap_or(Value::Null);
        let _ = tag_value;
        padded.insert(tag_attr.clone(), det_value);
        tuples.push(padded);
    }
    Ok(NullPaddedRelation {
        name: format!("{}_flat", rel.name()),
        universe,
        tag_attr,
        ead: ead.clone(),
        tuples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrel_core::dep::example2_jobtype_ead;
    use flexrel_workload::{employee_relation, generate_employees, EmployeeConfig};
    use std::collections::BTreeSet as Set;

    fn loaded(n: usize) -> FlexRelation {
        let mut rel = employee_relation();
        for t in generate_employees(&EmployeeConfig::clean(n)) {
            rel.insert(t).unwrap();
        }
        rel
    }

    #[test]
    fn padding_produces_homogeneous_rows() {
        let rel = loaded(50);
        let flat = to_null_padded(&rel, &example2_jobtype_ead()).unwrap();
        assert_eq!(flat.len(), 50);
        for t in &flat.tuples {
            assert_eq!(t.arity(), flat.universe.len());
        }
        assert!(!flat.is_empty());
    }

    #[test]
    fn null_cell_overhead_is_substantial() {
        // Each employee uses 2 of the 5 variant attributes, so 3 nulls per
        // row: the flat translation wastes 3·n cells that the flexible
        // relation simply does not store.
        let rel = loaded(100);
        let flat = to_null_padded(&rel, &example2_jobtype_ead()).unwrap();
        assert_eq!(flat.null_cells(), 3 * 100);
        assert_eq!(flat.total_cells(), 100 * flat.universe.len());
    }

    #[test]
    fn round_trip_through_padding() {
        let rel = loaded(60);
        let flat = to_null_padded(&rel, &example2_jobtype_ead()).unwrap();
        let back: Set<Tuple> = flat.to_flexible_tuples().into_iter().collect();
        let original: Set<Tuple> = rel.tuples().iter().cloned().collect();
        assert_eq!(back, original);
    }

    #[test]
    fn flat_translation_accepts_inconsistent_rows_silently() {
        // The paper's point: nothing in the flat schema rejects a salesman
        // with a typing-speed; only the hand-written application check finds
        // it.
        let rel = loaded(10);
        let mut flat = to_null_padded(&rel, &example2_jobtype_ead()).unwrap();
        assert!(flat.manual_consistency_check().is_empty());

        let mut bad = Tuple::new()
            .with("empno", 99)
            .with("name", "bad")
            .with("salary", 1.0)
            .with("jobtype", Value::tag("salesman"))
            .with("typing-speed", 400)
            .with("foreign-languages", "fr")
            .null_padded(&rel.attrs());
        bad.insert(flat.tag_attr.clone(), Value::tag("salesman"));
        flat.insert_unchecked(bad);
        let inconsistent = flat.manual_consistency_check();
        assert_eq!(inconsistent, vec![10]);
    }

    #[test]
    fn multi_attribute_determinant_is_rejected() {
        let rel = loaded(1);
        let mk = |a: &str, b: &str| {
            vec![Tuple::new()
                .with("sex", Value::tag(a))
                .with("marital-status", Value::tag(b))]
        };
        let ead = Ead::new(
            AttrSet::from_names(["sex", "marital-status"]),
            AttrSet::singleton("maiden-name"),
            vec![flexrel_core::dep::EadVariant::new(
                mk("female", "married"),
                AttrSet::singleton("maiden-name"),
            )],
        )
        .unwrap();
        assert!(to_null_padded(&rel, &ead).is_err());
    }

    #[test]
    fn missing_tag_is_inconsistent() {
        let rel = loaded(1);
        let mut flat = to_null_padded(&rel, &example2_jobtype_ead()).unwrap();
        let mut no_tag = rel.tuples()[0].null_padded(&rel.attrs());
        no_tag.insert(flat.tag_attr.clone(), Value::Null);
        flat.insert_unchecked(no_tag);
        assert_eq!(flat.manual_consistency_check().len(), 1);
    }
}
