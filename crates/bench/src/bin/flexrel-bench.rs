//! The `flexrel-bench` binary: closed-loop load driver for a running
//! flexrel server.
//!
//! ```text
//! flexrel-bench --addr HOST:PORT [--sessions N] [--statements N]
//!               [--key-space N] [--variants N] [--skew F] [--seed N]
//! ```
//!
//! The target server must have been seeded with the matching wide schema
//! (`flexrel-server --seed-wide KEY_SPACE,VARIANTS,SKEW`): the driver's
//! self-verification derives its expectations (key echoes, join
//! consistency, per-kind count floors) from those three parameters.
//!
//! Exits non-zero if any response fails verification, any acked write is
//! lost, or any wire/protocol error occurs.  `Busy` and `Timeout` responses
//! are backpressure, not failures.

use std::process::ExitCode;

use flexrel_bench::{run_driver, DriverConfig};

struct Args {
    addr: String,
    sessions: usize,
    statements: usize,
    key_space: usize,
    variants: usize,
    skew: f64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        sessions: 32,
        statements: 20,
        key_space: 2000,
        variants: 8,
        skew: 0.5,
        seed: 0xE18,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{} requires a value", name))
        };
        macro_rules! num {
            ($name:literal) => {
                value($name)?
                    .parse()
                    .map_err(|_| concat!("bad ", $name).to_string())?
            };
        }
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--sessions" => args.sessions = num!("--sessions"),
            "--statements" => args.statements = num!("--statements"),
            "--key-space" => args.key_space = num!("--key-space"),
            "--variants" => args.variants = num!("--variants"),
            "--skew" => args.skew = num!("--skew"),
            "--seed" => args.seed = num!("--seed"),
            "--help" | "-h" => {
                return Err(
                    "usage: flexrel-bench --addr HOST:PORT [--sessions N] [--statements N] \
                     [--key-space N] [--variants N] [--skew F] [--seed N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {:?}", other)),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{}", msg);
            return ExitCode::FAILURE;
        }
    };
    let addr = match args.addr.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("bad --addr {:?} (need HOST:PORT)", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = DriverConfig::new(args.sessions, args.key_space, args.variants, args.skew)
        .with_statements(args.statements);
    cfg.seed = args.seed;

    println!(
        "driving {} with {} closed-loop sessions x {} statements (key space {}, {} variants, skew {})",
        addr, cfg.sessions, cfg.statements_per_session, cfg.n, cfg.variants, cfg.skew
    );
    let report = run_driver(addr, &cfg);
    println!(
        "ok {} | rows {} | busy {} | timeout {} | err {} | proto {} | mismatch {} | lost {}",
        report.ok,
        report.rows,
        report.busy,
        report.timeouts,
        report.errors,
        report.protocol_errors,
        report.mismatches,
        report.lost_writes
    );
    println!(
        "throughput {:.0} stmts/s | p50 {:.0} µs | p99 {:.0} µs | {:.2}s elapsed",
        report.throughput, report.p50_us, report.p99_us, report.elapsed
    );
    if report.clean() {
        println!("RESULT: ok");
        ExitCode::SUCCESS
    } else {
        println!("RESULT: MISMATCH");
        ExitCode::FAILURE
    }
}
