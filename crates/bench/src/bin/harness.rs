//! The experiment harness: regenerates every experiment table of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p flexrel-bench --release --bin harness [scale]
//! ```
//!
//! `scale` is the base tuple count for the data-heavy experiments
//! (default 10 000).

use flexrel_bench::experiments;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("flexrel experiment harness (scale = {} tuples)\n", scale);
    for table in experiments::run_all(scale) {
        println!("{}", table);
    }
    println!("done.");
}
