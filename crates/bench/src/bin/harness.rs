//! The experiment harness: regenerates every experiment table of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p flexrel-bench --release --bin harness [scale]
//! ```
//!
//! `scale` is the base tuple count for the data-heavy experiments
//! (default 10 000).

use flexrel_bench::experiments;

fn main() {
    let scale: usize = match std::env::args().nth(1) {
        None => 10_000,
        Some(arg) => match arg.parse() {
            // The data-heavy experiments divide the scale by up to 10 and
            // need at least one tuple each, so tiny scales are rejected
            // rather than panicking deep inside an experiment.
            Ok(n) if n >= 10 => n,
            Ok(n) => {
                eprintln!("error: scale must be at least 10 tuples, got {}", n);
                std::process::exit(2);
            }
            Err(_) => {
                eprintln!("error: scale must be an integer, got {:?}", arg);
                eprintln!("usage: harness [scale]");
                std::process::exit(2);
            }
        },
    };
    println!("flexrel experiment harness (scale = {} tuples)\n", scale);
    for table in experiments::run_all(scale) {
        println!("{}", table);
    }
    println!("done.");
}
