//! The experiment harness: regenerates every experiment table of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p flexrel-bench --release --bin harness [scale] [--json [DIR]] \
//!     [--compare BASELINE_DIR] [--tolerance FRACTION]
//! ```
//!
//! `scale` is the base tuple count for the data-heavy experiments
//! (default 10 000).  With `--json`, one machine-readable
//! `BENCH_<ID>.json` file per experiment (id, title, scale, wall-clock
//! `elapsed_ms`, the headline metric when the experiment defines one, and
//! the full table) is written to `DIR` (default: the current directory) in
//! addition to the printed tables.
//!
//! With `--compare BASELINE_DIR` the freshly emitted reports are compared
//! against the committed `BENCH_*.json` baselines in `BASELINE_DIR` (the
//! CI bench-regression gate): the process exits non-zero when any
//! experiment's headline metric regresses by more than `--tolerance`
//! (default `0.25` = 25%) against its direction, when a baseline has no
//! current counterpart, or when the scales differ.  `--compare` implies
//! `--json` (default directory `bench-json`).

use std::path::PathBuf;

use flexrel_bench::experiments;
use flexrel_bench::report;

struct Args {
    scale: usize,
    json_dir: Option<PathBuf>,
    compare_dir: Option<PathBuf>,
    tolerance: f64,
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: harness [scale] [--json [DIR]] [--compare BASELINE_DIR] [--tolerance FRACTION]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 10_000,
        json_dir: None,
        compare_dir: None,
        tolerance: 0.25,
    };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => {
                // Optional directory operand: next arg unless it is a flag or
                // an all-numeric token (`harness --json 500` means scale 500
                // with JSON to the current directory, not a directory "500").
                let dir = match argv.peek() {
                    Some(next) if !next.starts_with("--") && next.parse::<usize>().is_err() => {
                        PathBuf::from(argv.next().unwrap())
                    }
                    _ => PathBuf::from("."),
                };
                args.json_dir = Some(dir);
            }
            "--compare" => match argv.next() {
                Some(dir) => args.compare_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --compare requires a baseline directory");
                    usage_exit();
                }
            },
            "--tolerance" => match argv.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => args.tolerance = t,
                _ => {
                    eprintln!("error: --tolerance requires a non-negative fraction, e.g. 0.25");
                    usage_exit();
                }
            },
            "--help" | "-h" => usage_exit(),
            other => match other.parse() {
                // The data-heavy experiments divide the scale by up to 10 and
                // need at least one tuple each, so tiny scales are rejected
                // rather than panicking deep inside an experiment.
                Ok(n) if n >= 10 => args.scale = n,
                Ok(n) => {
                    eprintln!("error: scale must be at least 10 tuples, got {}", n);
                    std::process::exit(2);
                }
                Err(_) => {
                    eprintln!("error: unrecognized argument {:?}", other);
                    usage_exit();
                }
            },
        }
    }
    args
}

fn main() {
    let mut args = parse_args();
    // The gate compares freshly emitted reports, so it implies --json.
    if args.compare_dir.is_some() && args.json_dir.is_none() {
        args.json_dir = Some(PathBuf::from("bench-json"));
    }
    let args = args;
    println!(
        "flexrel experiment harness (scale = {} tuples)\n",
        args.scale
    );
    let timed = experiments::run_all_timed(args.scale);
    for (_, table, _) in &timed {
        println!("{}", table);
    }
    if let Some(dir) = &args.json_dir {
        match report::write_json_reports(dir, args.scale, &timed) {
            Ok(written) => {
                for path in written {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("error: writing JSON reports to {}: {}", dir.display(), e);
                std::process::exit(1);
            }
        }
    }
    if let Some(baseline) = &args.compare_dir {
        let current = args.json_dir.as_ref().expect("--compare implies --json");
        println!(
            "\ncomparing against baselines in {} (tolerance {:.0}%)",
            baseline.display(),
            args.tolerance * 100.0
        );
        match flexrel_bench::compare_dirs(baseline, current, args.tolerance) {
            Ok(cmp) => {
                for row in &cmp.rows {
                    println!("  {}", row);
                }
                if !cmp.skipped.is_empty() {
                    println!(
                        "  (skipped — no headline or marked unmeasurable: {})",
                        cmp.skipped.join(", ")
                    );
                }
                for p in &cmp.problems {
                    eprintln!("  problem: {}", p);
                }
                if !cmp.passed() {
                    eprintln!("bench-regression gate FAILED");
                    std::process::exit(1);
                }
                println!("bench-regression gate passed");
            }
            Err(e) => {
                eprintln!(
                    "error: reading baselines from {}: {}",
                    baseline.display(),
                    e
                );
                std::process::exit(1);
            }
        }
    }
    println!("done.");
}
