//! The experiment harness: regenerates every experiment table of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p flexrel-bench --release --bin harness [scale] [--json [DIR]]
//! ```
//!
//! `scale` is the base tuple count for the data-heavy experiments
//! (default 10 000).  With `--json`, one machine-readable
//! `BENCH_<ID>.json` file per experiment (id, title, scale, wall-clock
//! `elapsed_ms`, and the full table) is written to `DIR` (default: the
//! current directory) in addition to the printed tables.

use std::path::PathBuf;

use flexrel_bench::experiments;
use flexrel_bench::report;

struct Args {
    scale: usize,
    json_dir: Option<PathBuf>,
}

fn usage_exit() -> ! {
    eprintln!("usage: harness [scale] [--json [DIR]]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 10_000,
        json_dir: None,
    };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => {
                // Optional directory operand: next arg unless it is a flag or
                // an all-numeric token (`harness --json 500` means scale 500
                // with JSON to the current directory, not a directory "500").
                let dir = match argv.peek() {
                    Some(next) if !next.starts_with("--") && next.parse::<usize>().is_err() => {
                        PathBuf::from(argv.next().unwrap())
                    }
                    _ => PathBuf::from("."),
                };
                args.json_dir = Some(dir);
            }
            "--help" | "-h" => usage_exit(),
            other => match other.parse() {
                // The data-heavy experiments divide the scale by up to 10 and
                // need at least one tuple each, so tiny scales are rejected
                // rather than panicking deep inside an experiment.
                Ok(n) if n >= 10 => args.scale = n,
                Ok(n) => {
                    eprintln!("error: scale must be at least 10 tuples, got {}", n);
                    std::process::exit(2);
                }
                Err(_) => {
                    eprintln!("error: unrecognized argument {:?}", other);
                    usage_exit();
                }
            },
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "flexrel experiment harness (scale = {} tuples)\n",
        args.scale
    );
    let timed = experiments::run_all_timed(args.scale);
    for (_, table, _) in &timed {
        println!("{}", table);
    }
    if let Some(dir) = &args.json_dir {
        match report::write_json_reports(dir, args.scale, &timed) {
            Ok(written) => {
                for path in written {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("error: writing JSON reports to {}: {}", dir.display(), e);
                std::process::exit(1);
            }
        }
    }
    println!("done.");
}
